//! Hill-climbing solver scaling — backs the paper's complexity claim
//! (§III-B): "the algorithm complexity has an upper boundary of
//! O(#Hosts · #VMs) · C since it iterates over the ⟨host,VM⟩ matrix C
//! times".
//!
//! Benchmarks the full scheduling round (matrix build + solve) over
//! increasing datacenter sizes, over the iteration cap, and over the
//! penalty sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eards_core::{solve, Eval, ScoreConfig};
use eards_model::{Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState, VmId};
use eards_sim::{SimDuration, SimRng, SimTime};

/// Builds a cluster with `hosts` nodes, `running` placed VMs and `queued`
/// waiting VMs.
fn build(hosts: u32, running: u64, queued: u64) -> (Cluster, Vec<VmId>) {
    let mut rng = SimRng::seed_from_u64(1);
    let specs = (0..hosts)
        .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
        .collect();
    let mut cluster = Cluster::new(specs, PowerState::On);
    let mut cols = Vec::new();
    let t0 = SimTime::ZERO;
    let t1 = SimTime::from_secs(40);
    for j in 0..running {
        let cpu = Cpu(100 * (1 + rng.index(2) as u32));
        let vm = cluster.submit_job(Job::new(
            JobId(j),
            t0,
            cpu,
            Mem::gib(1),
            SimDuration::from_secs(7200),
            1.5,
        ));
        let mut placed = false;
        for k in 0..hosts {
            let h = HostId((j as u32 + k) % hosts);
            if cluster.can_place(h, vm) {
                cluster.start_creation(vm, h, t0, t1);
                cluster.finish_creation(vm, t1);
                placed = true;
                break;
            }
        }
        if placed {
            cols.push(vm);
        }
    }
    for j in 0..queued {
        let vm = cluster.submit_job(Job::new(
            JobId(running + j),
            t1,
            Cpu(100),
            Mem::gib(1),
            SimDuration::from_secs(3600),
            1.5,
        ));
        cols.push(vm);
    }
    (cluster, cols)
}

fn bench_matrix_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/hosts_x_vms");
    for &(hosts, vms) in &[(25u32, 20u64), (50, 40), (100, 80), (200, 160), (400, 320)] {
        let (cluster, cols) = build(hosts, vms / 2, vms / 2);
        let cfg = ScoreConfig::sb();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{hosts}h_{vms}v")),
            &(cluster, cols, cfg),
            |b, (cluster, cols, cfg)| {
                b.iter(|| {
                    let mut eval = Eval::new(cluster, cfg, SimTime::from_secs(100), cols.clone());
                    solve(&mut eval, cfg.max_moves)
                })
            },
        );
    }
    group.finish();
}

fn bench_iteration_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/max_moves");
    let (cluster, cols) = build(100, 40, 40);
    for &cap in &[4usize, 16, 64, 256] {
        let cfg = ScoreConfig::sb();
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut eval = Eval::new(&cluster, &cfg, SimTime::from_secs(100), cols.clone());
                solve(&mut eval, cap)
            })
        });
    }
    group.finish();
}

fn bench_penalty_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/penalty_sets");
    let (cluster, cols) = build(100, 40, 40);
    for (name, cfg) in [
        ("sb0", ScoreConfig::sb0()),
        ("sb2", ScoreConfig::sb2()),
        ("full", ScoreConfig::full()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut eval = Eval::new(&cluster, cfg, SimTime::from_secs(100), cols.clone());
                solve(&mut eval, cfg.max_moves)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matrix_scaling,
    bench_iteration_cap,
    bench_penalty_sets
);
criterion_main!(benches);
