//! Hill-climbing solver scaling — backs the paper's complexity claim
//! (§III-B): "the algorithm complexity has an upper boundary of
//! O(#Hosts · #VMs) · C since it iterates over the ⟨host,VM⟩ matrix C
//! times".
//!
//! Benchmarks the full scheduling round (matrix build + solve) over
//! increasing datacenter sizes, over the iteration cap, over the penalty
//! sets, and — the `cold_vs_incremental` group — the full-rescan
//! reference solver against the incremental score-matrix engine (cold
//! allocations and warm recycled [`EngineBuffers`]).
//!
//! Besides the per-benchmark stdout lines, the run writes every mean to
//! `BENCH_solver.json` at the workspace root: a machine-readable baseline
//! future PRs diff against for a perf trajectory.

use criterion::{BenchmarkId, Criterion};
use eards_bench::common::{merge_solver_baseline, solver_case};
use eards_core::{
    solve, solve_matrix, solve_reference, EngineBuffers, Eval, ScoreConfig, ScoreMatrix,
};
use eards_sim::SimTime;

fn bench_matrix_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/hosts_x_vms");
    for &(hosts, vms) in &[(25u32, 20u64), (50, 40), (100, 80), (200, 160), (400, 320)] {
        let (cluster, cols) = solver_case(hosts, vms / 2, vms / 2);
        let cfg = ScoreConfig::sb();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{hosts}h_{vms}v")),
            &(cluster, cols, cfg),
            |b, (cluster, cols, cfg)| {
                b.iter(|| {
                    let mut eval = Eval::new(cluster, cfg, SimTime::from_secs(100), cols.clone());
                    solve(&mut eval, cfg.max_moves)
                })
            },
        );
    }
    group.finish();
}

fn bench_iteration_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/max_moves");
    // The sweep only orders by cap if every cap truncates the climb: with
    // 150 queued creations plus migration cleanup there are well over 256
    // beneficial moves, so 4 < 16 < 64 < 256 is monotone by construction.
    // (A smaller case converges before the larger caps, making those
    // points equal-work and their ordering pure measurement noise.)
    let (cluster, cols) = solver_case(150, 150, 150);
    for &cap in &[4usize, 16, 64, 256] {
        let cfg = ScoreConfig::sb();
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut eval = Eval::new(&cluster, &cfg, SimTime::from_secs(100), cols.clone());
                solve(&mut eval, cap)
            })
        });
    }
    group.finish();
}

fn bench_penalty_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/penalty_sets");
    let (cluster, cols) = solver_case(100, 40, 40);
    for (name, cfg) in [
        ("sb0", ScoreConfig::sb0()),
        ("sb2", ScoreConfig::sb2()),
        ("full", ScoreConfig::full()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut eval = Eval::new(&cluster, cfg, SimTime::from_secs(100), cols.clone());
                solve(&mut eval, cfg.max_moves)
            })
        });
    }
    group.finish();
}

/// The acceptance case of the incremental-engine refactor: one 100-host /
/// 200-VM hill-climbing round, full-rescan reference vs the cached
/// engine. `reference` and `incremental` must stay ≥ 3× apart (the
/// `run_all` solver-timing section shape-checks this; here the two means
/// land side by side in `BENCH_solver.json`).
fn bench_cold_vs_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/cold_vs_incremental");
    let (cluster, cols) = solver_case(100, 100, 100);
    let cfg = ScoreConfig::sb();
    let cap = 256usize;

    group.bench_with_input(
        BenchmarkId::from_parameter("reference_100h_200v"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut eval = Eval::new(&cluster, &cfg, SimTime::from_secs(100), cols.clone());
                solve_reference(&mut eval, cap)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("incremental_100h_200v"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut eval = Eval::new(&cluster, &cfg, SimTime::from_secs(100), cols.clone());
                solve(&mut eval, cap)
            })
        },
    );
    // The scheduler's steady state: engine storage recycled across rounds.
    let mut buf = EngineBuffers::new();
    group.bench_with_input(
        BenchmarkId::from_parameter("incremental_warm_100h_200v"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut eval = Eval::new_in(
                    &cluster,
                    &cfg,
                    SimTime::from_secs(100),
                    cols.clone(),
                    &mut buf,
                );
                let mut matrix = ScoreMatrix::new_in(&mut eval, &mut buf);
                let sol = solve_matrix(&mut matrix, cap);
                matrix.recycle(&mut buf);
                eval.recycle(&mut buf);
                sol
            })
        },
    );
    group.finish();
}

/// Merges all recorded means into `BENCH_solver.json` at the workspace
/// root (preserving the `solver_scale` bench's points, recomputing the
/// derived reference/incremental speedup).
fn write_baseline(c: &Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    match merge_solver_baseline(std::path::Path::new(path), c.results()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_matrix_scaling(&mut criterion);
    bench_iteration_cap(&mut criterion);
    bench_penalty_sets(&mut criterion);
    bench_cold_vs_incremental(&mut criterion);
    write_baseline(&criterion);
}
