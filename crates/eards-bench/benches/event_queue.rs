//! DES engine throughput: the future-event list under the access patterns
//! a datacenter week generates (schedule/pop churn, cancellations from
//! completion-event rescheduling, same-timestamp bursts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eards_sim::{EventQueue, SimRng, SimTime, Simulator, WheelQueue};

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/schedule_pop");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SimRng::seed_from_u64(3);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_millis(rng.next_u64() % 1_000_000_000))
                .collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(t, i);
                }
                let mut acc = 0usize;
                while let Some((_, _, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_cancel_heavy(c: &mut Criterion) {
    // The driver cancels and reschedules a completion event on every
    // reallocation: cancellation is on the hot path.
    c.bench_function("event_queue/cancel_reschedule_churn", |b| {
        let mut rng = SimRng::seed_from_u64(4);
        let offsets: Vec<u64> = (0..10_000).map(|_| 1 + rng.next_u64() % 10_000).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut handles = Vec::with_capacity(1_000);
            for i in 0..1_000usize {
                handles.push(q.schedule(SimTime::from_millis(i as u64), i));
            }
            // Churn: cancel + reschedule.
            for (i, &off) in offsets.iter().enumerate() {
                let idx = i % handles.len();
                q.cancel(handles[idx]);
                handles[idx] = q.schedule(SimTime::from_millis(off), idx);
            }
            let mut count = 0usize;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });
}

fn bench_simulator_loop(c: &mut Criterion) {
    // A self-perpetuating event chain through the full Simulator API.
    c.bench_function("event_queue/simulator_hot_loop", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::new();
            sim.schedule_at(SimTime::from_millis(1), 0);
            let mut acc = 0u64;
            while let Some((_, _, v)) = sim.step() {
                acc = acc.wrapping_add(v);
                if v < 50_000 {
                    sim.schedule_after(eards_sim::SimDuration::from_millis(1), v + 1);
                }
            }
            acc
        })
    });
}

fn bench_wheel_vs_heap(c: &mut Criterion) {
    // Dense near-horizon workload: the regime where the O(1) wheel should
    // beat the O(log n) heap.
    let mut group = c.benchmark_group("event_queue/wheel_vs_heap_dense");
    let mut rng = SimRng::seed_from_u64(5);
    let times: Vec<u64> = (0..50_000).map(|_| rng.next_u64() % 3_600_000).collect();
    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(t), i);
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    group.bench_function("wheel", |b| {
        b.iter(|| {
            let mut q = WheelQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(t), i);
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_pop,
    bench_cancel_heavy,
    bench_simulator_loop,
    bench_wheel_vs_heap
);
criterion_main!(benches);
