//! Sharded hierarchical solver at datacenter scale.
//!
//! The dense matrix engine is `O(M·N)` per round — a non-starter at ten
//! thousand hosts (10⁹ cells). This bench times one full scheduling
//! round of `solve_sharded` on big direct-placement cases
//! ([`scale_case`]), headline point **10 000 hosts / 100 000 VMs**, and
//! merges the means into the workspace-root `BENCH_solver.json` next to
//! the dense solver's points (the acceptance bar for the sharded engine
//! is < 250 ms per round on the headline point).
//!
//! `--smoke` runs in seconds for the CI test job: a shard-count grid on
//! a 400-host case plus the single-shard differential oracle (sharded
//! must be move-for-move identical to the dense climb), and does NOT
//! touch `BENCH_solver.json`.

use std::time::Instant;

use eards_bench::common::{merge_solver_baseline, scale_case};
use eards_core::{solve, solve_sharded, DegradeLevel, Eval, ScoreConfig};
use eards_model::ShardMap;
use eards_sim::SimTime;

const NOW_SECS: u64 = 100;

/// Rack granularity of every map in this bench (the default `RackPlan`
/// rack size).
const RACK_SIZE: u32 = 8;

fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // benchmarking wall time is the point
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

/// One sharded scheduling round: fresh evaluator + hierarchical solve.
fn sharded_round(
    cluster: &eards_model::Cluster,
    cols: &[eards_model::VmId],
    cfg: &ScoreConfig,
    map: &ShardMap,
) -> eards_core::ShardedOutcome {
    let mut eval = Eval::new(cluster, cfg, SimTime::from_secs(NOW_SECS), cols.to_vec());
    solve_sharded(
        &mut eval,
        map,
        0,
        cfg.max_moves,
        u64::MAX,
        DegradeLevel::L0Full,
    )
}

fn report(label: &str, secs: f64, moves: usize, results: &mut Vec<(String, f64)>) {
    println!(
        "bench: {label:<48} {:>10.3} ms per round ({moves} moves)",
        secs * 1e3
    );
    results.push((label.to_string(), secs));
}

/// The single-shard differential oracle, cheap enough to run every CI
/// cycle: on a small instance the sharded solver over the trivial map
/// must reproduce the dense climb move for move.
fn smoke_oracle() {
    let (cluster, cols) = scale_case(16, 2, 12);
    let cfg = ScoreConfig::sb();
    let expected = {
        let mut eval = Eval::new(&cluster, &cfg, SimTime::from_secs(NOW_SECS), cols.clone());
        solve(&mut eval, cfg.max_moves)
    };
    let map = ShardMap::single(16);
    let out = sharded_round(&cluster, &cols, &cfg, &map);
    assert_eq!(
        out.solution.moves, expected.moves,
        "single-shard oracle: sharded diverged from the dense climb"
    );
    println!(
        "oracle: single-shard == dense on 16h/44v ({} moves) — ok",
        expected.moves.len()
    );
}

/// Shard-count grid on a mid-size case: how the round time scales with
/// the partition, same workload throughout.
fn shard_grid(results: &mut Vec<(String, f64)>) {
    let hosts = 400u32;
    let (cluster, cols) = scale_case(hosts, 3, 1200);
    let cfg = ScoreConfig::sb();
    for shards in [1u32, 2, 4, 8, 16] {
        let map = ShardMap::build(hosts as usize, RACK_SIZE, shards);
        let (secs, out) = time_min(3, || sharded_round(&cluster, &cols, &cfg, &map));
        report(
            &format!("solver_scale/grid_400h_2400v/shards_{shards}"),
            secs,
            out.solution.moves.len(),
            results,
        );
    }
}

/// The headline points. The dense engine is deliberately absent: at
/// these sizes its initial fill alone is two orders of magnitude past
/// the budget — that asymmetry is the point of the sharded solver.
fn scale_points(results: &mut Vec<(String, f64)>) {
    for (hosts, per_host, queued, shards) in [
        (2_000u32, 3u32, 14_000u64, 250u32),
        (10_000, 3, 70_000, 1_250),
    ] {
        let (cluster, cols) = scale_case(hosts, per_host, queued);
        let vms = cols.len();
        let cfg = ScoreConfig::sb();
        let map = ShardMap::build(hosts as usize, RACK_SIZE, shards);
        let (secs, out) = time_min(3, || sharded_round(&cluster, &cols, &cfg, &map));
        report(
            &format!("solver_scale/sharded_{hosts}h_{vms}v"),
            secs,
            out.solution.moves.len(),
            results,
        );
        eprintln!(
            "  detail: work={} rows_rescored={} balanced={} sweeps={}",
            out.work_spent, out.rows_rescored, out.balanced, out.solution.sweeps
        );
        if hosts == 10_000 {
            let bar = 0.250;
            println!(
                "acceptance: 10_000h per-round solve {:.3} ms < {:.0} ms — {}",
                secs * 1e3,
                bar * 1e3,
                if secs < bar { "ok" } else { "MISSED" }
            );
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut results = Vec::new();
    smoke_oracle();
    shard_grid(&mut results);
    if smoke {
        println!("smoke mode: skipping the 10_000-host points and the baseline write");
        return;
    }
    scale_points(&mut results);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    match merge_solver_baseline(std::path::Path::new(path), &results) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
