//! End-to-end simulation throughput: a day of datacenter time per policy.
//! The paper's selling point for simulation (§IV) is that "a large
//! virtualized datacenter executing a workload for a week" runs in about
//! an hour on one machine; this measures our equivalent (a week runs in
//! seconds — see the `week_in_the_datacenter` example).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{paper_datacenter, RunConfig, Runner};
use eards_model::Policy;
use eards_policies::{BackfillingPolicy, DynamicBackfillingPolicy, RandomPolicy};
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig, Trace};

fn day_trace() -> Trace {
    generate(
        &SynthConfig {
            span: SimDuration::from_days(1),
            ..SynthConfig::grid5000_week()
        },
        7,
    )
}

fn make(policy: &str) -> Box<dyn Policy> {
    match policy {
        "RD" => Box::new(RandomPolicy::new(1)),
        "BF" => Box::new(BackfillingPolicy::new()),
        "DBF" => Box::new(DynamicBackfillingPolicy::new()),
        "SB" => Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        _ => unreachable!(),
    }
}

fn bench_day(c: &mut Criterion) {
    let trace = day_trace();
    let mut group = c.benchmark_group("end_to_end/simulated_day");
    group.sample_size(10);
    for policy in ["RD", "BF", "DBF", "SB"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    Runner::new(
                        paper_datacenter(),
                        trace.clone(),
                        make(policy),
                        RunConfig::default(),
                    )
                    .run()
                })
            },
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("end_to_end/generate_week_trace", |b| {
        b.iter(|| generate(&SynthConfig::grid5000_week(), 7))
    });
}

criterion_group!(benches, bench_day, bench_trace_generation);
criterion_main!(benches);
