//! Credit-scheduler water-filling cost: runs on every host event, so its
//! constant matters for end-to-end simulation speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eards_model::xen::{allocate, CpuContender};
use eards_sim::SimRng;

fn contenders(n: usize, seed: u64) -> Vec<CpuContender> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let demand = 100.0 * (1 + rng.index(4)) as f64;
            CpuContender {
                demand,
                weight: 256.0,
                cap: demand,
            }
        })
        .collect()
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("xen/allocate");
    // Typical host populations (a 4-way node holds a handful of VMs) and a
    // pathological stack (what Random produces under a burst).
    for &n in &[2usize, 4, 8, 16, 64] {
        let cs = contenders(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cs, |b, cs| {
            b.iter(|| allocate(400.0, cs))
        });
    }
    group.finish();
}

fn bench_allocation_uncontended(c: &mut Criterion) {
    // The common fast case: everything fits, one round.
    let cs = vec![CpuContender::simple(100.0), CpuContender::simple(200.0)];
    c.bench_function("xen/allocate_uncontended", |b| {
        b.iter(|| allocate(400.0, &cs))
    });
}

criterion_group!(benches, bench_allocation, bench_allocation_uncontended);
criterion_main!(benches);
