//! Extension ablation — reliability and fault tolerance.
//!
//! §III-A.6 defines the `P_fault` penalty and §III-C the checkpoint-based
//! recovery, but the paper defers their evaluation to future work ("an
//! environment with failures"). This experiment builds that environment:
//! a datacenter where a quarter of the nodes are flaky (reliability
//! 0.95–0.99, i.e. hours-scale MTTF when up), failure injection driven
//! by each node's reliability factor, and three SB variants:
//!
//! 1. **SB** — reliability-blind;
//! 2. **SB+fault** — `P_fault` enabled: placement avoids flaky nodes and
//!    the power-on ranking prefers reliable ones;
//! 3. **SB+fault+ckpt** — additionally checkpoints running VMs every
//!    10 minutes, so a failure loses at most one checkpoint interval.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{run_sweep, RunConfig, SweepPoint};
use eards_metrics::{RunReport, Table};
use eards_model::{FaultPlan, HostClass, HostId, HostSpec};
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig};

use crate::common::ExperimentResult;

/// A 40-node datacenter where every fourth node is flaky. Interleaving
/// (rather than clustering the flaky nodes at the high ids) matters: a
/// blind policy's id-order tiebreaks must not dodge them by accident.
pub fn flaky_datacenter() -> Vec<HostSpec> {
    (0..40u32)
        .map(|i| {
            let mut spec = HostSpec::standard(HostId(i), HostClass::Medium);
            if i % 4 == 0 {
                // Availability 0.95–0.99: with a 30-minute repair time this
                // is an MTTF of ~0.5–3 hours while powered.
                spec.reliability = 0.95 + 0.004 * f64::from(i / 4);
            }
            spec
        })
        .collect()
}

fn variant(fault: bool, ckpt: bool) -> (String, ScoreConfig, RunConfig) {
    let mut cfg = ScoreConfig::sb();
    cfg.fault_penalty = fault;
    let name = match (fault, ckpt) {
        (false, _) => "SB (blind)",
        (true, false) => "SB+fault",
        (true, true) => "SB+fault+ckpt",
    };
    let run = RunConfig {
        checkpoint_period: ckpt.then(|| SimDuration::from_mins(10)),
        ..RunConfig::default()
    }
    // Reliability-driven crashes with the default 30-minute repair.
    .with_faults(FaultPlan::crashes());
    (name.to_string(), cfg.named(name), run)
}

/// Runs the three variants over a 3-day trace.
pub fn reports() -> Vec<RunReport> {
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_days(3),
            ..SynthConfig::grid5000_week()
        },
        crate::common::TRACE_SEED,
    );
    let hosts = flaky_datacenter();
    [(false, false), (true, false), (true, true)]
        .into_iter()
        .map(|(fault, ckpt)| {
            let (label, score_cfg, run_cfg) = variant(fault, ckpt);
            run_sweep(
                &hosts,
                &trace,
                move || Box::new(ScoreScheduler::new(score_cfg.clone())),
                vec![SweepPoint {
                    label,
                    config: run_cfg.clone(),
                }],
            )
            .remove(0)
        })
        .collect()
}

/// Runs the reliability ablation.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let mut result = ExperimentResult::new(
        "ablation_reliability",
        "Extension — reliability-aware scheduling under failures",
        "not evaluated in the paper (future work, §VI); §III-A.6 predicts \
         that nodes with a failure probability get penalized so VMs prefer \
         reliable hosts, and §III-C that failed VMs recover from their last \
         checkpoint.",
    );

    let mut t = Table::new([
        "Variant",
        "Pwr (kWh)",
        "S (%)",
        "delay (%)",
        "Host failures",
        "VMs displaced",
        "Jobs done",
    ]);
    for r in &reports {
        t.row([
            r.label.clone(),
            eards_metrics::fnum(r.energy_kwh, 1),
            eards_metrics::fnum(r.satisfaction_pct, 1),
            eards_metrics::fnum(r.delay_pct, 1),
            r.host_failures.to_string(),
            r.vms_displaced.to_string(),
            format!("{}/{}", r.jobs_completed, r.jobs_total),
        ]);
    }
    result.tables.push((
        "Failure injection (10/40 flaky nodes, 3-day trace)".into(),
        t,
    ));

    let blind = &reports[0];
    let fault = &reports[1];
    let ckpt = &reports[2];
    result.notes.push(format!(
        "P_fault steers load off flaky nodes: VMs displaced by failures {} \
         (blind) vs {} (fault-aware): {}",
        blind.vms_displaced,
        fault.vms_displaced,
        ok(fault.vms_displaced <= blind.vms_displaced)
    ));
    result.notes.push(format!(
        "fault awareness preserves satisfaction under failures ({:.1}% vs \
         blind {:.1}%): {}",
        fault.satisfaction_pct,
        blind.satisfaction_pct,
        ok(fault.satisfaction_pct >= blind.satisfaction_pct - 0.2)
    ));
    result.notes.push(format!(
        "checkpointing bounds lost work (S {:.1}% vs {:.1}%, delay {:.1}% vs \
         {:.1}%) at a small CPU/energy overhead: {}",
        ckpt.satisfaction_pct,
        fault.satisfaction_pct,
        ckpt.delay_pct,
        fault.delay_pct,
        ok(ckpt.satisfaction_pct >= fault.satisfaction_pct - 0.3)
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaky_datacenter_shape() {
        let dc = flaky_datacenter();
        assert_eq!(dc.len(), 40);
        assert_eq!(dc.iter().filter(|h| h.reliability < 1.0).count(), 10);
        for h in &dc {
            assert!((0.95..=1.0).contains(&h.reliability));
        }
    }

    #[test]
    fn failures_actually_happen_and_recovery_works() {
        let reports = reports();
        let blind = &reports[0];
        assert!(blind.host_failures > 0, "no failures injected");
        // The system survives: the vast majority of jobs still complete.
        assert!(
            blind.jobs_completed as f64 >= 0.95 * blind.jobs_total as f64,
            "{}/{}",
            blind.jobs_completed,
            blind.jobs_total
        );
        assert!(blind.vms_displaced > 0, "failures never hit a working node");
        // Fault awareness reduces (or at worst matches) *VM* exposure —
        // idle-host failures are harmless and not what P_fault optimizes.
        assert!(reports[1].vms_displaced <= blind.vms_displaced);
    }
}
