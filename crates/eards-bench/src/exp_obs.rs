//! Observability overhead — the tracing layer must be free when off and
//! cheap when on.
//!
//! Two guarantees back the `eards-obs` design and both are measured here:
//!
//! 1. **Disabled = bit-identical.** A run with the default (disabled)
//!    handle and a run with tracing enabled produce the same
//!    [`RunReport`] and the same audit trail, byte for byte: the hooks
//!    never read a clock or touch an RNG on the simulation's behalf.
//! 2. **Enabled < 5% overhead.** With a preallocated ring capturing every
//!    event, span and histogram sample, wall-clock time stays within 5%
//!    of the untraced run.
//!
//! The artifact `BENCH_obs.json` records both, plus a schema validation
//! of the three export formats, so CI catches a hook that starts
//! perturbing the simulation or a recorder that got slow.

use std::time::{Duration, Instant};

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{small_datacenter, AuditEvent, RunConfig, Runner};
use eards_metrics::{fnum, RunReport, Table};
use eards_model::{HostClass, HostSpec};
use eards_obs::{validate, Obs};
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig, Trace};

use crate::common::{ExperimentResult, TRACE_SEED};

/// Ring capacity used by the enabled runs (matches the CLI default).
pub const RING_CAPACITY: usize = 1 << 16;

/// Overhead budget in percent (the acceptance threshold).
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Timed repetitions per mode; the **median** is reported. The median of
/// three is robust to a single slow outlier (GC of the host OS, a noisy
/// neighbour) where best-of-N still lets one lucky fast rep of either
/// mode skew the ratio — the old best-of-5 gate flaked exactly that way
/// on loaded single-core CI runners.
const REPS: usize = 3;

fn bench_trace(hours: u64) -> Trace {
    generate(
        &SynthConfig {
            span: SimDuration::from_hours(hours),
            ..SynthConfig::grid5000_week()
        },
        TRACE_SEED,
    )
}

/// One SB run with the given handle; audit trail on so identity checks
/// cover the full event log, not just the aggregates.
fn run_once(
    hosts: &[HostSpec],
    trace: &Trace,
    obs: &Obs,
) -> (RunReport, Vec<AuditEvent>, Duration) {
    let cfg = RunConfig {
        audit: true,
        record_power_series: true,
        ..RunConfig::default()
    }
    .with_obs(obs.clone());
    let policy = Box::new(ScoreScheduler::with_obs(ScoreConfig::sb(), obs.clone()));
    #[allow(clippy::disallowed_methods)] // benchmarking wall time is the point
    let start = Instant::now();
    let (report, audit) = Runner::new(hosts.to_vec(), trace.clone(), policy, cfg).run_audited();
    let elapsed = start.elapsed();
    (report, audit, elapsed)
}

/// A complete fingerprint of a run's observable output: every report
/// field (including the power series and per-job outcomes — `f64` Debug
/// formatting round-trips exactly) plus the rendered audit log.
pub fn fingerprint(report: &RunReport, audit: &[AuditEvent]) -> String {
    format!("{report:?}\n{}", eards_datacenter::render_log(audit))
}

/// The measured comparison: timings, identity verdict, ring statistics
/// and export validation.
#[derive(Debug, Clone)]
pub struct ObsComparison {
    /// Median-of-`REPS` wall clock with tracing disabled.
    pub disabled: Duration,
    /// Median-of-`REPS` wall clock with tracing enabled.
    pub enabled: Duration,
    /// `(enabled - disabled) / disabled`, percent (can be negative).
    pub overhead_pct: f64,
    /// Whether the wall-clock gate is meaningful on this machine: on a
    /// single-CPU runner the comparison measures scheduler contention,
    /// not the tracing layer, so the overhead check is reported but not
    /// enforced. Bit-identity is always enforced.
    pub gate_enforced: bool,
    /// Disabled and enabled runs produced identical fingerprints.
    pub bit_identical: bool,
    /// Events captured by the last enabled run's ring.
    pub events_recorded: u64,
    /// Events the ring overwrote (0 means full fidelity).
    pub events_dropped: u64,
    /// Profiling spans captured.
    pub spans_recorded: u64,
    /// `validate_jsonl` verdict on the exported event log.
    pub jsonl: Result<usize, String>,
    /// `validate_chrome` verdict on the exported Chrome trace.
    pub chrome: Result<usize, String>,
    /// `validate_metrics` verdict on the exported metrics snapshot.
    pub metrics: Result<(), String>,
}

/// The median of the collected wall-clock samples.
fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs both modes `REPS` times interleaved (so clock drift and cache
/// warmth hit both equally) and validates the exports.
pub fn compare(n_hosts: u32, hours: u64) -> ObsComparison {
    let hosts = small_datacenter(n_hosts, HostClass::Medium);
    let trace = bench_trace(hours);

    let mut disabled_samples = Vec::with_capacity(REPS);
    let mut enabled_samples = Vec::with_capacity(REPS);
    let mut baseline_print: Option<String> = None;
    let mut bit_identical = true;
    let mut last_obs = Obs::disabled();
    for _ in 0..REPS {
        let (report, audit, dt) = run_once(&hosts, &trace, &Obs::disabled());
        disabled_samples.push(dt);
        let print = fingerprint(&report, &audit);
        match &baseline_print {
            None => baseline_print = Some(print),
            Some(base) => bit_identical &= *base == print,
        }

        let obs = Obs::enabled(RING_CAPACITY);
        let (report, audit, dt) = run_once(&hosts, &trace, &obs);
        enabled_samples.push(dt);
        bit_identical &= baseline_print.as_deref() == Some(fingerprint(&report, &audit).as_str());
        last_obs = obs;
    }
    let disabled = median(&mut disabled_samples);
    let enabled = median(&mut enabled_samples);

    let (len, _, dropped) = last_obs.ring_stats().unwrap_or((0, 0, 0));
    ObsComparison {
        disabled,
        enabled,
        overhead_pct: 100.0 * (enabled.as_secs_f64() - disabled.as_secs_f64())
            / disabled.as_secs_f64(),
        gate_enforced: std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(true),
        bit_identical,
        events_recorded: len as u64,
        events_dropped: dropped,
        spans_recorded: last_obs.spans_recorded(),
        jsonl: validate::validate_jsonl(&last_obs.export_jsonl()),
        chrome: validate::validate_chrome(&last_obs.export_chrome()),
        metrics: validate::validate_metrics(&last_obs.export_metrics()),
    }
}

/// Renders the comparison as the `BENCH_obs.json` artifact.
pub fn to_json(c: &ObsComparison) -> String {
    format!(
        "{{\n  \"disabled_ms\": {:.2},\n  \"enabled_ms\": {:.2},\n  \
         \"overhead_pct\": {:.2},\n  \"overhead_budget_pct\": {:.1},\n  \
         \"overhead_gate_enforced\": {},\n  \
         \"bit_identical\": {},\n  \"events_recorded\": {},\n  \
         \"events_dropped\": {},\n  \"spans_recorded\": {},\n  \
         \"jsonl_events_valid\": {},\n  \"chrome_entries_valid\": {},\n  \
         \"metrics_valid\": {}\n}}\n",
        c.disabled.as_secs_f64() * 1e3,
        c.enabled.as_secs_f64() * 1e3,
        c.overhead_pct,
        OVERHEAD_BUDGET_PCT,
        c.gate_enforced,
        c.bit_identical,
        c.events_recorded,
        c.events_dropped,
        c.spans_recorded,
        c.jsonl
            .as_ref()
            .map(|n| n.to_string())
            .unwrap_or_else(|_| "-1".into()),
        c.chrome
            .as_ref()
            .map(|n| n.to_string())
            .unwrap_or_else(|_| "-1".into()),
        c.metrics.is_ok(),
    )
}

/// Runs the observability-overhead experiment (20 medium nodes, one-day
/// trace, SB policy — the Table II workload shape).
pub fn run() -> ExperimentResult {
    let c = compare(20, 24);
    let mut result = ExperimentResult::new(
        "obs_overhead",
        "Observability layer — overhead and bit-identity",
        "not a paper result: an engineering gate for the eards-obs tracing \
         layer (event ring, metrics registry, profiling spans) wired \
         through the runner and the score-based solver.",
    );

    let mut t = Table::new(["mode", "wall (ms)", "events", "spans", "dropped"]);
    t.row([
        "disabled".into(),
        fnum(c.disabled.as_secs_f64() * 1e3, 1),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row([
        "enabled".into(),
        fnum(c.enabled.as_secs_f64() * 1e3, 1),
        c.events_recorded.to_string(),
        c.spans_recorded.to_string(),
        c.events_dropped.to_string(),
    ]);
    result.tables.push((
        format!("median of {REPS} interleaved runs (20 medium nodes, 1-day trace, SB)"),
        t,
    ));

    result.notes.push(format!(
        "Shape check: tracing disabled is bit-identical to tracing enabled \
         (full RunReport + audit trail fingerprint) — {}.",
        if c.bit_identical { "holds" } else { "VIOLATED" }
    ));
    result.notes.push(format!(
        "Shape check: enabled overhead {:.2}% stays under the \
         {OVERHEAD_BUDGET_PCT:.0}% budget — {}.",
        c.overhead_pct,
        if !c.gate_enforced {
            // One CPU core: disabled and enabled runs fight the same
            // core, so the ratio measures OS scheduling, not tracing
            // cost. Report but do not fail (bit-identity above is the
            // correctness property and is always enforced).
            "skipped (single CPU core; wall-clock ratio not meaningful)"
        } else if c.overhead_pct < OVERHEAD_BUDGET_PCT {
            "holds"
        } else {
            "VIOLATED"
        }
    ));
    result.notes.push(format!(
        "Shape check: the run actually produced a trace ({} events, {} \
         spans) and all three exports pass schema validation — {}.",
        c.events_recorded,
        c.spans_recorded,
        if c.events_recorded > 0
            && c.spans_recorded > 0
            && c.jsonl.is_ok()
            && c.chrome.is_ok()
            && c.metrics.is_ok()
        {
            "holds"
        } else {
            "VIOLATED"
        }
    ));

    result
        .artifacts
        .push(("BENCH_obs.json".into(), to_json(&c)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity is the correctness property; keep the test small and
    /// timing-free so it cannot flake on a loaded machine.
    #[test]
    fn enabled_run_is_bit_identical_to_disabled() {
        let hosts = small_datacenter(6, HostClass::Medium);
        let trace = bench_trace(3);
        let (r0, a0, _) = run_once(&hosts, &trace, &Obs::disabled());
        let obs = Obs::enabled(4096);
        let (r1, a1, _) = run_once(&hosts, &trace, &obs);
        assert_eq!(fingerprint(&r0, &a0), fingerprint(&r1, &a1));
        assert!(obs.events_recorded() > 0, "the trace captured the run");
    }

    #[test]
    fn exports_of_a_real_run_validate() {
        let hosts = small_datacenter(6, HostClass::Medium);
        let trace = bench_trace(2);
        let obs = Obs::enabled(4096);
        run_once(&hosts, &trace, &obs);
        assert!(validate::validate_jsonl(&obs.export_jsonl()).unwrap() > 0);
        assert!(validate::validate_chrome(&obs.export_chrome()).unwrap() > 0);
        validate::validate_metrics(&obs.export_metrics()).unwrap();
    }

    #[test]
    fn json_artifact_shape() {
        let c = ObsComparison {
            disabled: Duration::from_millis(100),
            enabled: Duration::from_millis(102),
            overhead_pct: 2.0,
            gate_enforced: true,
            bit_identical: true,
            events_recorded: 10,
            events_dropped: 0,
            spans_recorded: 4,
            jsonl: Ok(10),
            chrome: Ok(14),
            metrics: Ok(()),
        };
        let json = to_json(&c);
        assert!(json.contains("\"overhead_pct\": 2.00"));
        assert!(json.contains("\"overhead_gate_enforced\": true"));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"jsonl_events_valid\": 10"));
        // And it round-trips the crate's own JSON parser.
        validate::parse(&json).unwrap();
    }

    #[test]
    fn median_is_the_middle_sample() {
        let mut s = [
            Duration::from_millis(90),
            Duration::from_millis(400), // one slow outlier must not win
            Duration::from_millis(100),
        ];
        assert_eq!(median(&mut s), Duration::from_millis(100));
    }
}
