//! Table III — impact of virtualization overheads (no migration).
//!
//! §V-C enables the overhead penalties incrementally: SB1 adds `P_virt`
//! (creation cost awareness), SB2 adds `P_conc` (operation concurrency).
//! The paper's findings: SB1 selects better creation nodes but loses some
//! SLA; SB2 recovers SLA (faster creations) at a small power cost; with
//! the SLA headroom SB2 buys, λ can be tightened to 40–90 for 880 kWh —
//! "a reduction of more than 12% with regard to the Backfilling policy
//! while getting a similar SLA fulfillment".

use eards_datacenter::{paper_datacenter, run_sweep, RunConfig, SweepPoint};
use eards_metrics::{pct_change, RunReport, Table};

use crate::common::{make_policy, paper_trace, ExperimentResult};

/// The Table III rows: (policy, λ_min, λ_max).
pub const ROWS: &[(&str, u32, u32)] = &[
    ("SB0", 30, 90),
    ("SB1", 30, 90),
    ("SB2", 30, 90),
    ("SB2", 40, 90),
];

/// Runs the Table III configurations (plus BF as the comparison base).
pub fn reports() -> Vec<RunReport> {
    let trace = paper_trace();
    let hosts = paper_datacenter();
    let mut out = Vec::new();
    for &(name, lo, hi) in ROWS {
        let label = format!("{name} λ{lo}-{hi}");
        out.push(
            run_sweep(
                &hosts,
                &trace,
                || make_policy(name),
                vec![SweepPoint {
                    label,
                    config: RunConfig::default().with_lambdas(lo, hi),
                }],
            )
            .remove(0),
        );
    }
    out.push(
        run_sweep(
            &hosts,
            &trace,
            || make_policy("BF"),
            vec![SweepPoint {
                label: "BF λ30-90 (ref)".into(),
                config: RunConfig::default(),
            }],
        )
        .remove(0),
    );
    out
}

/// Regenerates Table III.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let mut result = ExperimentResult::new(
        "table3_virt_overheads",
        "Table III — score-based policies without migration",
        "SB0 1016 kWh / S 98.2; SB1 1007 / 97.9; SB2 1038 / 99.2; \
         SB2 λ40-90: 880 kWh / S 98.1 — >12% below Backfilling at equal SLA.",
    );
    let mut t = Table::new(RunReport::paper_header());
    for r in &reports {
        t.row(r.paper_row());
    }
    result.tables.push(("Overhead-penalty ablation".into(), t));

    let by = |label: &str| reports.iter().find(|r| r.label == label).unwrap();
    let sb0 = by("SB0 λ30-90");
    let sb2 = by("SB2 λ30-90");
    let sb2t = by("SB2 λ40-90");
    let bf = by("BF λ30-90 (ref)");

    let sb2_sla_edge = sb2.satisfaction_pct >= sb0.satisfaction_pct - 0.1;
    let tightened_gain = pct_change(bf.energy_kwh, sb2t.energy_kwh);
    let sla_preserved = (sb2t.satisfaction_pct - bf.satisfaction_pct).abs() < 2.0;

    result.notes.push(format!(
        "SB2's concurrency awareness preserves/recovers SLA relative to SB0: {}",
        ok(sb2_sla_edge)
    ));
    result.notes.push(format!(
        "SB2 at λ40-90 vs BF: {tightened_gain:.1}% power (paper: −12%) at similar \
         SLA: {}",
        ok(tightened_gain < -8.0 && sla_preserved)
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_holds() {
        let r = run();
        assert_eq!(r.tables[0].1.len(), ROWS.len() + 1);
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }
}
