//! Extension ablation — dynamic λ thresholds.
//!
//! §V-A closes with: "A next step would be to dynamically adjust these
//! thresholds, which is part of our future work." This experiment builds
//! that controller (a satisfaction-feedback loop on λ_min, see
//! [`eards_datacenter::AdaptiveLambda`]) and compares it against the
//! static settings of the paper on the standard week: the adaptive run
//! should approach the energy of the best hand-tuned static λ_min while
//! holding the satisfaction target — without anyone sweeping Figure 2
//! first.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{paper_datacenter, run_sweep, AdaptiveLambda, RunConfig, SweepPoint};
use eards_metrics::{RunReport, Table};

use crate::common::{paper_trace, ExperimentResult};

/// Satisfaction target the adaptive controller holds.
pub const TARGET_S: f64 = 99.0;

/// Runs static λ ∈ {20, 30, 40, 50}–90 plus the adaptive controller.
pub fn reports() -> Vec<RunReport> {
    let trace = paper_trace();
    let hosts = paper_datacenter();
    let mut points: Vec<SweepPoint> = [20u32, 30, 40, 50]
        .iter()
        .map(|&lo| SweepPoint {
            label: format!("static λ{lo}-90"),
            config: RunConfig::default().with_lambdas(lo, 90),
        })
        .collect();
    points.push(SweepPoint {
        label: format!("adaptive (target {TARGET_S}%)"),
        config: RunConfig {
            adaptive_lambda: Some(AdaptiveLambda {
                target_satisfaction: TARGET_S,
                ..AdaptiveLambda::default()
            }),
            ..RunConfig::default()
        },
    });
    run_sweep(
        &hosts,
        &trace,
        || Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        points,
    )
}

/// Runs the dynamic-threshold ablation.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let mut result = ExperimentResult::new(
        "ablation_adaptive_lambda",
        "Extension — dynamic λ thresholds (feedback controller)",
        "not evaluated in the paper (future work, §V-A): static thresholds \
         trade power against SLA; a dynamic controller should track the \
         provider's satisfaction target automatically.",
    );
    let mut t = Table::new(RunReport::paper_header());
    for r in &reports {
        t.row(r.paper_row());
    }
    result
        .tables
        .push(("Static λ_min settings vs the adaptive controller".into(), t));

    let adaptive = reports.last().expect("adaptive run present");
    // Best static setting that still meets the target.
    let best_static_ok = reports[..reports.len() - 1]
        .iter()
        .filter(|r| r.satisfaction_pct >= TARGET_S)
        .min_by(|a, b| a.energy_kwh.total_cmp(&b.energy_kwh));
    // Most frugal static setting overall (may violate the target).
    let most_frugal = reports[..reports.len() - 1]
        .iter()
        .min_by(|a, b| a.energy_kwh.total_cmp(&b.energy_kwh))
        .expect("non-empty");

    result.notes.push(format!(
        "adaptive holds the satisfaction target ({:.2}% vs target {TARGET_S}%): {}",
        adaptive.satisfaction_pct,
        ok(adaptive.satisfaction_pct >= TARGET_S - 0.5)
    ));
    if let Some(best) = best_static_ok {
        result.notes.push(format!(
            "adaptive energy ({:.1} kWh) is within 10% of the best hand-tuned \
             static setting that meets the target ({}: {:.1} kWh): {}",
            adaptive.energy_kwh,
            best.label,
            best.energy_kwh,
            ok(adaptive.energy_kwh <= best.energy_kwh * 1.10)
        ));
    }
    result.notes.push(format!(
        "the most frugal static setting ({}: {:.1} kWh at {:.2}% S) shows what \
         the adaptive controller is trading away when it protects the target",
        most_frugal.label, most_frugal.energy_kwh, most_frugal.satisfaction_pct
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_controller_holds_target_and_stays_competitive() {
        let r = run();
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }
}
