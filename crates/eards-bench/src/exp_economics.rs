//! Extension — provider economics.
//!
//! The paper names "global revenue" as a first-class provider interest
//! (§I, §III) and defers "economical decision making" to future work
//! (§VI). This experiment prices every Table II/IV policy on the standard
//! week with a simple 2010-flavoured tariff (revenue per CPU·hour
//! delivered, linear SLA refunds, a flat electricity price) and ranks
//! them by profit — collapsing the power-vs-SLA trade-off into the number
//! a provider actually optimizes.

use eards_datacenter::{paper_datacenter, run_sweep, RunConfig, SweepPoint};
use eards_metrics::{fnum, PricingModel, RunReport};

use crate::common::{make_policy, paper_trace, ExperimentResult};

/// The priced policies: every contender from Tables II and IV.
pub const POLICIES: &[(&str, u32, u32)] = &[
    ("RD", 30, 90),
    ("RR", 30, 90),
    ("BF", 30, 90),
    ("DBF", 30, 90),
    ("SB", 30, 90),
    ("SB", 40, 90),
];

/// Runs every policy and returns the raw reports.
pub fn reports() -> Vec<RunReport> {
    let trace = paper_trace();
    let hosts = paper_datacenter();
    POLICIES
        .iter()
        .map(|&(name, lo, hi)| {
            run_sweep(
                &hosts,
                &trace,
                || make_policy(name),
                vec![SweepPoint {
                    label: format!("{name} λ{lo}-{hi}"),
                    config: RunConfig::default().with_lambdas(lo, hi),
                }],
            )
            .remove(0)
        })
        .collect()
}

/// Runs the economics extension.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let pricing = PricingModel::default();
    let mut result = ExperimentResult::new(
        "economics",
        "Extension — provider economics (revenue / SLA credits / energy / profit)",
        "not quantified in the paper; it argues consolidation must be \
         weighed against \"QoS, reliability, and global revenue\" (§I–III). \
         Expected shape: naive policies bleed SLA credits, spreading \
         policies bleed energy, and the overhead-aware score-based policy \
         maximizes profit.",
    );

    result.tables.push((
        format!(
            "Week priced at {:.2}/CPU·h revenue, {:.2}/kWh energy, full SLA refunds",
            pricing.revenue_per_cpu_hour, pricing.energy_cost_per_kwh
        ),
        pricing.table(&reports),
    ));

    let econ: Vec<_> = reports.iter().map(|r| pricing.evaluate(r)).collect();
    let best = econ
        .iter()
        .max_by(|a, b| a.profit.total_cmp(&b.profit))
        .expect("non-empty");
    let by = |label: &str| econ.iter().find(|e| e.label == label).unwrap();
    let rd = by("RD λ30-90");
    let rr = by("RR λ30-90");
    let bf = by("BF λ30-90");
    let sb = by("SB λ40-90");

    result.notes.push(format!(
        "the tuned score-based policy is the most profitable ({} at {}): {}",
        best.label,
        fnum(best.profit, 2),
        ok(best.label.starts_with("SB"))
    ));
    result.notes.push(format!(
        "naive policies pay twice — RD refunds {} in SLA credits, RR burns {} \
         in energy, both dwarfing BF's ({} / {}): {}",
        fnum(rd.sla_credits, 2),
        fnum(rr.energy_cost, 2),
        fnum(bf.sla_credits, 2),
        fnum(bf.energy_cost, 2),
        ok(rd.sla_credits > 3.0 * bf.sla_credits && rr.energy_cost > bf.energy_cost)
    ));
    result.notes.push(format!(
        "energy-awareness converts directly into margin: SB λ40-90 keeps {} \
         more profit than BF on identical revenue: {}",
        fnum(sb.profit - bf.profit, 2),
        ok(sb.profit > bf.profit)
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn economics_shape_holds() {
        let r = run();
        assert_eq!(r.tables[0].1.len(), POLICIES.len());
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }

    /// A provider can't profit from violating SLAs: pricing punishes RD's
    /// delays more than its energy savings earn.
    #[test]
    fn sla_violations_do_not_pay() {
        let reports = reports();
        let pricing = PricingModel::default();
        let rd = pricing.evaluate(&reports[0]);
        let bf = pricing.evaluate(&reports[2]);
        assert!(
            rd.profit < bf.profit,
            "RD {} vs BF {}",
            rd.profit,
            bf.profit
        );
    }
}
