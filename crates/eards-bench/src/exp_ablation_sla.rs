//! Extension ablation — dynamic SLA enforcement under overload.
//!
//! §III-A.5 defines the `P_SLA` penalty and the request-escalation
//! mechanism ("we increase the amount of needed resources for that VM ...
//! so the VM will be rescheduled in another node with more available
//! resources"); the paper leaves its evaluation to future work. This
//! experiment stresses a smaller datacenter (25 nodes) with a 1.5×
//! overloaded trace and compares:
//!
//! 1. **SB** — deadline-blind scheduling;
//! 2. **SB+SLA** — `P_SLA` enabled, SLA-violation rounds allowed to move
//!    VMs, and violated VMs' resource requests escalated so rescheduling
//!    reserves them headroom against operation-overhead contention.
//!
//! Under strict (non-overcommitted) placement the enforcement channel is
//! narrow by construction — a running VM already receives its full demand
//! unless dom0 operations eat into the node — so the honest expectation
//! is a *small* satisfaction edge, not a rescue. The experiment reports
//! whatever is measured.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{run_sweep, small_datacenter, RunConfig, SweepPoint};
use eards_metrics::{RunReport, Table};
use eards_model::HostClass;
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig};

use crate::common::ExperimentResult;

/// Runs both variants over a 3-day, 1.5×-load trace on 25 nodes.
pub fn reports() -> Vec<RunReport> {
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_days(3),
            ..SynthConfig::grid5000_week()
        }
        .with_load_factor(1.5),
        crate::common::TRACE_SEED,
    );
    let hosts = small_datacenter(25, HostClass::Medium);
    let variants: Vec<(String, ScoreConfig, bool)> = vec![
        ("SB".into(), ScoreConfig::sb(), false),
        (
            "SB+SLA".into(),
            {
                let mut c = ScoreConfig::sb();
                c.sla_penalty = true;
                c.named("SB+SLA")
            },
            true,
        ),
    ];
    variants
        .into_iter()
        .map(|(label, score_cfg, dynamic)| {
            let run_cfg = RunConfig {
                dynamic_sla: dynamic,
                ..RunConfig::default()
            };
            run_sweep(
                &hosts,
                &trace,
                move || Box::new(ScoreScheduler::new(score_cfg.clone())),
                vec![SweepPoint {
                    label,
                    config: run_cfg.clone(),
                }],
            )
            .remove(0)
        })
        .collect()
}

/// Runs the SLA-enforcement ablation.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let mut result = ExperimentResult::new(
        "ablation_sla",
        "Extension — dynamic SLA enforcement under overload",
        "not evaluated in the paper (future work, §VI); §III-A.5 predicts \
         violated VMs get rescheduled with escalated resource requests, \
         recovering SLAs at some consolidation cost.",
    );

    let mut t = Table::new(RunReport::paper_header());
    for r in &reports {
        t.row(r.paper_row());
    }
    result
        .tables
        .push(("25 nodes, 1.5× load, 3-day trace".into(), t));

    let plain = &reports[0];
    let sla = &reports[1];
    result.notes.push(format!(
        "SLA awareness does not hurt satisfaction ({:.2}% vs {:.2}%): {}",
        sla.satisfaction_pct,
        plain.satisfaction_pct,
        ok(sla.satisfaction_pct >= plain.satisfaction_pct - 0.3)
    ));
    result.notes.push(format!(
        "measured SLA-awareness delta: ΔS = {:+.2} points, Δdelay = {:+.2} \
         points, Δenergy = {:+.1} kWh — small by construction: without CPU \
         overcommit a running VM already gets its full demand, so the \
         enforcement only acts through violation-triggered rescheduling and \
         headroom reservation against dom0 operation overheads",
        sla.satisfaction_pct - plain.satisfaction_pct,
        sla.delay_pct - plain.delay_pct,
        sla.energy_kwh - plain.energy_kwh
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_and_enforcement_complete() {
        let reports = reports();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            // Overloaded but viable: most jobs complete either way.
            assert!(
                r.jobs_completed as f64 >= 0.9 * r.jobs_total as f64,
                "{}: {}/{}",
                r.label,
                r.jobs_completed,
                r.jobs_total
            );
        }
        // Enforcement must not make things worse.
        assert!(reports[1].satisfaction_pct >= reports[0].satisfaction_pct - 0.5);
    }
}
