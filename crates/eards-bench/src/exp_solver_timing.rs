//! Solver timing — full-rescan reference vs the incremental engine.
//!
//! Not a paper table: this section tracks the performance contract of the
//! incremental score-matrix engine (`eards_core::ScoreMatrix`). It times
//! one hill-climbing round on growing ⟨hosts, VMs⟩ cases three ways —
//!
//! * **reference** — `solve_reference`, the original `O(M·N)`-per-sweep
//!   full rescan,
//! * **incremental** — `solve`, cached cells + dirty-row invalidation,
//!   allocating its matrix fresh,
//! * **warm** — `solve_matrix` over recycled [`EngineBuffers`], the way
//!   `ScoreScheduler` runs it round after round —
//!
//! verifies all three produce the identical move sequence (the
//! differential contract the `matrix_oracle` proptests pin down), and
//! shape-checks that the incremental engine is ≥ 3× faster than the
//! reference on the 100-host/200-VM case.

use std::time::Instant;

use eards_core::{
    solve, solve_matrix, solve_reference, EngineBuffers, Eval, ScoreConfig, ScoreMatrix, Solution,
};
use eards_metrics::Table;
use eards_model::{Cluster, VmId};
use eards_sim::SimTime;

use crate::common::{solver_case, ExperimentResult};

/// Move cap for the timed climbs: high enough that the 200-VM case runs
/// its full placement cascade rather than stopping at the paper's
/// per-round default.
const CAP: usize = 256;

const NOW_SECS: u64 = 100;

/// Minimum incremental-vs-reference speedup the 100h/200v case must show.
const SPEEDUP_FLOOR: f64 = 3.0;

fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // solver timing measures wall time
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn run_reference(cluster: &Cluster, cols: &[VmId], cfg: &ScoreConfig) -> Solution {
    let mut eval = Eval::new(cluster, cfg, SimTime::from_secs(NOW_SECS), cols.to_vec());
    solve_reference(&mut eval, CAP)
}

fn run_incremental(cluster: &Cluster, cols: &[VmId], cfg: &ScoreConfig) -> Solution {
    let mut eval = Eval::new(cluster, cfg, SimTime::from_secs(NOW_SECS), cols.to_vec());
    solve(&mut eval, CAP)
}

fn run_warm(
    cluster: &Cluster,
    cols: &[VmId],
    cfg: &ScoreConfig,
    buf: &mut EngineBuffers,
) -> Solution {
    let mut eval = Eval::new_in(
        cluster,
        cfg,
        SimTime::from_secs(NOW_SECS),
        cols.to_vec(),
        buf,
    );
    let mut matrix = ScoreMatrix::new_in(&mut eval, buf);
    let sol = solve_matrix(&mut matrix, CAP);
    matrix.recycle(buf);
    eval.recycle(buf);
    sol
}

/// Regenerates the solver-timing section.
pub fn run() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "solver_timing",
        "Solver timing — incremental engine vs full rescan",
        "§III-B bounds one round by O(#Hosts · #VMs) · C; the incremental \
         engine drops the per-sweep cost from M·N rescored cells to the two \
         rows a move dirties.",
    );

    let cfg = ScoreConfig::sb();
    let mut table = Table::new([
        "case",
        "reference (ms)",
        "incremental (ms)",
        "warm (ms)",
        "speedup",
        "moves",
        "sweeps",
    ]);
    let mut csv = String::from("case,reference_ms,incremental_ms,warm_ms,speedup,moves,sweeps\n");
    let mut headline_speedup = 0.0;
    let mut all_identical = true;
    let mut buf = EngineBuffers::new();

    for &(hosts, running, queued) in &[(25u32, 25u64, 25u64), (50, 50, 50), (100, 100, 100)] {
        let vms = running + queued;
        let label = format!("{hosts}h_{vms}v");
        let (cluster, cols) = solver_case(hosts, running, queued);

        // One warmup apiece, then best-of-N wall clock (min is the right
        // statistic for a deterministic routine on a noisy machine).
        run_reference(&cluster, &cols, &cfg);
        let (t_ref, sol_ref) = time_min(5, || run_reference(&cluster, &cols, &cfg));
        run_incremental(&cluster, &cols, &cfg);
        let (t_inc, sol_inc) = time_min(5, || run_incremental(&cluster, &cols, &cfg));
        run_warm(&cluster, &cols, &cfg, &mut buf);
        let (t_warm, sol_warm) = time_min(5, || run_warm(&cluster, &cols, &cfg, &mut buf));

        let identical = sol_ref == sol_inc && sol_ref == sol_warm;
        all_identical &= identical;
        let speedup = t_ref / t_inc;
        if hosts == 100 {
            headline_speedup = speedup;
        }
        table.row([
            label.clone(),
            format!("{:.3}", t_ref * 1e3),
            format!("{:.3}", t_inc * 1e3),
            format!("{:.3}", t_warm * 1e3),
            format!("{speedup:.1}x"),
            sol_ref.moves.len().to_string(),
            sol_ref.sweeps.to_string(),
        ]);
        use std::fmt::Write as _;
        let _ = writeln!(
            csv,
            "{label},{:.4},{:.4},{:.4},{speedup:.2},{},{}",
            t_ref * 1e3,
            t_inc * 1e3,
            t_warm * 1e3,
            sol_ref.moves.len(),
            sol_ref.sweeps,
        );
    }

    result.tables.push((
        "One scheduling round (matrix build + hill climb), best of 5".into(),
        table,
    ));
    result.artifacts.push(("solver_timing.csv".into(), csv));

    result.notes.push(if all_identical {
        "Shape check: all three paths return identical move sequences — holds.".into()
    } else {
        "Shape check: all three paths return identical move sequences — VIOLATED.".into()
    });
    result.notes.push(
        "Noise bounds: best-of-5 wall clock on a shared machine is stable to \
         roughly ±2% per point (the `solver` bench harness, time-budgeted \
         batching, is similar); adjacent points of any sweep closer than \
         that are unordered noise. The bench's `max_moves` sweep therefore \
         uses a case large enough that every cap truncates the climb — a \
         converged case makes the top caps equal-work and their ordering \
         a coin flip."
            .into(),
    );
    result.notes.push(if headline_speedup >= SPEEDUP_FLOOR {
        format!(
            "Shape check: incremental >= {SPEEDUP_FLOOR:.0}x reference on 100h_200v \
             (measured {headline_speedup:.1}x) — holds."
        )
    } else {
        format!(
            "Shape check: incremental >= {SPEEDUP_FLOOR:.0}x reference on 100h_200v \
             (measured {headline_speedup:.1}x) — VIOLATED."
        )
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paths_agree_on_a_small_case() {
        let cfg = ScoreConfig::sb();
        let (cluster, cols) = solver_case(10, 10, 10);
        let a = run_reference(&cluster, &cols, &cfg);
        let b = run_incremental(&cluster, &cols, &cfg);
        let mut buf = EngineBuffers::new();
        let c = run_warm(&cluster, &cols, &cfg, &mut buf);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(!a.moves.is_empty(), "queued VMs must be placed");
    }
}
