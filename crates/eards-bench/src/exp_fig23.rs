//! Figures 2 & 3 — power and satisfaction vs the (λ_min, λ_max) grid.
//!
//! §V-A sweeps the turn-on/off thresholds under the score-based policy and
//! shows two surfaces: power falls as either threshold rises (Fig. 2)
//! while client satisfaction falls with aggressiveness (Fig. 3) — the
//! trade-off resolved at λ_min = 30%, λ_max = 90%.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{lambda_grid, paper_datacenter, run_sweep, RunConfig};
use eards_metrics::{fnum, RunReport, Table};

use crate::common::{paper_trace, ExperimentResult};

/// λ_min values of the grid (percent).
pub const MIN_GRID: &[u32] = &[10, 20, 30, 40, 50, 60, 70, 80];
/// λ_max values of the grid (percent).
pub const MAX_GRID: &[u32] = &[30, 40, 50, 60, 70, 80, 90, 100];

/// Runs the sweep; `(label, λ_min, λ_max, report)` per valid grid point.
pub fn sweep(min_grid: &[u32], max_grid: &[u32]) -> Vec<(u32, u32, RunReport)> {
    let trace = paper_trace();
    let hosts = paper_datacenter();
    let points = lambda_grid(&RunConfig::default(), min_grid, max_grid);
    let pairs: Vec<(u32, u32)> = min_grid
        .iter()
        .flat_map(|&lo| max_grid.iter().map(move |&hi| (lo, hi)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    let reports = run_sweep(
        &hosts,
        &trace,
        || Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        points,
    );
    pairs
        .into_iter()
        .zip(reports)
        .map(|((lo, hi), r)| (lo, hi, r))
        .collect()
}

fn surface_table(
    results: &[(u32, u32, RunReport)],
    min_grid: &[u32],
    max_grid: &[u32],
    value: impl Fn(&RunReport) -> f64,
    prec: usize,
) -> Table {
    let mut header = vec!["λmin \\ λmax".to_string()];
    header.extend(max_grid.iter().map(|m| m.to_string()));
    let mut table = Table::new(header);
    for &lo in min_grid {
        let mut row = vec![lo.to_string()];
        for &hi in max_grid {
            let cell = results
                .iter()
                .find(|&&(a, b, _)| a == lo && b == hi)
                .map(|(_, _, r)| fnum(value(r), prec))
                .unwrap_or_else(|| "—".into());
            row.push(cell);
        }
        table.row(row);
    }
    table
}

fn surface_csv(results: &[(u32, u32, RunReport)], value: impl Fn(&RunReport) -> f64) -> String {
    let mut csv = String::from("lambda_min,lambda_max,value\n");
    for (lo, hi, r) in results {
        csv.push_str(&format!("{lo},{hi},{:.3}\n", value(r)));
    }
    csv
}

/// Checks monotone trends along the grid axes, allowing `tol` violations
/// (the runs are stochastic). Returns (violations, comparisons).
fn trend_violations(
    results: &[(u32, u32, RunReport)],
    value: impl Fn(&RunReport) -> f64,
    decreasing: bool,
) -> (usize, usize) {
    let mut violations = 0;
    let mut comparisons = 0;
    // Along λ_min (fixed λ_max) and along λ_max (fixed λ_min).
    for fixed_max in MAX_GRID {
        let mut line: Vec<(u32, f64)> = results
            .iter()
            .filter(|&&(_, hi, _)| hi == *fixed_max)
            .map(|(lo, _, r)| (*lo, value(r)))
            .collect();
        line.sort_by_key(|&(lo, _)| lo);
        for w in line.windows(2) {
            comparisons += 1;
            let rising = w[1].1 > w[0].1 + 1e-9;
            if rising == decreasing {
                violations += 1;
            }
        }
    }
    for fixed_min in MIN_GRID {
        let mut line: Vec<(u32, f64)> = results
            .iter()
            .filter(|&&(lo, _, _)| lo == *fixed_min)
            .map(|(_, hi, r)| (*hi, value(r)))
            .collect();
        line.sort_by_key(|&(hi, _)| hi);
        for w in line.windows(2) {
            comparisons += 1;
            let rising = w[1].1 > w[0].1 + 1e-9;
            if rising == decreasing {
                violations += 1;
            }
        }
    }
    (violations, comparisons)
}

/// Regenerates Figures 2 and 3.
pub fn run() -> ExperimentResult {
    run_with_grid(MIN_GRID, MAX_GRID)
}

/// Sweep over an arbitrary grid (tests use a small one).
pub fn run_with_grid(min_grid: &[u32], max_grid: &[u32]) -> ExperimentResult {
    let results = sweep(min_grid, max_grid);
    let mut result = ExperimentResult::new(
        "fig2_3_threshold_sweep",
        "Figures 2 & 3 — power and satisfaction vs (λ_min, λ_max)",
        "power falls monotonically as λ_min or λ_max rises (more aggressive \
         on/off); satisfaction falls as the mechanism gets more aggressive; \
         λ_min = 30%, λ_max = 90% balances the trade-off (§V-A).",
    );

    result.tables.push((
        "Fig. 2 — power consumption (kWh)".into(),
        surface_table(&results, min_grid, max_grid, |r| r.energy_kwh, 0),
    ));
    result.tables.push((
        "Fig. 3 — client satisfaction S (%)".into(),
        surface_table(&results, min_grid, max_grid, |r| r.satisfaction_pct, 1),
    ));
    result.artifacts.push((
        "fig2_power_surface.csv".into(),
        surface_csv(&results, |r| r.energy_kwh),
    ));
    result.artifacts.push((
        "fig3_satisfaction_surface.csv".into(),
        surface_csv(&results, |r| r.satisfaction_pct),
    ));

    // Both quantities fall as either λ rises (more aggressive on/off):
    // power because fewer nodes stay up, satisfaction because capacity
    // arrives later.
    let (pv, pc) = trend_violations(&results, |r| r.energy_kwh, true);
    let (sv, sc) = trend_violations(&results, |r| r.satisfaction_pct, true);
    result.notes.push(format!(
        "power-decreases-with-aggressiveness trend: {pv}/{pc} pairwise violations \
         (stochastic runs; the paper's surface is likewise non-strict)"
    ));
    result.notes.push(format!(
        "satisfaction-decreases-with-aggressiveness trend: {sv}/{sc} pairwise violations"
    ));
    if let (Some(min_p), Some(max_p)) = (
        results
            .iter()
            .map(|(_, _, r)| r.energy_kwh)
            .min_by(f64::total_cmp),
        results
            .iter()
            .map(|(_, _, r)| r.energy_kwh)
            .max_by(f64::total_cmp),
    ) {
        result.notes.push(format!(
            "threshold choice moves power by {:.0}% across the grid \
             ({:.0}→{:.0} kWh) — the \"dramatic\" lever §V-A describes",
            100.0 * (max_p - min_p) / max_p,
            max_p,
            min_p
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full-grid sweeps take ~a minute; the unit test uses a 2×2 corner
    /// (the full surface is exercised by the experiment binary itself).
    #[test]
    fn small_sweep_shows_the_tradeoff() {
        let results = sweep(&[20, 60], &[50, 90]);
        assert_eq!(results.len(), 3, "(60, 50) is invalid and filtered");
        let get = |lo: u32, hi: u32| {
            results
                .iter()
                .find(|&&(a, b, _)| a == lo && b == hi)
                .map(|(_, _, r)| r)
                .unwrap()
        };
        // The gentlest corner consumes more than the most aggressive one.
        let gentle = get(20, 50);
        let aggressive = get(60, 90);
        assert!(
            gentle.energy_kwh > aggressive.energy_kwh,
            "gentle {} vs aggressive {}",
            gentle.energy_kwh,
            aggressive.energy_kwh
        );
        // And satisfaction does not improve with aggressiveness.
        assert!(gentle.satisfaction_pct >= aggressive.satisfaction_pct - 0.5);
    }
}
