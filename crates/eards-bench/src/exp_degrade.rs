//! Degradation ladder — bounded per-round work and per-rung quality loss.
//!
//! Not a paper table: the paper's scheduler always runs its placement
//! optimisation to quiescence. This experiment characterises the overload
//! -control layer added on top of it, in two parts:
//!
//! 1. **Boundedness.** At the 400-host / 320-VM solver scale, a finite
//!    work budget must cap every round's deterministic work spend at
//!    `budget + slack`, where the slack is one hill-climb sweep's worth
//!    (the solver checks the meter between sweeps, never mid-sweep).
//! 2. **Quality loss per rung.** Under `chaos(2.0)` with the Strict
//!    auditor (deep `Cluster::verify` every batch; a violation panics),
//!    each ladder rung is forced in turn and the energy / SLA cost of
//!    degrading is tabulated — the price list an operator consults when
//!    choosing a budget.
//!
//! The experiment also re-proves the hard identity gate at bench scale:
//! an armed-but-unlimited budget is bit-identical to an unarmed run.

use eards_core::{DegradeLevel, OverloadControl, ScoreConfig, ScoreScheduler};
use eards_datacenter::{small_datacenter, AuditorMode, RunConfig, Runner};
use eards_metrics::{fnum, RunReport, Table};
use eards_model::{DegradeStats, FaultPlan, HostClass, Policy, ScheduleContext, ScheduleReason};
use eards_sim::{SimDuration, SimTime};
use eards_workload::{generate, SynthConfig, Trace};

use crate::common::{solver_case, ExperimentResult, TRACE_SEED};

/// Work budgets swept by the boundedness check (units per round).
pub const BUDGETS: [u64; 3] = [20_000, 100_000, 500_000];

/// Boundedness scenario scale: 400 hosts, 320 VMs (160 placed + 160
/// queued), the shape named by the issue.
const BOUND_HOSTS: u32 = 400;
const BOUND_PLACED: u64 = 160;
const BOUND_QUEUED: u64 = 160;

/// Rounds driven per budget — enough for the ladder EWMA to settle on a
/// sustainable rung.
const BOUND_ROUNDS: u64 = 6;

/// Fault intensity of the quality-loss runs.
const CHAOS: f64 = 2.0;

/// Fleet size of the quality-loss runs.
const QUALITY_HOSTS: u32 = 32;

/// The adaptive-ladder row's per-round budget (work units).
const LADDER_BUDGET: u64 = 25_000;

/// One sweep's worth of budget overshoot: the solver checks the meter
/// between sweeps, so a round can overshoot by at most the initial lazy
/// fill (`m·n` cell scores) plus the first column-best scan (another
/// `m·n`), one argmin scan (`n`), one queued-column challenge (`n`) and
/// one column recompute (`m`).
pub fn slack(hosts: u64, vms: u64) -> u64 {
    2 * hosts * vms + 2 * vms + hosts
}

/// Part 1 — drives `BOUND_ROUNDS` scheduling rounds per budget against
/// the 400h/320v matrix and returns each budget's ladder stats.
pub fn boundedness() -> Vec<(u64, DegradeStats)> {
    BUDGETS
        .iter()
        .map(|&budget| {
            let (cluster, _) = solver_case(BOUND_HOSTS, BOUND_PLACED, BOUND_QUEUED);
            let mut sched = ScoreScheduler::new(ScoreConfig::full())
                .with_overload(OverloadControl::with_budget(budget));
            for round in 0..BOUND_ROUNDS {
                let ctx = ScheduleContext {
                    now: SimTime::from_secs(300 * (round + 1)),
                    reason: ScheduleReason::Periodic,
                };
                let _ = sched.schedule(&cluster, &ctx);
            }
            let stats = sched.degrade_stats().expect("armed scheduler has stats");
            (budget, stats)
        })
        .collect()
}

/// One quality-loss run's outcome.
pub struct QualityRow {
    /// Row label (rung or mode).
    pub label: String,
    /// The full run report.
    pub report: RunReport,
    /// Ladder stats (None for the unarmed baseline).
    pub stats: Option<DegradeStats>,
    /// VMs parked by runner backpressure.
    pub vms_parked: u64,
}

fn day_trace() -> Trace {
    generate(
        &SynthConfig {
            span: SimDuration::from_days(1),
            ..SynthConfig::grid5000_week()
        },
        TRACE_SEED,
    )
}

fn quality_config(degrade: bool) -> RunConfig {
    let mut cfg = RunConfig {
        audit: true,
        seed: 11,
        ..RunConfig::default()
    }
    .with_faults(FaultPlan::chaos(CHAOS))
    .with_auditor(AuditorMode::Strict);
    cfg.degrade = degrade;
    cfg.park_after = 4;
    cfg
}

fn quality_run(label: &str, ctl: Option<OverloadControl>, degrade: bool) -> QualityRow {
    let hosts = small_datacenter(QUALITY_HOSTS, HostClass::Medium);
    let trace = day_trace();
    let mut sched = ScoreScheduler::new(ScoreConfig::full());
    if let Some(c) = ctl {
        sched = sched.with_overload(c);
    }
    let mut runner = Runner::new(hosts, trace, Box::new(sched), quality_config(degrade));
    while runner.step_batch() {}
    let stats = runner.policy().degrade_stats();
    let vms_parked = runner.vms_parked();
    let (report, _audit) = runner.finish();
    QualityRow {
        label: label.into(),
        report,
        stats,
        vms_parked,
    }
}

/// Part 2 — the per-rung quality-loss runs: unarmed baseline, the
/// identity twin (∞ budget), each forced rung, and the adaptive ladder
/// on a finite budget. Every run is Strict-audited under `chaos(2.0)`.
pub fn quality() -> Vec<QualityRow> {
    let mut rows = vec![
        quality_run("baseline (unarmed)", None, false),
        quality_run(
            "L0 \u{221e} budget",
            Some(OverloadControl::with_budget(u64::MAX)),
            false,
        ),
    ];
    for rung in DegradeLevel::ALL {
        rows.push(quality_run(
            &format!("forced {}", rung.label()),
            Some(OverloadControl::forced(u64::MAX, rung)),
            true,
        ));
    }
    rows.push(quality_run(
        &format!("ladder @{LADDER_BUDGET}"),
        Some(OverloadControl::with_budget(LADDER_BUDGET)),
        true,
    ));
    rows
}

/// Renders both parts as the `BENCH_degrade.json` regression baseline.
pub fn to_json(bound: &[(u64, DegradeStats)], rows: &[QualityRow]) -> String {
    let mut out = String::from("{\n  \"boundedness\": {\n");
    out.push_str(&format!(
        "    \"hosts\": {BOUND_HOSTS}, \"vms\": {}, \"rounds_per_budget\": {BOUND_ROUNDS}, \
         \"slack\": {},\n    \"runs\": {{\n",
        BOUND_PLACED + BOUND_QUEUED,
        slack(BOUND_HOSTS as u64, BOUND_PLACED + BOUND_QUEUED),
    ));
    let slack_b = slack(BOUND_HOSTS as u64, BOUND_PLACED + BOUND_QUEUED);
    for (i, (budget, s)) in bound.iter().enumerate() {
        out.push_str(&format!(
            "      \"{budget}\": {{\"max_round_work\": {}, \"total_work\": {}, \
             \"exhausted_rounds\": {}, \"rounds_at\": [{}, {}, {}, {}], \"holds\": {}}}{}\n",
            s.max_round_work,
            s.total_work,
            s.exhausted_rounds,
            s.rounds_at[0],
            s.rounds_at[1],
            s.rounds_at[2],
            s.rounds_at[3],
            s.max_round_work <= budget + slack_b,
            if i + 1 < bound.len() { "," } else { "" },
        ));
    }
    out.push_str("    }\n  },\n  \"quality\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        let (degraded, exhausted, max_work) = row
            .stats
            .map(|s| (s.degraded_rounds, s.exhausted_rounds, s.max_round_work))
            .unwrap_or((0, 0, 0));
        out.push_str(&format!(
            "    \"{}\": {{\"energy_kwh\": {:.3}, \"satisfaction_pct\": {:.2}, \
             \"delay_pct\": {:.2}, \"degraded_rounds\": {degraded}, \
             \"exhausted_rounds\": {exhausted}, \"max_round_work\": {max_work}, \
             \"vms_parked\": {}, \"invariant_violations\": {}}}{}\n",
            row.label,
            r.energy_kwh,
            r.satisfaction_pct,
            r.delay_pct,
            row.vms_parked,
            r.faults.invariant_violations,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Runs the degradation-ladder experiment.
pub fn run() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "degrade",
        "Degradation ladder — bounded work and per-rung quality loss",
        "not evaluated in the paper (its scheduler always optimises to \
         quiescence). The overload-control framing follows the SLA \
         argument of Nanduri et al. (PAPERS.md): a late placement is a \
         broken placement, so per-round decision cost must be bounded.",
    );

    // Part 1 — boundedness at 400h/320v.
    let bound = boundedness();
    let slack_b = slack(BOUND_HOSTS as u64, BOUND_PLACED + BOUND_QUEUED);
    let mut t = Table::new([
        "Budget",
        "Max round work",
        "Bound (budget+slack)",
        "Exhausted rounds",
        "L0/L1/L2/L3",
    ]);
    for (budget, s) in &bound {
        t.row([
            budget.to_string(),
            s.max_round_work.to_string(),
            (budget + slack_b).to_string(),
            s.exhausted_rounds.to_string(),
            format!(
                "{}/{}/{}/{}",
                s.rounds_at[0], s.rounds_at[1], s.rounds_at[2], s.rounds_at[3]
            ),
        ]);
    }
    t.row([
        "\u{221e}".into(),
        "(not armed)".into(),
        "\u{2014}".into(),
        "0".into(),
        format!("{BOUND_ROUNDS}/0/0/0"),
    ]);
    result.tables.push((
        format!(
            "Per-round work bound, {BOUND_HOSTS} hosts \u{00d7} {} VMs, \
             {BOUND_ROUNDS} rounds per budget (slack = one sweep = {slack_b})",
            BOUND_PLACED + BOUND_QUEUED
        ),
        t,
    ));
    let bounded = bound
        .iter()
        .all(|(budget, s)| s.max_round_work <= budget + slack_b);
    result.notes.push(format!(
        "Shape check: per-round work never exceeds budget + one sweep's \
         slack at any budget — {}.",
        if bounded { "holds" } else { "VIOLATED" }
    ));
    let pressured = bound
        .iter()
        .any(|(_, s)| s.exhausted_rounds > 0 || s.degraded_rounds > 0);
    result.notes.push(format!(
        "Shape check: the 400h/320v matrix actually pressures the smallest \
         budget (some round exhausted or degraded) — {}.",
        if pressured { "holds" } else { "VIOLATED" }
    ));

    // Part 2 — quality loss per rung under chaos(2.0), Strict-audited.
    let rows = quality();
    let mut t = Table::new([
        "Run",
        "Pwr (kWh)",
        "S (%)",
        "delay (%)",
        "Degraded",
        "Exhausted",
        "Max work",
        "Parked",
        "Audit viol",
    ]);
    for row in &rows {
        let r = &row.report;
        let (degraded, exhausted, max_work) = row
            .stats
            .map(|s| (s.degraded_rounds, s.exhausted_rounds, s.max_round_work))
            .unwrap_or((0, 0, 0));
        t.row([
            row.label.clone(),
            fnum(r.energy_kwh, 1),
            fnum(r.satisfaction_pct, 1),
            fnum(r.delay_pct, 1),
            degraded.to_string(),
            exhausted.to_string(),
            max_work.to_string(),
            row.vms_parked.to_string(),
            r.faults.invariant_violations.to_string(),
        ]);
    }
    result.tables.push((
        format!(
            "Quality loss per ladder rung ({QUALITY_HOSTS} medium nodes, \
             1-day trace, chaos({CHAOS:.1}), Strict auditor)"
        ),
        t,
    ));

    // Shape check: the hard identity gate, at bench scale — an armed but
    // unlimited budget changes nothing, bit for bit.
    let identical = format!("{:?}", rows[0].report) == format!("{:?}", rows[1].report);
    result.notes.push(format!(
        "Shape check: hard identity gate — \u{221e}-budget run bit-identical \
         (full RunReport) to the unarmed baseline — {}.",
        if identical { "holds" } else { "VIOLATED" }
    ));

    // Shape check: Strict auditing stayed clean on every rung (a
    // violation would have panicked long before this line; the counter
    // double-checks the report plumbing).
    let violations: u64 = rows
        .iter()
        .map(|r| r.report.faults.invariant_violations)
        .sum();
    result.notes.push(format!(
        "Shape check: zero invariant violations across all {} Strict-audited \
         runs (every ladder rung under chaos({CHAOS:.1})) — {}.",
        rows.len(),
        if violations == 0 { "holds" } else { "VIOLATED" }
    ));

    // Shape check: forced L3 defers every round — the solver never runs.
    let l3 = rows
        .iter()
        .find(|r| r.label == "forced l3_defer")
        .and_then(|r| r.stats);
    let deferred = l3.is_some_and(|s| s.max_round_work == 0 && s.rounds_at[3] == s.rounds);
    result.notes.push(format!(
        "Shape check: forced L3 defers every round (zero solver work) — {}.",
        if deferred { "holds" } else { "VIOLATED" }
    ));

    result
        .artifacts
        .push(("BENCH_degrade.json".into(), to_json(&bound, &rows)));
    result
}

/// A short strict-mode degradation run for CI: tiny budget, heavy chaos,
/// Strict auditor (panics on the first invariant violation). Returns the
/// ladder stats and the parked count for the caller to print; panics if
/// the work bound is broken.
pub fn smoke() -> (DegradeStats, u64, RunReport) {
    const BUDGET: u64 = 2_000;
    let hosts = small_datacenter(8, HostClass::Medium);
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_hours(6),
            ..SynthConfig::grid5000_week()
        },
        TRACE_SEED,
    );
    let policy = ScoreScheduler::new(ScoreConfig::full())
        .with_overload(OverloadControl::with_budget(BUDGET));
    let mut cfg = quality_config(true);
    cfg.park_after = 2;
    let mut runner = Runner::new(hosts, trace, Box::new(policy), cfg);
    while runner.step_batch() {}
    let stats = runner
        .policy()
        .degrade_stats()
        .expect("armed policy reports stats");
    let vms_parked = runner.vms_parked();
    let (report, _audit) = runner.finish();
    // The queue never exceeds the trace's job count; bound the sweep
    // slack generously by the fleet and a 256-VM round.
    let bound = BUDGET + slack(8, 256);
    assert!(
        stats.max_round_work <= bound,
        "smoke: round work {} exceeds bound {bound}",
        stats.max_round_work
    );
    (stats, vms_parked, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundedness_holds_at_scale() {
        // One budget (the smallest — the one under real pressure), to
        // keep the unit suite fast; `run()` sweeps all three.
        let (cluster, _) = solver_case(BOUND_HOSTS, BOUND_PLACED, BOUND_QUEUED);
        let budget = BUDGETS[0];
        let mut sched = ScoreScheduler::new(ScoreConfig::full())
            .with_overload(OverloadControl::with_budget(budget));
        for round in 0..BOUND_ROUNDS {
            let ctx = ScheduleContext {
                now: SimTime::from_secs(300 * (round + 1)),
                reason: ScheduleReason::Periodic,
            };
            let _ = sched.schedule(&cluster, &ctx);
        }
        let s = sched.degrade_stats().unwrap();
        let bound = budget + slack(BOUND_HOSTS as u64, BOUND_PLACED + BOUND_QUEUED);
        assert!(s.rounds == BOUND_ROUNDS);
        assert!(
            s.max_round_work <= bound,
            "round work {} exceeds bound {bound}",
            s.max_round_work
        );
        assert!(
            s.exhausted_rounds > 0 || s.degraded_rounds > 0,
            "a 20k budget must pressure a 400h/320v matrix"
        );
    }

    #[test]
    fn json_artifact_shape() {
        let bound = vec![(1_000u64, DegradeStats::default())];
        let rows = Vec::new();
        let json = to_json(&bound, &rows);
        assert!(json.contains("\"boundedness\""));
        assert!(json.contains("\"slack\""));
        assert!(json.contains("\"1000\""));
        assert!(json.contains("\"holds\": true"));
        assert!(json.contains("\"quality\""));
    }
}
