//! Robustness — the headline across workload seeds.
//!
//! The paper evaluates one Grid5000 week; a reproduction on a synthetic
//! trace owes the reader evidence that the −15% headline is a property of
//! the *policy*, not of one lucky arrival sequence. This experiment
//! regenerates the Table IV comparison over several independent workload
//! seeds and reports the distribution of the SB-vs-BF and SB-vs-DBF
//! savings.

use eards_datacenter::{paper_datacenter, run_sweep, RunConfig, SweepPoint};
use eards_metrics::{fnum, pct_change, Summary, Table};
use eards_workload::{generate, SynthConfig};

use crate::common::{make_policy, ExperimentResult};

/// The workload seeds evaluated.
pub const SEEDS: &[u64] = &[7, 11, 23, 42, 101];

/// Per-seed savings: `(seed, sb_vs_bf_pct, sb_vs_dbf_pct, sb_satisfaction)`.
pub fn savings() -> Vec<(u64, f64, f64, f64)> {
    let hosts = paper_datacenter();
    SEEDS
        .iter()
        .map(|&seed| {
            let trace = generate(&SynthConfig::grid5000_week(), seed);
            let run = |name: &str, lo: u32, hi: u32| {
                run_sweep(
                    &hosts,
                    &trace,
                    || make_policy(name),
                    vec![SweepPoint {
                        label: format!("{name} λ{lo}-{hi}"),
                        config: RunConfig::default().with_lambdas(lo, hi),
                    }],
                )
                .remove(0)
            };
            let bf = run("BF", 30, 90);
            let dbf = run("DBF", 30, 90);
            let sb = run("SB", 40, 90);
            (
                seed,
                pct_change(bf.energy_kwh, sb.energy_kwh),
                pct_change(dbf.energy_kwh, sb.energy_kwh),
                sb.satisfaction_pct,
            )
        })
        .collect()
}

/// Runs the robustness experiment.
pub fn run() -> ExperimentResult {
    let rows = savings();
    let mut result = ExperimentResult::new(
        "robustness_seeds",
        "Robustness — the Table IV headline across workload seeds",
        "the paper reports one trace (−15% vs BF, −12% vs DBF); a credible \
         reproduction must show the saving is stable across independent \
         workloads of the same calibration.",
    );

    let mut t = Table::new(["trace seed", "SB λ40-90 vs BF", "vs DBF", "SB S (%)"]);
    let mut vs_bf = Summary::new();
    let mut vs_dbf = Summary::new();
    for &(seed, bf, dbf, s) in &rows {
        vs_bf.push(bf);
        vs_dbf.push(dbf);
        t.row([
            seed.to_string(),
            format!("{bf:+.1}%"),
            format!("{dbf:+.1}%"),
            fnum(s, 2),
        ]);
    }
    t.row([
        "mean ± σ".to_string(),
        format!("{:+.1}% ± {:.1}", vs_bf.mean(), vs_bf.std_dev()),
        format!("{:+.1}% ± {:.1}", vs_dbf.mean(), vs_dbf.std_dev()),
        String::new(),
    ]);
    result
        .tables
        .push((format!("{} independent week-long traces", SEEDS.len()), t));

    let all_negative = rows.iter().all(|&(_, bf, _, _)| bf < 0.0);
    result.notes.push(format!(
        "SB saves energy vs BF on every seed (mean {:+.1}%, worst {:+.1}%): {}",
        vs_bf.mean(),
        vs_bf.max().unwrap_or(0.0),
        ok(all_negative)
    ));
    result.notes.push(format!(
        "the mean saving brackets the paper's −15% (ours {:+.1}% ± {:.1}): {}",
        vs_bf.mean(),
        vs_bf.std_dev(),
        ok((-25.0..=-10.0).contains(&vs_bf.mean()))
    ));
    result.notes.push(format!(
        "SB also beats DBF on every seed: {}",
        ok(rows.iter().all(|&(_, _, dbf, _)| dbf < 0.0))
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_is_seed_robust() {
        let r = run();
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }
}
