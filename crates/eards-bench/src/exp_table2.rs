//! Table II — static allocation (policies without migration).
//!
//! §V-B compares Random, Round Robin, Backfilling and the basic
//! score-based variant SB0 at λ = 30–90. The paper's findings:
//! non-consolidating policies (RD, RR) give poor energy efficiency *and*
//! violate many SLAs; BF consolidates well; SB0 behaves "very similar" to
//! BF.

use eards_datacenter::{paper_datacenter, run_sweep, RunConfig, SweepPoint};
use eards_metrics::{pct_change, RunReport};

use crate::common::{make_policy, paper_trace, ExperimentResult};

/// Runs the four static policies over the canonical week.
pub fn reports() -> Vec<RunReport> {
    let trace = paper_trace();
    let hosts = paper_datacenter();
    ["RD", "RR", "BF", "SB0"]
        .iter()
        .map(|name| {
            // One point per policy; run_sweep parallelizes across policies
            // through repeated single-point calls — simpler to fan out here.
            run_sweep(
                &hosts,
                &trace,
                || make_policy(name),
                vec![SweepPoint {
                    label: name.to_string(),
                    config: RunConfig::default(),
                }],
            )
            .remove(0)
        })
        .collect()
}

/// Regenerates Table II.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let mut result = ExperimentResult::new(
        "table2_static",
        "Table II — scheduling results of policies without migration",
        "RD 1952 kWh / S 33% / delay 475%; RR 2321 kWh / S 60% / delay \
         338%; BF 1007 kWh / S 98%; SB0 1016 kWh / S 98% — RD/RR are worst \
         on both axes, BF consolidates, SB0 ≈ BF.",
    );
    result
        .tables
        .push(("λ = 30–90, no migration".into(), RunReport::table(&reports)));

    let by = |label: &str| reports.iter().find(|r| r.label == label).unwrap();
    let (rd, rr, bf, sb0) = (by("RD"), by("RR"), by("BF"), by("SB0"));

    let shape_naive_power = rd.energy_kwh > bf.energy_kwh && rr.energy_kwh > bf.energy_kwh;
    let shape_naive_sla =
        rd.satisfaction_pct < bf.satisfaction_pct && rr.satisfaction_pct < bf.satisfaction_pct;
    let shape_rd_vs_rr = rd.satisfaction_pct < rr.satisfaction_pct && rr.energy_kwh > rd.energy_kwh;
    let shape_sb0_like_bf = pct_change(bf.energy_kwh, sb0.energy_kwh).abs() < 3.0
        && (sb0.satisfaction_pct - bf.satisfaction_pct).abs() < 2.0;

    result.notes.push(format!(
        "naive policies lose on both axes (power AND satisfaction): {}",
        ok(shape_naive_power && shape_naive_sla)
    ));
    result.notes.push(format!(
        "RR burns more power than RD but satisfies more clients (its spread \
         avoids collisions): {}",
        ok(shape_rd_vs_rr)
    ));
    result.notes.push(format!(
        "SB0 behaves like BF (within 3% power, 2 points of S): {}",
        ok(shape_sb0_like_bf)
    ));
    result.notes.push(format!(
        "RD/RR satisfaction penalties are milder here than the paper's 33/60% \
         — our synthetic trace's bursts are capped at 120-task campaigns; the \
         ordering and both-axes-worse shape hold (delays: RD {:.0}% vs RR {:.0}% \
         vs BF {:.1}%)",
        rd.delay_pct, rr.delay_pct, bf.delay_pct
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let r = run();
        assert_eq!(r.tables[0].1.len(), 4);
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }
}
