//! # eards-bench — the experiment harness
//!
//! One experiment module per table/figure of the paper's evaluation, each
//! regenerating the corresponding result over the EARDS stack:
//!
//! | Module | Paper result |
//! |--------|--------------|
//! | [`exp_table1`] | Table I — server power vs CPU configuration |
//! | [`exp_fig1`] | Fig. 1 — simulator validation |
//! | [`exp_fig23`] | Figs. 2–3 — (λ_min, λ_max) threshold surfaces |
//! | [`exp_table2`] | Table II — static policies |
//! | [`exp_table3`] | Table III — virtualization-overhead penalties |
//! | [`exp_table4`] | Table IV — migration (the −15% headline) |
//! | [`exp_table5`] | Table V — consolidation-cost sweep |
//! | [`exp_ablation_reliability`] | extension: failures, checkpointing, `P_fault` |
//! | [`exp_chaos`] | chaos engine: full fault plan at escalating intensities |
//! | [`exp_degrade`] | engine: work-budget boundedness + ladder quality loss |
//! | [`exp_ablation_sla`] | extension: overload + dynamic SLA enforcement |
//! | [`exp_ablation_adaptive`] | extension: dynamic λ thresholds (future work of §V-A) |
//! | [`exp_solver_timing`] | engine: incremental score matrix vs full-rescan reference |
//! | [`exp_obs`] | engine: observability overhead + bit-identity gate |
//!
//! Binaries under `src/bin/` wrap these one-to-one; `run_all` regenerates
//! everything and rebuilds `EXPERIMENTS.md`. Criterion microbenches of the
//! engine/solver live under `benches/`.

#![warn(missing_docs)]

pub mod common;
pub mod exp_ablation_adaptive;
pub mod exp_ablation_powermodel;
pub mod exp_ablation_reliability;
pub mod exp_ablation_sla;
pub mod exp_chaos;
pub mod exp_degrade;
pub mod exp_economics;
pub mod exp_fig1;
pub mod exp_fig23;
pub mod exp_obs;
pub mod exp_robustness;
pub mod exp_solver_timing;
pub mod exp_table1;
pub mod exp_table2;
pub mod exp_table3;
pub mod exp_table4;
pub mod exp_table5;

pub use common::{emit, make_policy, paper_trace, ExperimentResult, TRACE_SEED};
