//! Table I — virtualized server power usage.
//!
//! The paper measures a real 4-way Xen node under eight VM/CPU
//! configurations and finds the draw depends only on total CPU. This
//! experiment replays the same eight configurations through the model
//! stack — VMs placed on one host, the credit scheduler allocating CPU,
//! the calibrated power model converting to Watts — and regenerates the
//! table.

use eards_metrics::{fnum, Table};
use eards_model::{
    CalibratedPowerModel, Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState,
};
use eards_sim::{SimDuration, SimTime};

use crate::common::ExperimentResult;

/// One measured configuration of Table I: the per-VM virtual-CPU loads.
struct Config {
    /// Display label, e.g. `1+2`.
    label: &'static str,
    /// CPU demand of each VM, in percent points.
    vm_loads: &'static [u32],
    /// The paper's measured Watts.
    paper_watts: f64,
}

const CONFIGS: &[Config] = &[
    Config {
        label: "1 @ 100%",
        vm_loads: &[100],
        paper_watts: 259.0,
    },
    Config {
        label: "1+1 @ 2x100%",
        vm_loads: &[100, 100],
        paper_watts: 273.0,
    },
    Config {
        label: "2 @ 200%",
        vm_loads: &[200],
        paper_watts: 273.0,
    },
    Config {
        label: "1+2 @ 100%+200%",
        vm_loads: &[100, 200],
        paper_watts: 291.0,
    },
    Config {
        label: "3 @ 300%",
        vm_loads: &[300],
        paper_watts: 291.0,
    },
    Config {
        label: "1+1+1+1 @ 4x100%",
        vm_loads: &[100, 100, 100, 100],
        paper_watts: 304.0,
    },
    Config {
        label: "4 @ 400%",
        vm_loads: &[400],
        paper_watts: 304.0,
    },
    Config {
        label: "1+1+1+1 @ 4x0%",
        vm_loads: &[0, 0, 0, 0],
        paper_watts: 230.0,
    },
];

/// Builds a one-host cluster running VMs at the given loads and returns
/// its measured power.
fn measure(vm_loads: &[u32]) -> f64 {
    let mut cluster = Cluster::new(
        vec![HostSpec::standard(HostId(0), HostClass::Medium)],
        PowerState::On,
    );
    let t0 = SimTime::ZERO;
    for (i, &load) in vm_loads.iter().enumerate() {
        let vm = cluster.submit_job(Job::new(
            JobId(i as u64),
            t0,
            Cpu(load),
            Mem::gib(1),
            SimDuration::from_hours(1),
            2.0,
        ));
        cluster.start_creation(vm, HostId(0), t0, t0 + SimDuration::from_secs(40));
        cluster.finish_creation(vm, t0 + SimDuration::from_secs(40));
    }
    cluster.reallocate_host(HostId(0), t0 + SimDuration::from_secs(40));
    cluster.total_power(&CalibratedPowerModel::paper_4way())
}

/// Regenerates Table I.
pub fn run() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "table1_power_model",
        "Table I — virtualized server power usage",
        "230 W idle → 304 W at 400% CPU; draw depends only on total CPU, \
         not on the number or shape of VMs (§IV-A).",
    );

    let mut table = Table::new(["#VCPUs / %CPU", "Paper (W)", "Model (W)", "Δ (W)"]);
    let mut max_abs_err: f64 = 0.0;
    for cfg in CONFIGS {
        let watts = measure(cfg.vm_loads);
        max_abs_err = max_abs_err.max((watts - cfg.paper_watts).abs());
        table.row([
            cfg.label.to_string(),
            fnum(cfg.paper_watts, 0),
            fnum(watts, 0),
            fnum(watts - cfg.paper_watts, 1),
        ]);
    }
    result.tables.push(("Power by configuration".into(), table));

    // The headline property: VM shape is irrelevant, only total CPU counts.
    let shapes_200 = [measure(&[200]), measure(&[100, 100])];
    let shapes_300 = [
        measure(&[300]),
        measure(&[100, 200]),
        measure(&[100, 100, 100]),
    ];
    let invariant = shapes_200.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9)
        && shapes_300.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9);
    result.notes.push(format!(
        "maximum absolute deviation from the paper's measurements: {max_abs_err:.2} W \
         (0 by construction — the model interpolates the published points)"
    ));
    result.notes.push(format!(
        "shape-independence invariant (same total CPU ⇒ same Watts): {}",
        if invariant { "HOLDS" } else { "VIOLATED" }
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_every_table_1_row_exactly() {
        for cfg in CONFIGS {
            assert_eq!(
                measure(cfg.vm_loads),
                cfg.paper_watts,
                "config {}",
                cfg.label
            );
        }
    }

    #[test]
    fn result_has_all_rows_and_invariant_note() {
        let r = run();
        assert_eq!(r.tables[0].1.len(), CONFIGS.len());
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")));
    }
}
