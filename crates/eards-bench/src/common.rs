//! Shared infrastructure for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has one experiment
//! function in this crate returning an [`ExperimentResult`]; the thin
//! binaries print it and `run_all` stitches all of them into
//! `EXPERIMENTS.md`.

use std::fs;
use std::path::Path;

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_metrics::Table;
use eards_model::{
    Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, Policy, PowerState, VmId,
};
use eards_policies::{BackfillingPolicy, DynamicBackfillingPolicy, RandomPolicy, RoundRobinPolicy};
use eards_sim::{SimDuration, SimRng, SimTime};
use eards_workload::{generate, SynthConfig, Trace};

/// Seed of the canonical week-long trace used by all table experiments
/// (fixed so every experiment sees the same workload, like the paper's
/// single Grid5000 week).
pub const TRACE_SEED: u64 = 7;

/// The canonical week-long Grid5000-like trace.
pub fn paper_trace() -> Trace {
    generate(&SynthConfig::grid5000_week(), TRACE_SEED)
}

/// Policy constructors by table row name.
pub fn make_policy(name: &str) -> Box<dyn Policy> {
    match name {
        "RD" => Box::new(RandomPolicy::new(1)),
        "RR" => Box::new(RoundRobinPolicy::new()),
        "BF" => Box::new(BackfillingPolicy::new()),
        "DBF" => Box::new(DynamicBackfillingPolicy::new()),
        "SB0" => Box::new(ScoreScheduler::new(ScoreConfig::sb0())),
        "SB1" => Box::new(ScoreScheduler::new(ScoreConfig::sb1())),
        "SB2" => Box::new(ScoreScheduler::new(ScoreConfig::sb2())),
        "SB" => Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        other => panic!("unknown policy name {other:?}"),
    }
}

/// The outcome of one experiment: captioned tables plus prose notes.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Identifier used for file names (e.g. `table2_static`).
    pub id: String,
    /// Human title (e.g. `Table II — static allocation`).
    pub title: String,
    /// What the paper reported, quoted for side-by-side comparison.
    pub paper_reference: String,
    /// Captioned result tables.
    pub tables: Vec<(String, Table)>,
    /// Observations, including the shape checks that hold/fail.
    pub notes: Vec<String>,
    /// Extra machine-readable artifacts `(file name, contents)` — CSV
    /// series for plotting, etc.
    pub artifacts: Vec<(String, String)>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str, paper_reference: &str) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            paper_reference: paper_reference.into(),
            tables: Vec::new(),
            notes: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Renders the result as a Markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n*Paper:* {}\n\n", self.title, self.paper_reference);
        for (caption, table) in &self.tables {
            out.push_str(&format!("**{caption}**\n\n"));
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n\n");
            for n in &self.notes {
                out.push_str(&format!("* {n}\n"));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the section and its artifacts under `dir` (created if
    /// needed). Returns the list of files written.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let md = dir.join(format!("{}.md", self.id));
        fs::write(&md, self.to_markdown())?;
        written.push(md.display().to_string());
        for (name, contents) in &self.artifacts {
            let p = dir.join(name);
            fs::write(&p, contents)?;
            written.push(p.display().to_string());
        }
        Ok(written)
    }
}

/// A deterministic solver workload: `hosts` Medium nodes, `running`
/// placed VMs of mixed 100/200-point sizes and `queued` 100-point VMs.
/// Shared by the solver microbenches (`benches/solver.rs`) and the
/// solver-timing experiment so both measure the exact same matrix.
pub fn solver_case(hosts: u32, running: u64, queued: u64) -> (Cluster, Vec<VmId>) {
    let mut rng = SimRng::seed_from_u64(1);
    let specs = (0..hosts)
        .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
        .collect();
    let mut cluster = Cluster::new(specs, PowerState::On);
    let mut cols = Vec::new();
    let t0 = SimTime::ZERO;
    let t1 = SimTime::from_secs(40);
    for j in 0..running {
        let cpu = Cpu(100 * (1 + rng.index(2) as u32));
        let vm = cluster.submit_job(Job::new(
            JobId(j),
            t0,
            cpu,
            Mem::gib(1),
            SimDuration::from_secs(7200),
            1.5,
        ));
        let mut placed = false;
        for k in 0..hosts {
            let h = HostId((j as u32 + k) % hosts);
            if cluster.can_place(h, vm) {
                cluster.start_creation(vm, h, t0, t1);
                cluster.finish_creation(vm, t1);
                placed = true;
                break;
            }
        }
        if placed {
            cols.push(vm);
        }
    }
    for j in 0..queued {
        let vm = cluster.submit_job(Job::new(
            JobId(running + j),
            t1,
            Cpu(100),
            Mem::gib(1),
            SimDuration::from_secs(3600),
            1.5,
        ));
        cols.push(vm);
    }
    (cluster, cols)
}

/// A large-scale solver workload for the sharded engine: `hosts` Medium
/// nodes each directly loaded with `per_host` running 100-point VMs
/// (`per_host` ≤ 4; placements are feasible by construction, skipping
/// the `O(hosts)` feasibility probe per VM that makes [`solver_case`]
/// setup quadratic and unusable at 10k hosts), plus `queued` 100-point
/// VMs awaiting placement.
pub fn scale_case(hosts: u32, per_host: u32, queued: u64) -> (Cluster, Vec<VmId>) {
    assert!(
        per_host <= 4,
        "Medium hosts fit at most 4 hundred-point VMs"
    );
    let specs = (0..hosts)
        .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
        .collect();
    let mut cluster = Cluster::new(specs, PowerState::On);
    let mut cols = Vec::new();
    let t0 = SimTime::ZERO;
    let t1 = SimTime::from_secs(40);
    let mut job_id = 0u64;
    for _ in 0..per_host {
        for h in 0..hosts {
            let vm = cluster.submit_job(Job::new(
                JobId(job_id),
                t0,
                Cpu(100),
                Mem::gib(1),
                SimDuration::from_secs(7200),
                1.5,
            ));
            job_id += 1;
            cluster.start_creation(vm, HostId(h), t0, t1);
            cluster.finish_creation(vm, t1);
            cols.push(vm);
        }
    }
    for _ in 0..queued {
        let vm = cluster.submit_job(Job::new(
            JobId(job_id),
            t1,
            Cpu(100),
            Mem::gib(1),
            SimDuration::from_secs(3600),
            1.5,
        ));
        job_id += 1;
        cols.push(vm);
    }
    (cluster, cols)
}

/// Merges `(label, mean seconds per iteration)` results into the
/// workspace-root `BENCH_solver.json` baseline: existing entries with
/// other labels are preserved, colliding labels are overwritten, and the
/// derived reference/incremental speedup is recomputed from the merged
/// set. Lets the `solver` and `solver_scale` benches extend one baseline
/// file without clobbering each other's points.
pub fn merge_solver_baseline(path: &Path, new: &[(String, f64)]) -> std::io::Result<()> {
    let mut merged: Vec<(String, f64)> = Vec::new();
    if let Ok(text) = fs::read_to_string(path) {
        for line in text.lines() {
            // Result entries look like `    "label": 1.234e-3,` — other
            // lines fail the prefix strip or the f64 parse and are
            // skipped (the speedup is derived, so it is skipped by name
            // and recomputed below).
            let Some(rest) = line.trim().strip_prefix('"') else {
                continue;
            };
            let Some((label, value)) = rest.split_once("\": ") else {
                continue;
            };
            if label.starts_with("speedup") {
                continue;
            }
            if let Ok(v) = value.trim_end_matches(',').parse::<f64>() {
                merged.push((label.to_string(), v));
            }
        }
    }
    for (label, mean) in new {
        if let Some(entry) = merged.iter_mut().find(|(l, _)| l == label) {
            entry.1 = *mean;
        } else {
            merged.push((label.clone(), *mean));
        }
    }
    let mut json = String::from(
        "{\n  \"bench\": \"solver\",\n  \"unit\": \"mean_seconds_per_iter\",\n  \"results\": {\n",
    );
    for (i, (label, mean)) in merged.iter().enumerate() {
        let comma = if i + 1 < merged.len() { "," } else { "" };
        json.push_str(&format!("    \"{label}\": {mean:e}{comma}\n"));
    }
    json.push_str("  }");
    let find = |suffix: &str| {
        merged
            .iter()
            .find(|(label, _)| label.ends_with(suffix))
            .map(|&(_, mean)| mean)
    };
    if let (Some(reference), Some(incremental)) =
        (find("/reference_100h_200v"), find("/incremental_100h_200v"))
    {
        json.push_str(&format!(
            ",\n  \"speedup_100h_200v\": {:.2}",
            reference / incremental
        ));
    }
    json.push_str("\n}\n");
    fs::write(path, json)
}

/// Prints a result to stdout and writes it (plus artifacts) to
/// `results/`; the standard tail of every experiment binary.
pub fn emit(result: &ExperimentResult) {
    print!("{}", result.to_markdown());
    match result.write_to(Path::new("results")) {
        Ok(files) => {
            for f in files {
                eprintln!("wrote {f}");
            }
        }
        Err(e) => eprintln!("warning: could not write results/: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_factory_covers_all_rows() {
        for name in ["RD", "RR", "BF", "DBF", "SB0", "SB1", "SB2", "SB"] {
            let p = make_policy(name);
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        make_policy("nope");
    }

    #[test]
    fn paper_trace_is_stable() {
        let a = paper_trace();
        let b = paper_trace();
        assert_eq!(a.len(), b.len());
        assert!(a.len() > 1000);
    }

    #[test]
    fn markdown_rendering() {
        let mut r = ExperimentResult::new("x", "X — test", "paper said 42");
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        r.tables.push(("numbers".into(), t));
        r.notes.push("shape holds".into());
        let md = r.to_markdown();
        assert!(md.contains("## X — test"));
        assert!(md.contains("*Paper:* paper said 42"));
        assert!(md.contains("**numbers**"));
        assert!(md.contains("* shape holds"));
    }
}
