//! Figure 1 — simulator validation.
//!
//! §IV-B validates the paper's simulator against a real 4-way node running
//! a 1300-second, 7-task workload: total energy 99.9 ± 1.8 Wh measured vs
//! 97.5 Wh simulated (−2.4%), instantaneous error 8.62 W (σ 8.06 W).
//!
//! We have no physical testbed, so — per the substitution in DESIGN.md —
//! the "real" reference trace is synthesized from the simulated power
//! signal plus the two effects a real machine adds on top of the
//! calibrated model: a small unmodeled baseline (disk/IO activity the
//! power model of Table I excludes) and measurement noise, both matching
//! the error characteristics the paper reports. The experiment then
//! measures exactly what Fig. 1 reports: total-energy agreement and the
//! instantaneous error distribution, plus the plottable two-series CSV.

use eards_datacenter::{small_datacenter, RunConfig, Runner};
use eards_metrics::{fnum, Summary, Table};
use eards_model::HostClass;
use eards_policies::RandomPolicy;
use eards_sim::{SimDuration, SimRng, SimTime};
use eards_workload::{validation_workload, VALIDATION_SPAN};

use crate::common::ExperimentResult;

/// Unmodeled baseline draw of the reference machine (W): disk and chipset
/// activity that §IV-A's CPU-only model does not capture. Chosen so the
/// simulator *underestimates* totals by roughly the paper's 2.4%.
const REFERENCE_BIAS_WATTS: f64 = 6.5;
/// Measurement noise of the reference power meter (W).
const REFERENCE_NOISE_STD: f64 = 8.0;

/// Output of the validation run, exposed for tests.
pub struct Validation {
    /// Simulated total energy over the window (Wh).
    pub sim_wh: f64,
    /// Reference ("real") total energy (Wh).
    pub real_wh: f64,
    /// Relative underestimation in percent (positive = sim below real).
    pub underestimation_pct: f64,
    /// Mean absolute instantaneous error (W).
    pub inst_error_mean: f64,
    /// Standard deviation of the instantaneous error (W).
    pub inst_error_std: f64,
    /// `(t_secs, sim_watts, real_watts)` at 1-second resolution.
    pub series: Vec<(u64, f64, f64)>,
}

/// Runs the 7-task validation scenario on one 4-way node and compares
/// simulated vs reference power.
pub fn validate(seed: u64) -> Validation {
    let cfg = RunConfig {
        initial_on: 1,
        min_exec: 1,
        record_power_series: true,
        drain_limit: SimDuration::from_hours(2),
        seed,
        ..RunConfig::default()
    };
    // Random placement on a single node = that node, with CPU overcommit —
    // so the workload's contention phases actually exercise the credit
    // scheduler instead of queueing.
    let report = Runner::new(
        small_datacenter(1, HostClass::Medium),
        validation_workload(),
        Box::new(RandomPolicy::new(seed)),
        cfg,
    )
    .run();

    let window_end = SimTime::ZERO + VALIDATION_SPAN;
    let samples = report
        .power_watts
        .resample(SimTime::ZERO, window_end, SimDuration::from_secs(1));

    let mut rng = SimRng::seed_from_u64(seed ^ 0xF161);
    let mut series = Vec::with_capacity(samples.len());
    let mut err = Summary::new();
    let mut abs_err = Summary::new();
    let mut sim_integral = 0.0;
    let mut real_integral = 0.0;
    for (t, sim_w) in samples {
        let real_w = sim_w + rng.normal(REFERENCE_BIAS_WATTS, REFERENCE_NOISE_STD);
        series.push((t.as_millis() / 1000, sim_w, real_w));
        err.push(real_w - sim_w);
        abs_err.push((real_w - sim_w).abs());
        sim_integral += sim_w; // 1-second samples: Σ W·s
        real_integral += real_w;
    }
    let sim_wh = sim_integral / 3600.0;
    let real_wh = real_integral / 3600.0;
    Validation {
        sim_wh,
        real_wh,
        underestimation_pct: 100.0 * (real_wh - sim_wh) / real_wh,
        inst_error_mean: abs_err.mean(),
        inst_error_std: err.std_dev(),
        series,
    }
}

/// Regenerates Figure 1.
pub fn run() -> ExperimentResult {
    let v = validate(42);
    let mut result = ExperimentResult::new(
        "fig1_validation",
        "Figure 1 — simulator validation (1300 s, 7 tasks, one 4-way node)",
        "real 99.9 ± 1.8 Wh vs simulated 97.5 Wh (−2.4%); instantaneous \
         error 8.62 W, σ = 8.06 W (§IV-B).",
    );

    let mut table = Table::new(["Metric", "Paper", "Ours"]);
    table.row([
        "Real total (Wh)".to_string(),
        "99.9".into(),
        fnum(v.real_wh, 1),
    ]);
    table.row([
        "Simulated total (Wh)".to_string(),
        "97.5".into(),
        fnum(v.sim_wh, 1),
    ]);
    table.row([
        "Underestimation (%)".to_string(),
        "2.4".into(),
        fnum(v.underestimation_pct, 1),
    ]);
    table.row([
        "Instantaneous error (W)".to_string(),
        "8.62".into(),
        fnum(v.inst_error_mean, 2),
    ]);
    table.row([
        "Error σ (W)".to_string(),
        "8.06".into(),
        fnum(v.inst_error_std, 2),
    ]);
    result.tables.push(("Validation summary".into(), table));

    let mut csv = String::from("t_secs,sim_watts,real_watts\n");
    for (t, s, r) in &v.series {
        csv.push_str(&format!("{t},{s:.2},{r:.2}\n"));
    }
    result.artifacts.push(("fig1_power_series.csv".into(), csv));

    result.notes.push(
        "the reference trace is synthetic (simulated signal + unmodeled-baseline \
         bias + meter noise, per DESIGN.md §3): this experiment validates the \
         energy-integration pipeline and reproduces Fig. 1's *error structure*, \
         not an independent physical measurement"
            .into(),
    );
    result.notes.push(format!(
        "total-energy agreement within {:.1}% (paper: 2.4%) while instantaneous \
         divergence is an order of magnitude larger — the paper's key point that \
         total accuracy matters more than instantaneous accuracy",
        v.underestimation_pct.abs()
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_reproduces_fig1_error_structure() {
        let v = validate(42);
        // Totals in the right ballpark: one node drawing 230–304 W for
        // 1300 s is 83–110 Wh.
        assert!((80.0..115.0).contains(&v.sim_wh), "sim {}", v.sim_wh);
        // Small total underestimation (paper: 2.4%).
        assert!(
            (0.5..5.0).contains(&v.underestimation_pct),
            "underestimation {}",
            v.underestimation_pct
        );
        // Instantaneous error an order of magnitude larger, like Fig. 1.
        assert!(
            (5.0..13.0).contains(&v.inst_error_mean),
            "inst err {}",
            v.inst_error_mean
        );
        assert_eq!(v.series.len(), 1301, "1 Hz over [0, 1300]");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = validate(7);
        let b = validate(7);
        assert_eq!(a.sim_wh, b.sim_wh);
        assert_eq!(a.real_wh, b.real_wh);
    }

    #[test]
    fn sim_power_shows_load_phases() {
        let v = validate(42);
        // Near idle at the very start: idle draw plus the first VM's
        // creation overhead (50 cpu% of dom0 work) ≈ 244 W < loaded draw.
        assert!(v.series[5].1 <= 250.0, "start {}", v.series[5].1);
        // The full-load spike around t = 400–500 reaches ≥ 295 W.
        let peak = v.series[380..520].iter().map(|s| s.1).fold(0.0, f64::max);
        assert!(peak >= 295.0, "peak {peak}");
    }
}
