//! Ablation — where do the savings come from? Power-model comparison.
//!
//! §IV-A observes that some machines draw constant power regardless of
//! load ("these machines should be avoided because no wattage reduction
//! can be obtained") and cites Barroso & Hölzle's energy-proportionality
//! ideal as where the industry should go. This ablation reruns BF vs the
//! tuned SB under three power models:
//!
//! * **calibrated** — the paper's Table-I machine (230 W idle / 304 W
//!   peak): savings come from *turning nodes off* and, secondarily, from
//!   the load curve;
//! * **constant** — 270 W whenever on: consolidation pays *only* through
//!   turn-off, so the SB-vs-BF gap should persist (it is a turn-off gap);
//! * **proportional** — 0 W idle, linear to 304 W: total energy is pinned
//!   to the work integral, so policy choice barely matters — the paper's
//!   whole mechanism exists *because* real machines are not proportional.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{paper_datacenter, RunConfig, Runner};
use eards_metrics::{fnum, pct_change, RunReport, Table};
use eards_model::{
    CalibratedPowerModel, ConstantPowerModel, DvfsPowerModel, EnergyProportionalModel, Policy,
    PowerModel,
};
use eards_policies::BackfillingPolicy;

use crate::common::{paper_trace, ExperimentResult};

fn model(name: &str) -> Box<dyn PowerModel> {
    match name {
        "calibrated" => Box::new(CalibratedPowerModel::paper_4way()),
        "dvfs-3state" => Box::new(DvfsPowerModel::three_state_4way()),
        "constant" => Box::new(ConstantPowerModel { watts: 270.0 }),
        "proportional" => Box::new(EnergyProportionalModel { peak_watts: 304.0 }),
        _ => unreachable!(),
    }
}

fn policy(name: &str) -> Box<dyn Policy> {
    match name {
        "BF" => Box::new(BackfillingPolicy::new()),
        _ => Box::new(ScoreScheduler::new(ScoreConfig::sb())),
    }
}

/// Runs BF λ30-90 and SB λ40-90 under each model; returns
/// `(model, policy, report)` rows.
pub fn reports() -> Vec<(String, String, RunReport)> {
    let trace = paper_trace();
    let mut out = Vec::new();
    for m in ["calibrated", "dvfs-3state", "constant", "proportional"] {
        for (p, lambdas) in [("BF", (30, 90)), ("SB", (40, 90))] {
            let report = Runner::with_power_model(
                paper_datacenter(),
                trace.clone(),
                policy(p),
                RunConfig::default().with_lambdas(lambdas.0, lambdas.1),
                model(m),
            )
            .labeled(format!("{p} λ{}-{}", lambdas.0, lambdas.1))
            .run();
            out.push((m.to_string(), p.to_string(), report));
        }
    }
    out
}

/// Runs the power-model ablation.
pub fn run() -> ExperimentResult {
    let rows = reports();
    let mut result = ExperimentResult::new(
        "ablation_power_model",
        "Ablation — SB's savings under different machine power curves",
        "§IV-A: constant-draw machines defeat load-based savings (only \
         turn-off helps); energy-proportional machines (the cited ideal) \
         would shrink the benefit of consolidation itself.",
    );

    let mut t = Table::new(["Power model", "Policy", "Pwr (kWh)", "S (%)", "SB vs BF"]);
    let mut savings = std::collections::HashMap::new();
    for m in ["calibrated", "dvfs-3state", "constant", "proportional"] {
        let bf = &rows
            .iter()
            .find(|(rm, rp, _)| rm == m && rp == "BF")
            .unwrap()
            .2;
        let sb = &rows
            .iter()
            .find(|(rm, rp, _)| rm == m && rp == "SB")
            .unwrap()
            .2;
        let delta = pct_change(bf.energy_kwh, sb.energy_kwh);
        savings.insert(m, delta);
        for (p, r) in [("BF", bf), ("SB", sb)] {
            t.row([
                m.to_string(),
                p.to_string(),
                fnum(r.energy_kwh, 1),
                fnum(r.satisfaction_pct, 1),
                if p == "SB" {
                    format!("{delta:+.1}%")
                } else {
                    String::new()
                },
            ]);
        }
    }
    result
        .tables
        .push(("BF λ30-90 vs SB λ40-90 per power curve".into(), t));

    let cal = savings["calibrated"];
    let dvfs = savings["dvfs-3state"];
    let con = savings["constant"];
    let pro = savings["proportional"];
    result.notes.push(format!(
        "savings persist on constant-draw machines ({con:.1}%) because they \
         come from turning nodes off, not from the load curve: {}",
        ok(con < -8.0)
    ));
    result.notes.push(format!(
        "on energy-proportional machines the gap collapses \
         ({pro:.1}% vs {cal:.1}% calibrated): consolidation's energy case \
         rests on idle draw, exactly the paper's §IV-A argument: {}",
        ok(pro > cal + 2.0)
    ));
    result.notes.push(format!(
        "an explicit stepped-DVFS governor behaves like the smooth calibrated \
         curve ({dvfs:.1}% vs {cal:.1}%) — Table I already *is* the governor, \
         seen through its envelope: {}",
        ok((dvfs - cal).abs() < 5.0)
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_model_ablation_shape_holds() {
        let r = run();
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }
}
