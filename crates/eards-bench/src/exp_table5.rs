//! Table V — impact of the consolidation parameters (C_e, C_f).
//!
//! §V-E sweeps the power-efficiency penalty costs of the full SB policy:
//! (0, 40) never finds migration worthwhile ("does not migrate any VM
//! since the fillable reward is not worthwhile") and consolidates least;
//! (20, 40) is the balanced setting; (60, 100) over-consolidates — most
//! migrations, *worse* energy (migration overhead) and lower SLA. The
//! U-shape demonstrates the policy is tunable to provider interests.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{paper_datacenter, run_sweep, RunConfig, SweepPoint};
use eards_metrics::{RunReport, Table};

use crate::common::{paper_trace, ExperimentResult};

/// The Table V cost pairs.
pub const COST_PAIRS: &[(f64, f64)] = &[(0.0, 40.0), (20.0, 40.0), (60.0, 100.0)];

/// Runs SB with each consolidation-cost pair.
pub fn reports() -> Vec<RunReport> {
    let trace = paper_trace();
    let hosts = paper_datacenter();
    COST_PAIRS
        .iter()
        .map(|&(ce, cf)| {
            run_sweep(
                &hosts,
                &trace,
                move || {
                    Box::new(ScoreScheduler::new(
                        ScoreConfig::sb().with_consolidation_costs(ce, cf),
                    ))
                },
                vec![SweepPoint {
                    label: format!("Ce={ce:.0} Cf={cf:.0}"),
                    config: RunConfig::default(),
                }],
            )
            .remove(0)
        })
        .collect()
}

/// Regenerates Table V.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let mut result = ExperimentResult::new(
        "table5_consolidation",
        "Table V — score-based scheduling with different consolidation costs",
        "(0,40): 1036 kWh / S 99.3 / 0 mig; (20,40): 956 kWh / S 99.1 / 87 \
         mig; (60,100): 999 kWh / S 97.7 / 432 mig — balanced costs win; \
         over-aggressive consolidation migrates heavily and loses both \
         energy and SLA.",
    );
    let mut t = Table::new(RunReport::paper_header());
    for r in &reports {
        t.row(r.paper_row());
    }
    result
        .tables
        .push(("Consolidation-cost sweep (SB, λ30-90)".into(), t));

    let zero = &reports[0];
    let balanced = &reports[1];
    let aggressive = &reports[2];

    result.notes.push(format!(
        "Ce = 0 migrates rarely ({} migrations; paper: 0) and consolidates \
         least: {}",
        zero.migrations,
        ok(zero.migrations < balanced.migrations / 4 && zero.energy_kwh > balanced.energy_kwh)
    ));
    result.notes.push(format!(
        "aggressive costs migrate most ({} vs {}): {}",
        aggressive.migrations,
        balanced.migrations,
        ok(aggressive.migrations > balanced.migrations)
    ));
    result.notes.push(format!(
        "consolidation costs pay: balanced (20,40) beats C_e = 0 by {:.0} kWh: {}",
        zero.energy_kwh - balanced.energy_kwh,
        ok(balanced.energy_kwh < zero.energy_kwh - 10.0)
    ));
    result.notes.push(format!(
        "aggressive consolidation costs satisfaction ({:.2}% vs balanced \
         {:.2}%): {}",
        aggressive.satisfaction_pct,
        balanced.satisfaction_pct,
        ok(aggressive.satisfaction_pct <= balanced.satisfaction_pct + 0.05)
    ));
    result.notes.push(format!(
        "DEVIATION — the paper's energy *upturn* at (60,100) (999 vs 956 kWh) \
         does not reproduce: our aggressive run lands at {:.0} kWh vs balanced \
         {:.0}. Cause: this scheduler applies a migration only when its score \
         gain clears a hysteresis bar (`min_migration_gain`), so even the \
         aggressive config's {}-migration churn is individually gain-gated; \
         the paper's un-gated scheduler paid for moves that never earned \
         their overhead back. The direction of every other Table V signal \
         (zero migrations at C_e=0, migration count scaling with the costs, \
         satisfaction declining with aggressiveness) reproduces.",
        aggressive.energy_kwh, balanced.energy_kwh, aggressive.migrations,
    ));
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_holds() {
        let r = run();
        assert_eq!(r.tables[0].1.len(), COST_PAIRS.len());
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }
}
