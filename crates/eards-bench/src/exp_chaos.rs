//! Chaos engine — energy, SLA and recovery under escalating fault rates.
//!
//! Not a paper table: the paper's evaluation assumes a failure-free
//! datacenter and defers fault tolerance to future work (§VI). This
//! experiment turns the full [`FaultPlan::chaos`] machinery on — host
//! crashes, boot failures, VM-creation failures, migration aborts,
//! transient slowdowns and correlated rack outages — at escalating
//! intensities and compares how the score-based scheduler (with `P_fault`
//! enabled) degrades against the backfilling baselines.
//!
//! Every run keeps the invariant auditor on; the experiment fails its
//! shape checks if any run ends with a violation, so a bookkeeping bug in
//! a fault path cannot hide behind plausible-looking aggregate numbers.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{run_sweep, small_datacenter, AuditorMode, RunConfig, SweepPoint};
use eards_metrics::{fnum, RunReport, Table};
use eards_model::{FaultPlan, HostClass, Policy};
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig, Trace};

use crate::common::{make_policy, ExperimentResult, TRACE_SEED};

/// Fault intensities swept (multipliers on [`FaultPlan::chaos`]'s nominal
/// rates; 0 = fault-free control).
pub const INTENSITIES: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

/// The policies compared, by `make_policy` row name.
const POLICIES: [&str; 3] = ["BF", "DBF", "SB"];

/// Satisfaction slack (percentage points) the degradation comparison
/// tolerates: SB's *drop* under faults may exceed the best baseline's
/// drop by at most this much at every intensity.
const DEGRADATION_TOLERANCE: f64 = 2.0;

fn chaos_policy(name: &str) -> Box<dyn Policy> {
    if name == "SB" {
        // The score-based scheduler gets its reliability term: blacklist
        // penalties feed `P_fault`, so placement avoids flapping hosts.
        let mut cfg = ScoreConfig::sb().named("SB");
        cfg.fault_penalty = true;
        Box::new(ScoreScheduler::new(cfg))
    } else {
        make_policy(name)
    }
}

fn two_day_trace() -> Trace {
    generate(
        &SynthConfig {
            span: SimDuration::from_days(2),
            ..SynthConfig::grid5000_week()
        },
        TRACE_SEED,
    )
}

/// Runs one policy across all intensities (one parallel sweep).
fn sweep_policy(name: &str, hosts: &[eards_model::HostSpec], trace: &Trace) -> Vec<RunReport> {
    let points = INTENSITIES
        .iter()
        .map(|&x| SweepPoint {
            label: format!("{name} x{x:.1}"),
            config: RunConfig::default()
                .with_faults(FaultPlan::chaos(x))
                .with_auditor(AuditorMode::On),
        })
        .collect();
    run_sweep(hosts, trace, || chaos_policy(name), points)
}

/// Runs the chaos comparison: 3 policies × 4 intensities over a 2-day
/// trace on 40 medium nodes.
pub fn reports() -> Vec<Vec<RunReport>> {
    let hosts = small_datacenter(40, HostClass::Medium);
    let trace = two_day_trace();
    POLICIES
        .iter()
        .map(|name| sweep_policy(name, &hosts, &trace))
        .collect()
}

/// A short, strict-auditor chaos run for CI: any invariant violation
/// panics the process. Returns the reports (SB then BF) for inspection.
pub fn smoke() -> Vec<RunReport> {
    let hosts = small_datacenter(16, HostClass::Medium);
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_hours(6),
            ..SynthConfig::grid5000_week()
        },
        TRACE_SEED,
    );
    ["SB", "BF"]
        .iter()
        .map(|name| {
            let points = vec![SweepPoint {
                label: format!("{name} smoke"),
                config: RunConfig::default()
                    .with_faults(FaultPlan::chaos(1.5))
                    .with_auditor(AuditorMode::Strict),
            }];
            run_sweep(&hosts, &trace, || chaos_policy(name), points).remove(0)
        })
        .collect()
}

/// Renders the per-run fault/recovery numbers as a JSON object keyed by
/// run label — the `BENCH_chaos.json` regression baseline.
pub fn to_json(all: &[Vec<RunReport>]) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for runs in all {
        for r in runs {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let f = &r.faults;
            out.push_str(&format!(
                "  \"{}\": {{\"energy_kwh\": {:.3}, \"satisfaction_pct\": {:.2}, \
                 \"delay_pct\": {:.2}, \"host_failures\": {}, \"vms_displaced\": {}, \
                 \"creation_failures\": {}, \"migration_aborts\": {}, \
                 \"boot_failures\": {}, \"rack_outages\": {}, \"recoveries\": {}, \
                 \"mean_recovery_secs\": {:.1}, \"invariant_checks\": {}, \
                 \"invariant_violations\": {}}}",
                r.label,
                r.energy_kwh,
                r.satisfaction_pct,
                r.delay_pct,
                r.host_failures,
                r.vms_displaced,
                f.creation_failures,
                f.migration_aborts,
                f.boot_failures,
                f.rack_outages,
                f.recoveries,
                f.mean_recovery_secs,
                f.invariant_checks,
                f.invariant_violations,
            ));
        }
    }
    out.push_str("\n}\n");
    out
}

/// Runs the chaos experiment.
pub fn run() -> ExperimentResult {
    let all = reports();
    let mut result = ExperimentResult::new(
        "chaos",
        "Chaos engine — degradation under escalating fault rates",
        "not evaluated in the paper (failure-free evaluation; §VI defers \
         fault tolerance to future work). The fault model follows the \
         §III-A.6 reliability framing: every class is seeded per host, so \
         policies face identical fault schedules.",
    );

    let mut t = Table::new([
        "Run",
        "Pwr (kWh)",
        "S (%)",
        "delay (%)",
        "Crashes",
        "Displaced",
        "Create fail",
        "Migr abort",
        "Recov (s)",
        "Audit viol",
    ]);
    for runs in &all {
        for r in runs {
            let f = &r.faults;
            t.row([
                r.label.clone(),
                fnum(r.energy_kwh, 1),
                fnum(r.satisfaction_pct, 1),
                fnum(r.delay_pct, 1),
                r.host_failures.to_string(),
                r.vms_displaced.to_string(),
                f.creation_failures.to_string(),
                f.migration_aborts.to_string(),
                fnum(f.mean_recovery_secs, 0),
                f.invariant_violations.to_string(),
            ]);
        }
    }
    result.tables.push((
        "3 policies × 4 chaos intensities (40 medium nodes, 2-day trace)".into(),
        t,
    ));

    // Shape check 1: the auditor stayed clean everywhere.
    let violations: u64 = all
        .iter()
        .flatten()
        .map(|r| r.faults.invariant_violations)
        .sum();
    let checks: u64 = all
        .iter()
        .flatten()
        .map(|r| r.faults.invariant_checks)
        .sum();
    result.notes.push(format!(
        "Shape check: zero invariant violations across all {} runs \
         ({checks} audit passes) — {}.",
        all.iter().flatten().count(),
        if violations == 0 { "holds" } else { "VIOLATED" }
    ));

    // Shape check 2: at intensity 0 the fault layer is inert.
    let quiet = all.iter().all(|runs| {
        let r = &runs[0];
        let f = &r.faults;
        r.host_failures == 0
            && f.boot_failures == 0
            && f.creation_failures == 0
            && f.migration_aborts == 0
            && f.slowdown_episodes == 0
            && f.rack_outages == 0
            && f.retries_delayed == 0
    });
    result.notes.push(format!(
        "Shape check: intensity 0 records no fault events at all (the \
         layer is zero-cost when disabled) — {}.",
        if quiet { "holds" } else { "VIOLATED" }
    ));

    // Shape check 3: SB's satisfaction drop under faults stays within
    // tolerance of the best baseline's drop at every intensity.
    let drop_of = |runs: &[RunReport], i: usize| -> f64 {
        runs[0].satisfaction_pct - runs[i].satisfaction_pct
    };
    let (bf, dbf, sb) = (&all[0], &all[1], &all[2]);
    let mut graceful = true;
    for i in 1..INTENSITIES.len() {
        let best_baseline = drop_of(bf, i).min(drop_of(dbf, i));
        if drop_of(sb, i) > best_baseline + DEGRADATION_TOLERANCE {
            graceful = false;
        }
    }
    result.notes.push(format!(
        "Shape check: SB degrades no worse than BF/DBF at every intensity \
         (satisfaction drop within {DEGRADATION_TOLERANCE:.0} points of the \
         best baseline) — {}.",
        if graceful { "holds" } else { "VIOLATED" }
    ));

    // Shape check 4: chaos actually happened at the top intensity.
    let stressed = all
        .iter()
        .all(|runs| runs.last().is_some_and(|r| r.host_failures > 0));
    result.notes.push(format!(
        "Shape check: the top intensity crashes hosts under every policy \
         — {}.",
        if stressed { "holds" } else { "VIOLATED" }
    ));

    result
        .artifacts
        .push(("BENCH_chaos.json".into(), to_json(&all)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_clean_under_strict_auditing() {
        // Strict mode panics on the first violation, so surviving the run
        // *is* the assertion; spot-check that chaos actually fired.
        let reports = smoke();
        let total_faults: u64 = reports
            .iter()
            .map(|r| {
                r.host_failures
                    + r.faults.creation_failures
                    + r.faults.boot_failures
                    + r.faults.rack_outages
            })
            .sum();
        assert!(total_faults > 0, "chaos at x1.5 must inject something");
        for r in &reports {
            assert!(r.faults.invariant_checks > 0, "auditor never ran");
            assert_eq!(r.faults.invariant_violations, 0);
            assert!(
                r.jobs_completed as f64 >= 0.9 * r.jobs_total as f64,
                "{}: {}/{} jobs survived",
                r.label,
                r.jobs_completed,
                r.jobs_total
            );
        }
    }

    #[test]
    fn json_artifact_is_parseable_shape() {
        let hosts = small_datacenter(4, HostClass::Medium);
        let trace = generate(
            &SynthConfig {
                span: SimDuration::from_hours(1),
                ..SynthConfig::grid5000_week()
            },
            TRACE_SEED,
        );
        let runs = run_sweep(
            &hosts,
            &trace,
            || chaos_policy("BF"),
            vec![SweepPoint {
                label: "BF x0.0".into(),
                config: RunConfig::default(),
            }],
        );
        let json = to_json(&[runs]);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"BF x0.0\""));
        assert!(json.contains("\"invariant_violations\": 0"));
    }
}
