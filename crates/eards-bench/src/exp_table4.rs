//! Table IV — impact of migration.
//!
//! §V-D enables migration: Dynamic Backfilling (BF + cost-oblivious
//! consolidation moves) vs the full score-based policy SB (all overhead
//! penalties + migration). The paper's findings: DBF improves on BF but
//! pays migration overhead; SB migrates *less* (87 vs 124) yet
//! consolidates better; with λ = 40–90, SB reaches 850 kWh — "a reduction
//! in the datacenter power consumption of 15% with regard to Backfilling
//! and 12% compared with the dynamic variant" — the paper's headline.

use eards_datacenter::{paper_datacenter, run_sweep, RunConfig, SweepPoint};
use eards_metrics::{pct_change, RunReport, Table};

use crate::common::{make_policy, paper_trace, ExperimentResult};

/// The Table IV rows: (policy, λ_min, λ_max).
pub const ROWS: &[(&str, u32, u32)] = &[("DBF", 30, 90), ("SB", 30, 90), ("SB", 40, 90)];

/// Runs the Table IV configurations plus the BF reference.
pub fn reports() -> Vec<RunReport> {
    let trace = paper_trace();
    let hosts = paper_datacenter();
    let mut out = vec![run_sweep(
        &hosts,
        &trace,
        || make_policy("BF"),
        vec![SweepPoint {
            label: "BF λ30-90 (ref)".into(),
            config: RunConfig::default(),
        }],
    )
    .remove(0)];
    for &(name, lo, hi) in ROWS {
        let label = format!("{name} λ{lo}-{hi}");
        out.push(
            run_sweep(
                &hosts,
                &trace,
                || make_policy(name),
                vec![SweepPoint {
                    label,
                    config: RunConfig::default().with_lambdas(lo, hi),
                }],
            )
            .remove(0),
        );
    }
    out
}

/// Regenerates Table IV.
pub fn run() -> ExperimentResult {
    let reports = reports();
    let mut result = ExperimentResult::new(
        "table4_migration",
        "Table IV — scheduling results of policies with migration",
        "DBF 970.6 kWh / S 98.1 / 124 mig; SB 956.4 / 99.1 / 87 mig; \
         SB λ40-90: 850.2 kWh / S 98.4 — −15% vs BF, −12% vs DBF.",
    );
    let mut t = Table::new(RunReport::paper_header());
    for r in &reports {
        t.row(r.paper_row());
    }
    result.tables.push(("Migration-enabled policies".into(), t));

    let by = |label: &str| reports.iter().find(|r| r.label == label).unwrap();
    let bf = by("BF λ30-90 (ref)");
    let dbf = by("DBF λ30-90");
    let sb = by("SB λ30-90");
    let sbt = by("SB λ40-90");

    let headline_vs_bf = pct_change(bf.energy_kwh, sbt.energy_kwh);
    let headline_vs_dbf = pct_change(dbf.energy_kwh, sbt.energy_kwh);

    result.notes.push(format!(
        "migration improves on BF (DBF {:.1}%, SB {:.1}% at λ30-90): {}",
        pct_change(bf.energy_kwh, dbf.energy_kwh),
        pct_change(bf.energy_kwh, sb.energy_kwh),
        ok(dbf.energy_kwh < bf.energy_kwh && sb.energy_kwh < bf.energy_kwh)
    ));
    result.notes.push(format!(
        "SB beats DBF on power at equal λ while migrating less ({} vs {} \
         migrations): {}",
        sb.migrations,
        dbf.migrations,
        ok(sb.energy_kwh < dbf.energy_kwh && sb.migrations < dbf.migrations)
    ));
    result.notes.push(format!(
        "HEADLINE — SB λ40-90 vs BF: {headline_vs_bf:.1}% (paper: −15%); vs DBF: \
         {headline_vs_dbf:.1}% (paper: −12%) at similar SLA: {}",
        ok(headline_vs_bf <= -10.0 && (sbt.satisfaction_pct - bf.satisfaction_pct).abs() < 2.0)
    ));
    result.notes.push(
        "absolute migration counts are higher than the paper's 87/124 — our \
         consolidation round is every 10 min; the count *ordering* (SB < DBF) \
         and the per-migration benefit shape hold"
            .into(),
    );
    result
}

fn ok(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_headline_holds() {
        let r = run();
        assert_eq!(r.tables[0].1.len(), ROWS.len() + 1);
        let violated = r.notes.iter().filter(|n| n.contains("VIOLATED")).count();
        assert_eq!(violated, 0, "{:#?}", r.notes);
    }
}
