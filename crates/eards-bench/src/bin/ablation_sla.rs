//! Runs the dynamic-SLA-enforcement extension ablation.
fn main() {
    eards_bench::emit(&eards_bench::exp_ablation_sla::run());
}
