//! Runs the chaos experiment, or — with `--smoke` — a short strict-mode
//! run for CI that panics on the first invariant violation.
//!
//! Both modes write `BENCH_chaos.json` at the workspace root: the
//! machine-readable fault/recovery baseline next to `BENCH_solver.json`.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = if smoke {
        // Strict auditing: a violation panics before we get here, so this
        // run succeeding is the gate CI cares about.
        let reports = eards_bench::exp_chaos::smoke();
        for r in &reports {
            eprintln!(
                "{}: {} crashes, {} creation failures, {} audit passes, \
                 {} violations, {}/{} jobs",
                r.label,
                r.host_failures,
                r.faults.creation_failures,
                r.faults.invariant_checks,
                r.faults.invariant_violations,
                r.jobs_completed,
                r.jobs_total,
            );
        }
        eards_bench::exp_chaos::to_json(&[reports])
    } else {
        let result = eards_bench::exp_chaos::run();
        eards_bench::emit(&result);
        let violated = result
            .notes
            .iter()
            .filter(|n| n.contains("VIOLATED"))
            .count();
        let json = result
            .artifacts
            .iter()
            .find(|(name, _)| name == "BENCH_chaos.json")
            .map(|(_, contents)| contents.clone())
            .unwrap_or_default();
        if violated > 0 {
            eprintln!("!! {violated} shape check(s) VIOLATED");
            std::process::exit(1);
        }
        json
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path} ({} bytes)", json.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
