//! Times the incremental score-matrix engine against the full-rescan
//! reference solver.
fn main() {
    eards_bench::emit(&eards_bench::exp_solver_timing::run());
}
