use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{paper_datacenter, RunConfig, Runner};
use eards_metrics::RunReport;
use eards_policies::{BackfillingPolicy, DynamicBackfillingPolicy, RandomPolicy, RoundRobinPolicy};
use eards_workload::{generate, SynthConfig};

fn main() {
    let trace = generate(&SynthConfig::grid5000_week(), 7);
    let stats = trace.stats();
    eprintln!(
        "trace: {} jobs, {:.0} cpu-h, {:.1} avg cores",
        stats.jobs, stats.total_cpu_hours, stats.avg_offered_cores
    );
    let mut reports = Vec::new();
    for (name, mk) in [
        ("RD", 0usize),
        ("RR", 1),
        ("BF", 2),
        ("SB0", 3),
        ("SB", 4),
        ("DBF", 5),
        ("SB 40-90", 6),
    ] {
        #[allow(clippy::disallowed_methods)] // smoke run reports wall time
        let t0 = std::time::Instant::now();
        let policy: Box<dyn eards_model::Policy> = match mk {
            0 => Box::new(RandomPolicy::new(1)),
            1 => Box::new(RoundRobinPolicy::new()),
            2 => Box::new(BackfillingPolicy::new()),
            3 => Box::new(ScoreScheduler::new(ScoreConfig::sb0())),
            4 | 6 => Box::new(ScoreScheduler::new(ScoreConfig::sb())),
            _ => Box::new(DynamicBackfillingPolicy::new()),
        };
        let cfg = if mk == 6 {
            RunConfig::default().with_lambdas(40, 90)
        } else {
            RunConfig::default()
        };
        let r = Runner::new(paper_datacenter(), trace.clone(), policy, cfg)
            .labeled(name)
            .run();
        eprintln!("{name}: {:?} wall", t0.elapsed());
        reports.push(r);
    }
    println!("{}", RunReport::table(&reports).to_markdown());
}
