//! Runs the multi-seed robustness experiment.
fn main() {
    eards_bench::emit(&eards_bench::exp_robustness::run());
}
