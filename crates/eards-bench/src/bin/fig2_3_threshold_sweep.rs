//! Regenerates Figures 2 and 3 (λ threshold surfaces).
fn main() {
    eards_bench::emit(&eards_bench::exp_fig23::run());
}
