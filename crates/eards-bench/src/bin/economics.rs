//! Runs the provider-economics extension experiment.
fn main() {
    eards_bench::emit(&eards_bench::exp_economics::run());
}
