//! Measures the observability layer's overhead and verifies that a traced
//! run is bit-identical to an untraced one. Writes `BENCH_obs.json` at the
//! workspace root next to the other machine-readable baselines; exits
//! non-zero if any shape check is violated.

fn main() {
    let result = eards_bench::exp_obs::run();
    eards_bench::emit(&result);
    let json = result
        .artifacts
        .iter()
        .find(|(name, _)| name == "BENCH_obs.json")
        .map(|(_, contents)| contents.clone())
        .unwrap_or_default();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path} ({} bytes)", json.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let violated = result
        .notes
        .iter()
        .filter(|n| n.contains("VIOLATED"))
        .count();
    if violated > 0 {
        eprintln!("!! {violated} shape check(s) VIOLATED");
        std::process::exit(1);
    }
}
