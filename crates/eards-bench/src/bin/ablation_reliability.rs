//! Runs the reliability/fault-tolerance extension ablation.
fn main() {
    eards_bench::emit(&eards_bench::exp_ablation_reliability::run());
}
