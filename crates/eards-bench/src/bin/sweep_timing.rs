//! Times the sweep farm against its own serial reference and writes
//! `BENCH_sweep.json` at the workspace root.
//!
//! The farm's whole value proposition is "same bytes, less wall clock":
//! a parallel `eards sweep --jobs 4` must produce a merged report
//! byte-identical to `--serial` (hard failure otherwise, budget or not)
//! and, on a machine with at least [`MIN_CORES`] cores, at least
//! [`SPEEDUP_FLOOR`]× faster over an 8-shard grid. On smaller machines
//! the identity check still runs but the speedup gate is reported
//! ungated — single-core CI containers can't demonstrate parallelism.
//!
//! Unlike the other bench bins this one drives the real `eards` binary
//! (the farm is a multi-process design; there is nothing meaningful to
//! time in-process). The binary is found via `$EARDS_BIN` or next to the
//! workspace's target directory — build it first with
//! `cargo build --release -p eards-cli`.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Grid: 8 seeds × 1 policy × 1 chaos = 8 shards.
const SEEDS: &str = "1,2,3,4,5,6,7,8";
const WORLD: &str = "--hosts 20 --hours 96 --seeds";

/// Required speedup of `--jobs 4` over `--serial`.
const SPEEDUP_FLOOR: f64 = 2.0;

/// Cores needed before the speedup floor is enforced.
const MIN_CORES: usize = 4;

fn eards_bin() -> PathBuf {
    if let Ok(p) = std::env::var("EARDS_BIN") {
        return PathBuf::from(p);
    }
    // Sibling of this bench binary in the same target profile dir.
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("eards");
    if p.is_file() {
        return p;
    }
    panic!(
        "eards binary not found at {} — build it first (cargo build -p eards-cli) \
         or point $EARDS_BIN at it",
        p.display()
    );
}

#[allow(clippy::disallowed_methods)] // benchmarking wall time is the point
fn timed_sweep(bin: &Path, out_dir: &Path, mode: &[&str]) -> f64 {
    let t = std::time::Instant::now();
    let status = Command::new(bin)
        .arg("sweep")
        .args(WORLD.split_whitespace())
        .arg(SEEDS)
        .args(["--sweep-out", &out_dir.display().to_string()])
        .args(mode)
        .status()
        .expect("spawn eards sweep");
    assert!(status.success(), "eards sweep {mode:?} failed");
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let bin = eards_bin();
    let root = std::env::temp_dir().join(format!("eards-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let serial_dir = root.join("serial");
    let farm_dir = root.join("farm");

    let serial_ms = timed_sweep(&bin, &serial_dir, &["--serial"]);
    let jobs4_ms = timed_sweep(&bin, &farm_dir, &["--jobs", "4"]);

    // Identity first: a fast farm that changes the bytes is worthless.
    for name in ["report.csv", "report.jsonl"] {
        let a = std::fs::read(serial_dir.join(name)).expect("serial report");
        let b = std::fs::read(farm_dir.join(name)).expect("farm report");
        assert_eq!(
            a, b,
            "{name}: --jobs 4 output differs from --serial — determinism broken"
        );
    }
    let _ = std::fs::remove_dir_all(&root);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_ms / jobs4_ms;
    let gated = cores >= MIN_CORES;
    let within = !gated || speedup >= SPEEDUP_FLOOR;

    let shards = SEEDS.split(',').count();
    let json = format!(
        "{{\"shards\":{shards},\"serial_ms\":{serial_ms:.1},\"jobs4_ms\":{jobs4_ms:.1},\
         \"speedup\":{speedup:.2},\"cores\":{cores},\"floor\":{SPEEDUP_FLOOR},\
         \"gated\":{gated},\"within_budget\":{within}}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path} ({} bytes)", json.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    eprintln!(
        "{shards} shards: serial {serial_ms:.0} ms, --jobs 4 {jobs4_ms:.0} ms \
         ({speedup:.2}x, floor {SPEEDUP_FLOOR}x, {cores} cores, gate {})",
        if gated {
            "enforced"
        } else {
            "skipped: <4 cores"
        }
    );
    if !within {
        eprintln!("!! sweep farm speedup below floor");
        std::process::exit(1);
    }
}
