//! Regenerates Table III (virtualization-overhead penalties).
fn main() {
    eards_bench::emit(&eards_bench::exp_table3::run());
}
