//! Regenerates Table V (consolidation-cost sweep).
fn main() {
    eards_bench::emit(&eards_bench::exp_table5::run());
}
