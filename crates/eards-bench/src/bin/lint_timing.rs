//! Times a full `eards lint` pass over the workspace and writes
//! `BENCH_lint.json` next to the other machine-readable baselines.
//!
//! The gate runs on every CI push, so it gets a wall-time budget like the
//! solver and observability layers: the whole walk-lex-match pass must
//! stay under [`BUDGET_MS`] or this bin exits non-zero.

use std::path::Path;

/// Wall-time budget for one full workspace lint pass.
const BUDGET_MS: u128 = 2000;

fn main() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    #[allow(clippy::disallowed_methods)] // benchmarking wall time is the point
    let t0 = std::time::Instant::now();
    let run = eards_lint::lint_workspace(root).expect("workspace walk");
    let wall_ms = t0.elapsed().as_millis();
    let json = format!(
        "{{\"files\":{},\"findings\":{},\"wall_ms\":{},\"budget_ms\":{},\"within_budget\":{}}}\n",
        run.files,
        run.findings.len(),
        wall_ms,
        BUDGET_MS,
        wall_ms <= BUDGET_MS
    );
    let path = root.join("BENCH_lint.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {} ({} bytes)", path.display(), json.len()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    eprintln!(
        "lint pass: {} files, {} finding(s), {wall_ms} ms (budget {BUDGET_MS} ms)",
        run.files,
        run.findings.len()
    );
    if wall_ms > BUDGET_MS {
        eprintln!("!! lint wall time exceeds budget");
        std::process::exit(1);
    }
}
