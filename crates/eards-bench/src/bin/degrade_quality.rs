//! Runs the degradation-ladder experiment, or — with `--smoke` — a short
//! strict-mode budgeted run for CI that panics on the first invariant
//! violation or work-bound breach.
//!
//! The full mode writes `BENCH_degrade.json` at the workspace root: the
//! machine-readable boundedness + quality-loss baseline next to
//! `BENCH_chaos.json`.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // Strict auditing + the in-process work-bound assert: reaching
        // the print below is the gate CI cares about.
        let (stats, parked, report) = eards_bench::exp_degrade::smoke();
        eprintln!(
            "degrade smoke: {} rounds ({} degraded, {} exhausted), max work \
             {}, rungs {:?}, {} parked, {} audit passes, {} violations, {}/{} jobs",
            stats.rounds,
            stats.degraded_rounds,
            stats.exhausted_rounds,
            stats.max_round_work,
            stats.rounds_at,
            parked,
            report.faults.invariant_checks,
            report.faults.invariant_violations,
            report.jobs_completed,
            report.jobs_total,
        );
        return;
    }
    let result = eards_bench::exp_degrade::run();
    eards_bench::emit(&result);
    let violated = result
        .notes
        .iter()
        .filter(|n| n.contains("VIOLATED"))
        .count();
    let json = result
        .artifacts
        .iter()
        .find(|(name, _)| name == "BENCH_degrade.json")
        .map(|(_, contents)| contents.clone())
        .unwrap_or_default();
    if violated > 0 {
        eprintln!("!! {violated} shape check(s) VIOLATED");
        std::process::exit(1);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_degrade.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path} ({} bytes)", json.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
