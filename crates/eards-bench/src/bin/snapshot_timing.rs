//! Times a full runner snapshot + restore round trip at datacenter scale
//! (400 hosts, 320 in-flight VMs) and writes `BENCH_snapshot.json` at the
//! workspace root, next to the other machine-readable baselines.
//!
//! Checkpointing is only useful if it is cheap enough to run inline with
//! the simulation (the CLI takes snapshots between event batches), so the
//! round trip gets a wall-time budget like the solver, observability and
//! lint layers: serialize + deserialize must stay under [`BUDGET_MS`] or
//! this bin exits non-zero. The restored runner must also re-serialize to
//! the identical byte stream (the codec's fixed-point property) — a
//! mismatch is a correctness failure, budget or not.

use eards_datacenter::{small_datacenter, RunConfig, Runner};
use eards_model::{Cpu, HostClass, HostSpec, Job, JobId, Mem, Policy};
use eards_policies::RoundRobinPolicy;
use eards_sim::{SimDuration, SimTime};
use eards_workload::Trace;

/// Wall-time budget for one snapshot + restore round trip.
const BUDGET_MS: f64 = 50.0;

const HOSTS: u32 = 400;
const VMS: u64 = 320;

/// The benched world: every VM arrives in the first ten minutes and runs
/// for hours, so at the one-hour snapshot point all 320 are in flight.
fn world() -> (Vec<HostSpec>, Trace, Box<dyn Policy>, RunConfig) {
    let jobs = (0..VMS)
        .map(|j| {
            Job::new(
                JobId(j),
                SimTime::from_secs(j * 600 / VMS),
                Cpu(100),
                Mem::gib(1),
                SimDuration::from_hours(4),
                1.5,
            )
        })
        .collect();
    let cfg = RunConfig {
        initial_on: HOSTS as usize,
        ..RunConfig::default()
    };
    (
        small_datacenter(HOSTS, HostClass::Medium),
        Trace::new(jobs),
        Box::new(RoundRobinPolicy::new()),
        cfg,
    )
}

fn time_min_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // benchmarking wall time is the point
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    // Drive the run past every arrival so the snapshot captures a fully
    // loaded datacenter, not a cold start.
    let (hosts, trace, policy, cfg) = world();
    let mut runner = Runner::new(hosts, trace, policy, cfg);
    let warm = SimTime::ZERO + SimDuration::from_hours(1);
    while runner.now() < warm && runner.step_batch() {}
    assert!(
        runner.now() >= SimTime::ZERO + SimDuration::from_mins(10),
        "the bench run must reach steady state, stopped at {}",
        runner.now()
    );

    let bytes = runner.snapshot().expect("snapshot encodes");
    let snapshot_ms = time_min_ms(5, || {
        std::hint::black_box(runner.snapshot().expect("snapshot encodes"));
    });
    let restore_ms = time_min_ms(5, || {
        let (hosts, trace, policy, cfg) = world();
        let restored =
            Runner::restore(hosts, trace, policy, cfg, &bytes).expect("snapshot restores");
        std::hint::black_box(&restored);
    });

    // Fixed point: restore(persist(x)) re-serializes byte-identically.
    let (hosts, trace, policy, cfg) = world();
    let restored = Runner::restore(hosts, trace, policy, cfg, &bytes).expect("snapshot restores");
    assert_eq!(
        restored.snapshot().expect("snapshot encodes"),
        bytes,
        "restored runner must re-serialize to the identical byte stream"
    );

    let total_ms = snapshot_ms + restore_ms;
    let within = total_ms <= BUDGET_MS;
    let json = format!(
        "{{\"hosts\":{HOSTS},\"vms\":{VMS},\"snapshot_bytes\":{},\"snapshot_ms\":{snapshot_ms:.3},\
         \"restore_ms\":{restore_ms:.3},\"total_ms\":{total_ms:.3},\"budget_ms\":{BUDGET_MS},\
         \"within_budget\":{within}}}\n",
        bytes.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path} ({} bytes)", json.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    eprintln!(
        "snapshot {snapshot_ms:.2} ms + restore {restore_ms:.2} ms = {total_ms:.2} ms \
         over {} bytes (budget {BUDGET_MS} ms)",
        bytes.len()
    );
    if !within {
        eprintln!("!! snapshot round trip exceeds budget");
        std::process::exit(1);
    }
}
