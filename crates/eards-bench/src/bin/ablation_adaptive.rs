//! Runs the dynamic-λ-threshold extension ablation.
fn main() {
    eards_bench::emit(&eards_bench::exp_ablation_adaptive::run());
}
