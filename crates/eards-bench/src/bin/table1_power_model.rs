//! Regenerates Table I (server power model).
fn main() {
    eards_bench::emit(&eards_bench::exp_table1::run());
}
