//! Regenerates Table II (static policies).
fn main() {
    eards_bench::emit(&eards_bench::exp_table2::run());
}
