//! Regenerates Figure 1 (simulator validation).
fn main() {
    eards_bench::emit(&eards_bench::exp_fig1::run());
}
