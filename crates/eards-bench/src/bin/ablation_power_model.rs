//! Runs the power-curve ablation (calibrated / constant / proportional).
fn main() {
    eards_bench::emit(&eards_bench::exp_ablation_powermodel::run());
}
