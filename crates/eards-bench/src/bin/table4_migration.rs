//! Regenerates Table IV (migration; the paper's −15% headline).
fn main() {
    eards_bench::emit(&eards_bench::exp_table4::run());
}
