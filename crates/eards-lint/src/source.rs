//! Per-file analysis context shared by every rule.
//!
//! One [`SourceFile`] is built per `.rs` file: the token stream, which
//! crate the file belongs to, which line ranges are test code, which
//! identifiers are bound to `HashMap`/`HashSet` values, and the
//! `lint:allow` suppressions in force.
//!
//! ## The suppression contract
//!
//! ```text
//! // lint:allow(D001): key-lookup only, never iterated
//! completion: HashMap<VmId, EventHandle>,
//! ```
//!
//! A suppression comment names exactly one rule and **must** carry a
//! non-empty reason after the colon; a reasonless `lint:allow` is itself
//! reported (rule `S001`) and suppresses nothing. The suppression covers
//! findings on the comment's own line (trailing form) and on the line
//! directly below it (line-above form).

use crate::items::{parse_items, Items};
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::RuleId;

/// Crates whose code feeds the simulation state and therefore must be
/// deterministic and panic-free (rules D001, P001, C001 scope to these).
pub const SIM_AFFECTING: &[&str] = &[
    "eards-sim",
    "eards-model",
    "eards-core",
    "eards-policies",
    "eards-datacenter",
    "eards-workload",
];

/// Crates allowed to read wall clocks (rule D002's allowlist): the
/// observability layer timestamps real spans, the bench harness measures
/// real wall time, and the sweep supervisor uses wall time for worker
/// heartbeat timeouts and retry backoff. None feed results back into
/// simulation state.
pub const CLOCK_ALLOWED: &[&str] = &["eards-obs", "eards-bench", "eards-sweep"];

/// One `lint:allow` marker, parsed from a comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: RuleId,
    /// Line of the comment.
    pub line: u32,
    /// True if a non-empty reason followed the rule id.
    pub has_reason: bool,
}

/// A lexed file plus everything the rules need to know about it.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/eards-sim/src/rng.rs`).
    pub path: String,
    /// Crate name derived from the path (`eards-sim`, …; the workspace
    /// root package is `eards`).
    pub crate_name: String,
    /// Token stream including comments.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order. Rules
    /// walk this so comments never break a pattern.
    pub code: Vec<usize>,
    /// Inclusive line ranges that are test code (`#[cfg(test)] mod` bodies;
    /// whole file when under `tests/`).
    pub test_ranges: Vec<(u32, u32)>,
    /// Identifiers bound to `HashMap`/`HashSet` values in this file
    /// (struct fields and `let` bindings).
    pub map_bindings: Vec<String>,
    /// Lines of struct-field declarations of `HashMap`/`HashSet` type.
    pub map_field_decls: Vec<(String, u32)>,
    /// Parsed `lint:allow` markers.
    pub suppressions: Vec<Suppression>,
    /// Lines holding a malformed (reasonless) `lint:allow`.
    pub malformed_suppressions: Vec<u32>,
    /// Item skeletons (structs, enums, impls) — see [`crate::items`].
    pub items: Items,
}

impl SourceFile {
    /// Lexes and analyzes one file. `path` is the workspace-relative path;
    /// it determines crate attribution and test-file detection.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let crate_name = crate_of(path);
        let mut f = SourceFile {
            path: path.to_string(),
            crate_name,
            tokens,
            code,
            test_ranges: Vec::new(),
            map_bindings: Vec::new(),
            map_field_decls: Vec::new(),
            suppressions: Vec::new(),
            malformed_suppressions: Vec::new(),
            items: Items::default(),
        };
        if is_test_path(path) {
            f.test_ranges.push((0, u32::MAX));
        } else {
            f.find_cfg_test_modules();
        }
        f.find_map_bindings();
        f.find_suppressions();
        let items = parse_items(&f);
        f.items = items;
        f
    }

    /// The file's crate is one of the sim-affecting six.
    pub fn is_sim_affecting(&self) -> bool {
        SIM_AFFECTING.contains(&self.crate_name.as_str())
    }

    /// The file's crate may read wall clocks.
    pub fn is_clock_allowed(&self) -> bool {
        CLOCK_ALLOWED.contains(&self.crate_name.as_str())
    }

    /// True if `line` falls inside test code.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// True if a (well-formed) suppression for `rule` covers `line`:
    /// trailing on the same line, or on the line directly above.
    pub fn suppressed(&self, rule: RuleId, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && s.has_reason && (s.line == line || s.line + 1 == line))
    }

    /// The non-comment token at code-index `ci` (None past the end).
    pub fn ct(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.tokens[i])
    }

    /// True if the code token at `ci` is an ident with text `s`.
    pub fn ct_is(&self, ci: usize, s: &str) -> bool {
        self.ct(ci).is_some_and(|t| t.is_ident(s))
    }

    /// True if the code token at `ci` is punctuation `c`.
    pub fn ct_punct(&self, ci: usize, c: char) -> bool {
        self.ct(ci).is_some_and(|t| t.is_punct(c))
    }

    /// Marks `#[cfg(test)] mod … { … }` bodies (attribute line through the
    /// matching closing brace) as test code. Other attributes between the
    /// `cfg(test)` and the `mod` keyword are tolerated.
    fn find_cfg_test_modules(&mut self) {
        let n = self.code.len();
        let mut i = 0;
        while i < n {
            // #[cfg(test)]
            let is_cfg_test = self.ct_punct(i, '#')
                && self.ct_punct(i + 1, '[')
                && self.ct_is(i + 2, "cfg")
                && self.ct_punct(i + 3, '(')
                && self.ct_is(i + 4, "test")
                && self.ct_punct(i + 5, ')')
                && self.ct_punct(i + 6, ']');
            if !is_cfg_test {
                i += 1;
                continue;
            }
            let start_line = self.ct(i).map(|t| t.line).unwrap_or(0);
            // Scan forward over any further attributes to the item keyword.
            let mut j = i + 7;
            while self.ct_punct(j, '#') && self.ct_punct(j + 1, '[') {
                // Skip the balanced [...] of the attribute.
                let mut depth = 0usize;
                let mut k = j + 1;
                while k < n {
                    if self.ct_punct(k, '[') {
                        depth += 1;
                    } else if self.ct_punct(k, ']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                j = k + 1;
            }
            if self.ct_is(j, "mod") {
                // Find the opening brace, then its match.
                let mut k = j;
                while k < n && !self.ct_punct(k, '{') {
                    k += 1;
                }
                let mut depth = 0usize;
                let mut end = k;
                while end < n {
                    if self.ct_punct(end, '{') {
                        depth += 1;
                    } else if self.ct_punct(end, '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    end += 1;
                }
                let end_line = self.ct(end.min(n - 1)).map(|t| t.line).unwrap_or(u32::MAX);
                self.test_ranges.push((start_line, end_line));
                i = end + 1;
            } else {
                // `#[cfg(test)]` on a non-mod item (a lone fn or use):
                // treat just that line as test code.
                self.test_ranges.push((start_line, start_line + 1));
                i = j + 1;
            }
        }
    }

    /// Collects identifiers bound to `HashMap`/`HashSet` values: type
    /// ascriptions (`name: HashMap<…>` — struct fields and let bindings)
    /// and constructor assignments (`name = HashMap::new()` /
    /// `with_capacity` / `from`). Struct-field declarations additionally
    /// record their line (D001 flags those outright in sim crates).
    fn find_map_bindings(&mut self) {
        let n = self.code.len();
        // Track whether we're lexically inside a `struct … { … }` body so
        // `name: HashMap<…>` can be classified as a field (brace-depth
        // bookkeeping; close enough for declaration-site detection).
        let mut struct_depth: Vec<usize> = Vec::new(); // depths at which a struct body opened
        let mut depth = 0usize;
        let mut pending_struct = false;
        for i in 0..n {
            let Some(t) = self.ct(i) else { break };
            match t.kind {
                TokenKind::Ident if t.text == "struct" => pending_struct = true,
                TokenKind::Punct => match t.text.as_bytes().first() {
                    Some(b'{') => {
                        depth += 1;
                        if pending_struct {
                            struct_depth.push(depth);
                            pending_struct = false;
                        }
                    }
                    Some(b'}') => {
                        if struct_depth.last() == Some(&depth) {
                            struct_depth.pop();
                        }
                        depth = depth.saturating_sub(1);
                    }
                    Some(b';') => pending_struct = false, // unit/tuple struct
                    _ => {}
                },
                _ => {}
            }
            // name : HashMap <   |   name : HashSet <
            let is_map_ty =
                (self.ct_is(i, "HashMap") || self.ct_is(i, "HashSet")) && self.ct_punct(i + 1, '<');
            if is_map_ty && i >= 2 && self.ct_punct(i - 1, ':') {
                if let Some(name_tok) = self.ct(i - 2) {
                    if name_tok.kind == TokenKind::Ident {
                        let name = name_tok.text.clone();
                        let in_struct = struct_depth.last() == Some(&depth);
                        if in_struct {
                            self.map_field_decls.push((name.clone(), name_tok.line));
                        }
                        if !self.map_bindings.contains(&name) {
                            self.map_bindings.push(name);
                        }
                    }
                }
            }
            // name = HashMap :: new ( … )  (also with_capacity / from)
            let is_ctor = (self.ct_is(i, "HashMap") || self.ct_is(i, "HashSet"))
                && self.ct_punct(i + 1, ':')
                && self.ct_punct(i + 2, ':')
                && (self.ct_is(i + 3, "new")
                    || self.ct_is(i + 3, "with_capacity")
                    || self.ct_is(i + 3, "from"));
            if is_ctor && i >= 2 && self.ct_punct(i - 1, '=') {
                if let Some(name_tok) = self.ct(i - 2) {
                    if name_tok.kind == TokenKind::Ident
                        && !self.map_bindings.contains(&name_tok.text)
                    {
                        self.map_bindings.push(name_tok.text.clone());
                    }
                }
            }
        }
    }

    /// Parses `lint:allow(RULE): reason` markers out of comment tokens.
    ///
    /// Only *plain* comments (`//`, `/*`) carry suppressions — doc
    /// comments (`///`, `//!`, `/**`) are prose, so documentation that
    /// merely *describes* the marker syntax never suppresses (or
    /// malforms) anything.
    fn find_suppressions(&mut self) {
        for t in &self.tokens {
            if !t.is_comment() || is_doc_comment(&t.text) {
                continue;
            }
            let mut rest = t.text.as_str();
            while let Some(pos) = rest.find("lint:allow(") {
                rest = &rest[pos + "lint:allow(".len()..];
                let Some(close) = rest.find(')') else { break };
                let rule_name = rest[..close].trim().to_string();
                rest = &rest[close + 1..];
                // Mandatory `: reason` — anything non-empty after a colon.
                let has_reason = rest
                    .strip_prefix(':')
                    .map(|r| {
                        let r = r.trim();
                        let end = r.find("lint:allow(").unwrap_or(r.len());
                        !r[..end].trim().is_empty()
                    })
                    .unwrap_or(false);
                match RuleId::from_name(&rule_name) {
                    Some(rule) if has_reason => self.suppressions.push(Suppression {
                        rule,
                        line: t.line,
                        has_reason,
                    }),
                    // Unknown rule or missing reason: the marker itself is
                    // a finding and suppresses nothing.
                    _ => self.malformed_suppressions.push(t.line),
                }
            }
        }
    }
}

/// True for doc comments: `///`, `//!`, `/**`, `/*!` (but not the bare
/// `/**/` or a plain `//`-comment whose body merely starts with `/`).
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && text != "/**/" && !text.starts_with("/***"))
        || text.starts_with("/*!")
}

/// Derives the owning crate from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    let path = path.replace('\\', "/");
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    // Workspace-root package (src/, tests/, examples/).
    "eards".to_string()
}

/// True for files that are test-only by location: integration `tests/`
/// directories (workspace root or per-crate) and `benches/`.
pub fn is_test_path(path: &str) -> bool {
    let path = path.replace('\\', "/");
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("benches/")
        || path.contains("/benches/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/eards-sim/src/rng.rs"), "eards-sim");
        assert_eq!(crate_of("src/lib.rs"), "eards");
        assert_eq!(crate_of("tests/chaos.rs"), "eards");
    }

    #[test]
    fn test_paths() {
        assert!(is_test_path("tests/chaos.rs"));
        assert!(is_test_path("crates/eards-core/tests/matrix_oracle.rs"));
        assert!(!is_test_path("crates/eards-core/src/solver.rs"));
    }

    #[test]
    fn cfg_test_module_ranges() {
        let src = "\
fn live() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t() { assert!(true); }
}

fn also_live() {}
";
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        assert!(!f.in_test_code(1), "live fn");
        assert!(f.in_test_code(3), "attribute line");
        assert!(f.in_test_code(7), "test body");
        assert!(f.in_test_code(8), "closing brace");
        assert!(!f.in_test_code(10), "after the module");
    }

    #[test]
    fn cfg_test_with_extra_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n fn f() {}\n}\nfn live() {}\n";
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn tests_dir_is_all_test_code() {
        let f = SourceFile::parse("tests/chaos.rs", "fn f() { x.unwrap(); }");
        assert!(f.in_test_code(1));
    }

    #[test]
    fn map_bindings_fields_and_lets() {
        let src = "\
struct S {
    completion: HashMap<VmId, Handle>,
    names: HashSet<String>,
    plain: Vec<u32>,
}
fn f() {
    let local: HashMap<u32, u32> = HashMap::new();
    let inferred = HashSet::new();
    let not_a_map = Vec::new();
}
";
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        assert!(f.map_bindings.iter().any(|n| n == "completion"));
        assert!(f.map_bindings.iter().any(|n| n == "names"));
        assert!(f.map_bindings.iter().any(|n| n == "local"));
        assert!(f.map_bindings.iter().any(|n| n == "inferred"));
        assert!(!f.map_bindings.iter().any(|n| n == "plain"));
        assert!(!f.map_bindings.iter().any(|n| n == "not_a_map"));
        let fields: Vec<&str> = f.map_field_decls.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(fields, ["completion", "names"], "locals are not fields");
    }

    #[test]
    fn suppressions_parse_and_cover_next_line() {
        let src = "\
// lint:allow(D001): key-lookup only
x: HashMap<u32, u32>,
y: HashMap<u32, u32>, // lint:allow(D001): trailing form
";
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.suppressed(RuleId::D001, 2), "line-above form");
        assert!(f.suppressed(RuleId::D001, 3), "trailing form");
        assert!(!f.suppressed(RuleId::P001, 2), "other rules unaffected");
    }

    #[test]
    fn reasonless_suppressions_are_malformed() {
        for bad in [
            "// lint:allow(D001)",
            "// lint:allow(D001):",
            "// lint:allow(D001):   ",
            "// lint:allow(NOPE): not a rule",
        ] {
            let f = SourceFile::parse("crates/eards-sim/src/x.rs", bad);
            assert_eq!(
                f.malformed_suppressions,
                vec![1],
                "{bad:?} must be rejected"
            );
            assert!(f.suppressions.is_empty(), "{bad:?} must not suppress");
        }
    }

    #[test]
    fn suppressions_in_string_literals_are_inert() {
        // A raw string *describing* the marker syntax (e.g. in generated
        // docs or fixture text) must neither suppress nor malform.
        let src = "let s = r#\"use // lint:allow(D001): reason to suppress\"#;\n\
                   let t = \"lint:allow(P001)\";\n";
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        assert!(f.suppressions.is_empty());
        assert!(f.malformed_suppressions.is_empty());
    }

    #[test]
    fn one_comment_can_carry_markers_for_several_rules() {
        // Both markers cover the comment's line and the line below — the
        // one-line form is how a field under two rules stays covered.
        let src = "// lint:allow(D001): lookups only. lint:allow(SNAP001): rebuilt on restore\n\
                   m: HashMap<u32, u32>,\n";
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.suppressed(RuleId::D001, 2));
        assert!(f.suppressed(RuleId::SNAP001, 2));
        assert!(f.malformed_suppressions.is_empty());
    }

    #[test]
    fn doc_comments_never_carry_suppressions() {
        let src = "\
/// Write `// lint:allow(D001): reason` to suppress.
//! Or the malformed `lint:allow(RULE)` form.
/** Same for `lint:allow(NOPE)` in block docs. */
fn f() {}
";
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        assert!(f.suppressions.is_empty(), "docs must not suppress");
        assert!(
            f.malformed_suppressions.is_empty(),
            "docs must not be malformed markers either"
        );
    }
}
