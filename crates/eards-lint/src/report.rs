//! Rendering: human text and machine JSON.

use crate::baseline::BaselineOutcome;
use crate::rules::Finding;

/// Renders the gate outcome as human-oriented text. `files` is how many
/// files were scanned.
pub fn render_text(files: usize, outcome: &BaselineOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.new {
        out.push_str(&format!(
            "{}:{}: {} {}\n",
            f.path,
            f.line,
            f.rule.name(),
            f.message
        ));
    }
    if !outcome.new.is_empty() {
        out.push('\n');
    }
    for s in &outcome.stale {
        out.push_str(&format!(
            "note: baseline entry exceeds current findings: {s} — shrink it with \
             `eards lint --write-baseline`\n"
        ));
    }
    out.push_str(&format!(
        "lint: {} files scanned, {} finding(s) grandfathered, {} new\n",
        files,
        outcome.grandfathered,
        outcome.new.len()
    ));
    out
}

/// Renders the gate outcome as a single JSON object (stable keys; findings
/// sorted by path/line/rule upstream).
pub fn render_json(files: usize, outcome: &BaselineOutcome) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"files\":{},", files));
    out.push_str(&format!("\"grandfathered\":{},", outcome.grandfathered));
    out.push_str("\"new\":[");
    for (i, f) in outcome.new.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule.name(),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("],\"stale\":[");
    for (i, s) in outcome.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(s)));
    }
    out.push_str("]}");
    out.push('\n');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Re-exported for tests and the CLI: sorts findings into report order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn json_is_escaped_and_shaped() {
        let outcome = BaselineOutcome {
            new: vec![Finding {
                rule: RuleId::D004,
                path: "a \"b\".rs".into(),
                line: 7,
                message: "line1\nline2".into(),
            }],
            grandfathered: 3,
            stale: vec![],
        };
        let j = render_json(10, &outcome);
        assert!(j.contains("\"files\":10"));
        assert!(j.contains("\\\"b\\\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"rule\":\"D004\""));
    }

    #[test]
    fn text_summarizes() {
        let outcome = BaselineOutcome {
            new: vec![],
            grandfathered: 5,
            stale: vec!["P001 x.rs (baseline 3, now 2)".into()],
        };
        let t = render_text(12, &outcome);
        assert!(t.contains("12 files"));
        assert!(t.contains("5 finding(s) grandfathered"));
        assert!(t.contains("0 new"));
        assert!(t.contains("shrink it"));
    }
}
