//! # eards-lint — determinism & simulation-safety static analysis
//!
//! The repo's promise is a *bit-identical* reproduction of Goiri et al.'s
//! CLUSTER 2010 tables; until now that was enforced only dynamically, by
//! fingerprint proptests and regenerated-table diffs. This crate closes
//! the gap at the tooling layer: a hand-rolled Rust lexer (no `syn` — the
//! workspace vendors every dependency) plus a rule engine that walks each
//! `.rs` file and reports the domain-specific hazards clippy cannot see:
//!
//! | rule | hazard |
//! |------|--------|
//! | `D001` | `HashMap`/`HashSet` iteration (or map-typed fields) in sim-affecting crates |
//! | `D002` | wall-clock reads (`Instant::now`, `SystemTime`) outside `eards-obs`/`eards-bench` |
//! | `D003` | ambient randomness (`thread_rng`, `rand::random`, `from_entropy`) anywhere |
//! | `D004` | `partial_cmp(..).unwrap()/expect(..)` on floats — use `total_cmp` |
//! | `D005` | wall-clock / ambient-randomness APIs inside an `impl Persist` block |
//! | `P001` | `unwrap`/`expect`/`panic!`/literal indexing in sim library code |
//! | `C001` | raw float↔int `as` casts in `SimTime` arithmetic |
//! | `S001` | `lint:allow` marker missing its mandatory reason |
//!
//! Suppression is inline and *reasoned*:
//! `// lint:allow(D001): key-lookup only, never iterated` — covering the
//! comment's line and the line below it. Pre-existing findings live in the
//! checked-in [`Baseline`] (`lint-baseline.toml`), so the gate blocks new
//! findings from day one without a big-bang cleanup.
//!
//! Surfaces: `eards lint [--baseline F --format text|json --write-baseline]`,
//! a blocking CI step, and the fixture self-tests under `tests/`.

#![warn(missing_docs)]

pub mod baseline;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineOutcome};
pub use items::{ItemIndex, Items, TypeShape};
pub use rules::{Finding, RuleId};
pub use source::SourceFile;

/// Lints one file given its workspace-relative `path` (which drives crate
/// attribution — see [`source::crate_of`]) and contents. The semantic
/// rules resolve `impl Persist` targets against this file only; use
/// [`lint_workspace`] for cross-file resolution.
pub fn lint_source(path: &str, text: &str) -> Vec<Finding> {
    let f = SourceFile::parse(path, text);
    let index = ItemIndex::build(std::iter::once(&f));
    rules::check_file(&f, &index)
}

/// The result of linting a file tree.
#[derive(Debug, Default)]
pub struct LintRun {
    /// How many `.rs` files were scanned.
    pub files: usize,
    /// Every finding, sorted by path, line, rule.
    pub findings: Vec<Finding>,
}

/// Directory names never descended into: build output, vendored deps,
/// VCS metadata, and the lint fixtures themselves (which are *meant* to
/// contain findings).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Collects every lintable `.rs` file under `root`, workspace-relative,
/// sorted for deterministic report order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file in the workspace rooted at `root`.
///
/// Two passes: every file is parsed first so the [`ItemIndex`] spans the
/// whole workspace, then the rules run per file — which is what lets
/// `SNAP001`/`SNAP002` check an `impl Persist for T` against a `struct T`
/// declared in a different file.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintRun> {
    let mut parsed = Vec::new();
    for path in workspace_files(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        parsed.push(SourceFile::parse(&rel, &text));
    }
    let index = ItemIndex::build(parsed.iter());
    let mut run = LintRun {
        files: parsed.len(),
        findings: Vec::new(),
    };
    for f in &parsed {
        run.findings.extend(rules::check_file(f, &index));
    }
    report::sort_findings(&mut run.findings);
    Ok(run)
}

/// Ascends from `start` to the workspace root: the first directory whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_end_to_end() {
        let src = "\
use std::collections::HashMap;
struct S { m: HashMap<u32, u32> }
fn f(s: &S) -> u32 {
    let x: Vec<f64> = vec![1.0];
    x.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s.m.len() as u32
}
";
        let fs = lint_source("crates/eards-model/src/x.rs", src);
        assert!(fs.iter().any(|f| f.rule == RuleId::D001 && f.line == 2));
        assert!(fs.iter().any(|f| f.rule == RuleId::D004 && f.line == 5));
        // `as u32` is not SimTime arithmetic here — no C001.
        assert!(!fs.iter().any(|f| f.rule == RuleId::C001));
    }

    #[test]
    fn non_sim_crates_skip_scoped_rules() {
        let src = "struct S { m: HashMap<u32, u32> }\nfn f() { x.unwrap(); }\n";
        let fs = lint_source("crates/eards-metrics/src/x.rs", src);
        assert!(fs.iter().all(|f| f.rule != RuleId::D001));
        assert!(fs.iter().all(|f| f.rule != RuleId::P001));
    }

    #[test]
    fn workspace_index_resolves_cross_file_persist_targets() {
        // Scratch workspace: the struct and its codec live in different
        // files, so only the two-pass ItemIndex can see the field list.
        let root = std::env::temp_dir().join(format!("eards-lint-xfile-{}", std::process::id()));
        let src_dir = root.join("crates/eards-model/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("def.rs"),
            "pub struct Remote {\n    pub alpha: u64,\n    pub beta: u64,\n}\n",
        )
        .unwrap();
        std::fs::write(
            src_dir.join("codec.rs"),
            "impl Persist for Remote {\n\
             \x20   fn persist(&self, w: &mut Writer) {\n\
             \x20       w.put_u64(self.alpha);\n\
             \x20   }\n\
             \x20   fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {\n\
             \x20       Ok(Remote { alpha: r.get_u64()?, beta: 0 })\n\
             \x20   }\n\
             }\n",
        )
        .unwrap();
        // A name defined in two files is Ambiguous: its incomplete codec
        // must draw nothing rather than guess a field list.
        std::fs::write(src_dir.join("dup_a.rs"), "pub struct Dup { pub x: u64 }\n").unwrap();
        std::fs::write(src_dir.join("dup_b.rs"), "pub struct Dup { pub y: u64 }\n").unwrap();
        std::fs::write(
            src_dir.join("dup_codec.rs"),
            "impl Persist for Dup {\n\
             \x20   fn persist(&self, _w: &mut Writer) {}\n\
             \x20   fn restore(_r: &mut Reader<'_>) -> Result<Self, PersistError> { todo!() }\n\
             }\n",
        )
        .unwrap();

        let run = lint_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).ok();

        let snap: Vec<_> = run
            .findings
            .iter()
            .filter(|f| f.rule == RuleId::SNAP001)
            .collect();
        assert_eq!(snap.len(), 1, "only Remote::beta is uncovered: {snap:?}");
        assert_eq!(snap[0].path, "crates/eards-model/src/codec.rs");
        // Cross-file targets anchor on the impl header, not the distant field.
        assert_eq!(snap[0].line, 1);
        assert!(snap[0].message.contains("`beta`"), "{}", snap[0].message);
        assert!(
            snap[0].message.contains("restored but never persisted"),
            "{}",
            snap[0].message
        );
        // The filter above also proves no SNAP001 was invented for the
        // ambiguous Dup despite its plainly incomplete codec.
    }

    #[test]
    fn workspace_root_discovery() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("runs inside the workspace");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").exists());
    }
}
