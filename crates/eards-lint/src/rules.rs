//! The rule registry and the token-pattern matchers.
//!
//! Every rule has a stable ID (used in `lint:allow(...)` markers and the
//! baseline file) and reports [`Finding`]s with exact line numbers. The
//! rules encode *domain* knowledge clippy cannot express: which crates
//! feed simulation state, which are allowed to read wall clocks, and why
//! `HashMap` iteration order or a NaN-panicking float sort would silently
//! break the bit-identical reproduction of the paper's tables.

use crate::items::{ItemIndex, TypeShape};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Stable rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `HashMap`/`HashSet` iteration (or a map-typed struct field) in a
    /// sim-affecting crate: iteration order leaks into event order.
    D001,
    /// Wall-clock APIs (`Instant::now`, `SystemTime`) outside the
    /// allowlisted observability/bench crates.
    D002,
    /// Ambient randomness (`thread_rng`, `rand::random`, `from_entropy`):
    /// all RNG must flow from the seeded per-host streams.
    D003,
    /// `partial_cmp(..).unwrap()/expect(..)` on floats: NaN panics at a
    /// distance; use `f64::total_cmp`.
    D004,
    /// Wall-clock or ambient-randomness APIs (`Instant`, `SystemTime`,
    /// `thread_rng`) inside an `impl Persist` block: snapshot state must
    /// restore bit-identically on any machine at any time, so nothing
    /// host- or wall-clock-derived may be serialized. Applies everywhere,
    /// even in the crates D002 allowlists.
    D005,
    /// `unwrap`/`expect`/`panic!`/indexing-by-literal in non-test library
    /// code of the sim-affecting crates, and inside `impl Persist` bodies
    /// in every crate (a panicking codec loses the run it checkpoints).
    P001,
    /// `as` casts between float and integer in `SimTime`/`SimDuration`
    /// arithmetic: go through the rounding/clamping conversion helpers.
    C001,
    /// Persist field-coverage: a named field of `T` missing from the
    /// `persist` or `restore` body of `impl Persist for T` (or present in
    /// only one direction — write/read asymmetry). A forgotten field
    /// silently breaks the snapshot-identity guarantee every replay test
    /// stands on. Transient rebuilt-on-restore state carries a reasoned
    /// `lint:allow(SNAP001)` on its field declaration.
    SNAP001,
    /// Codec enum-tag exhaustiveness: a variant of `E` missing from the
    /// `persist` or `restore` body of `impl Persist for E` — a new
    /// variant without a tag arm in both directions corrupts snapshots.
    SNAP002,
    /// Malformed suppression: `lint:allow` without a mandatory reason, or
    /// naming an unknown rule. Never suppressible, never baselined.
    S001,
    /// Stale suppression: a well-formed `lint:allow` whose rule fires no
    /// finding on the lines it covers. Dead allows rot into false
    /// documentation; delete them. Never suppressible, never baselined.
    S002,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: &'static [RuleId] = &[
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::P001,
        RuleId::C001,
        RuleId::SNAP001,
        RuleId::SNAP002,
        RuleId::S001,
        RuleId::S002,
    ];

    /// The stable name (`D001`, …).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::P001 => "P001",
            RuleId::C001 => "C001",
            RuleId::SNAP001 => "SNAP001",
            RuleId::SNAP002 => "SNAP002",
            RuleId::S001 => "S001",
            RuleId::S002 => "S002",
        }
    }

    /// Parses a rule name (as written in `lint:allow(...)`).
    pub fn from_name(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// One-line description, shown by `eards lint` output.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::D001 => "HashMap/HashSet iteration order leaks into simulation state",
            RuleId::D002 => "wall-clock read outside the observability/bench allowlist",
            RuleId::D003 => "ambient randomness instead of a seeded SimRng stream",
            RuleId::D004 => "partial_cmp().unwrap()/expect() on floats; use total_cmp",
            RuleId::D005 => "wall-clock/ambient-randomness API inside an impl Persist block",
            RuleId::P001 => {
                "panic hazard (unwrap/expect/panic!/literal index) in sim library \
                 code or an impl Persist body"
            }
            RuleId::C001 => "raw float<->int `as` cast in SimTime arithmetic",
            RuleId::SNAP001 => {
                "struct field missing from a persist/restore body of its \
                 impl Persist (snapshot drops or asymmetric codec)"
            }
            RuleId::SNAP002 => {
                "enum variant missing a tag arm in a persist/restore body \
                 of its impl Persist"
            }
            RuleId::S001 => "lint:allow marker without the mandatory reason",
            RuleId::S002 => "stale lint:allow: its rule fires nothing on the covered lines",
        }
    }

    /// False for the suppression-hygiene rules (`S001`, `S002`): a broken
    /// or dead marker is always a new finding — it can neither be
    /// grandfathered in the baseline nor suppressed by another marker.
    pub fn baselineable(self) -> bool {
        !matches!(self, RuleId::S001 | RuleId::S002)
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-oriented detail.
    pub message: String,
}

/// Runs every rule over one analyzed file.
///
/// Two stages: the rules first record *raw* findings (ignoring
/// suppressions), then suppression filtering happens here — which is what
/// lets `S002` see the difference between an allow that covers a real
/// finding and one that covers nothing. `index` is the workspace type
/// index the semantic rules resolve cross-file `impl Persist` targets
/// against; for single-file linting, build it over just that file.
pub fn check_file(f: &SourceFile, index: &ItemIndex) -> Vec<Finding> {
    let mut raw = Vec::new();
    d001_map_iteration(f, &mut raw);
    d002_wall_clock(f, &mut raw);
    d003_ambient_randomness(f, &mut raw);
    d004_partial_cmp_unwrap(f, &mut raw);
    d005_wall_state_in_persist(f, &mut raw);
    p001_panic_hazards(f, &mut raw);
    c001_simtime_casts(f, &mut raw);
    snap001_field_coverage(f, index, &mut raw);
    snap002_tag_exhaustiveness(f, index, &mut raw);
    let mut out: Vec<Finding> = raw
        .iter()
        .filter(|fd| !f.suppressed(fd.rule, fd.line))
        .cloned()
        .collect();
    // Malformed suppressions: not suppressible by construction.
    for &line in &f.malformed_suppressions {
        out.push(Finding {
            rule: RuleId::S001,
            path: f.path.clone(),
            line,
            message: "suppression needs a reason: `// lint:allow(RULE): <why>`".into(),
        });
    }
    // S002 — stale suppressions: a well-formed allow must cover at least
    // one raw finding of its rule on its own line or the line below.
    // (An allow for S001/S002 themselves can never match a raw finding,
    // so those markers are self-reportingly stale — by design.) Test code
    // is exempt: rules skip test lines, so allows there are documentation.
    for s in &f.suppressions {
        if !s.has_reason || f.in_test_code(s.line) {
            continue;
        }
        let used = raw
            .iter()
            .any(|fd| fd.rule == s.rule && (fd.line == s.line || fd.line == s.line + 1));
        if !used {
            out.push(Finding {
                rule: RuleId::S002,
                path: f.path.clone(),
                line: s.line,
                message: format!(
                    "stale suppression: no {} finding on this line or the next — \
                     delete the lint:allow",
                    s.rule.name()
                ),
            });
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Records a raw finding. Suppression filtering happens in [`check_file`]
/// after every rule has run, so `S002` can tell used allows from stale.
fn emit(f: &SourceFile, out: &mut Vec<Finding>, rule: RuleId, line: u32, message: String) {
    out.push(Finding {
        rule,
        path: f.path.clone(),
        line,
        message,
    });
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// D001 — map iteration in sim-affecting crates. Fires on (a) struct
/// fields of `HashMap`/`HashSet` type (any later iteration — even from
/// another file — would be order-dependent, so the *declaration* must
/// either become a `BTreeMap` or carry a reasoned `lint:allow`), and
/// (b) iteration-shaped calls / `for`-loops over map-typed bindings.
fn d001_map_iteration(f: &SourceFile, out: &mut Vec<Finding>) {
    if !f.is_sim_affecting() {
        return;
    }
    for (name, line) in &f.map_field_decls {
        if f.in_test_code(*line) {
            continue;
        }
        emit(
            f,
            out,
            RuleId::D001,
            *line,
            format!(
                "field `{name}` is a HashMap/HashSet in a sim-affecting crate; \
                 use BTreeMap/sorted snapshots if it is ever iterated, or \
                 suppress with the reason it is lookup-only"
            ),
        );
    }
    let n = f.code.len();
    for i in 0..n {
        let Some(t) = f.ct(i) else { break };
        if f.in_test_code(t.line) {
            continue;
        }
        // name.iter() / self.name.keys() / name.drain() …
        if t.kind == TokenKind::Ident
            && f.map_bindings.contains(&t.text)
            && f.ct_punct(i + 1, '.')
            && f.ct_punct(i + 3, '(')
        {
            if let Some(m) = f.ct(i + 2) {
                if ITER_METHODS.contains(&m.text.as_str()) {
                    emit(
                        f,
                        out,
                        RuleId::D001,
                        t.line,
                        format!(
                            "iterating `{}.{}()`: HashMap/HashSet order is \
                             nondeterministic",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // for pat in [&][mut] [self.] name { …
        if t.is_ident("in") {
            let mut j = i + 1;
            if f.ct_punct(j, '&') {
                j += 1;
            }
            if f.ct_is(j, "mut") {
                j += 1;
            }
            if f.ct_is(j, "self") && f.ct_punct(j + 1, '.') {
                j += 2;
            }
            if let Some(name) = f.ct(j) {
                if name.kind == TokenKind::Ident
                    && f.map_bindings.contains(&name.text)
                    && f.ct_punct(j + 1, '{')
                {
                    emit(
                        f,
                        out,
                        RuleId::D001,
                        t.line,
                        format!(
                            "`for … in {}`: HashMap/HashSet order is nondeterministic",
                            name.text
                        ),
                    );
                }
            }
        }
    }
}

/// D002 — wall-clock reads outside `eards-obs`/`eards-bench`. Simulated
/// time must come from the DES clock; a real-clock read anywhere else is
/// either a bug or belongs in the observability layer.
fn d002_wall_clock(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.is_clock_allowed() {
        return;
    }
    let n = f.code.len();
    for i in 0..n {
        let Some(t) = f.ct(i) else { break };
        if t.is_ident("Instant")
            && f.ct_punct(i + 1, ':')
            && f.ct_punct(i + 2, ':')
            && f.ct_is(i + 3, "now")
        {
            emit(
                f,
                out,
                RuleId::D002,
                t.line,
                "`Instant::now()` outside eards-obs/eards-bench: sim code must use \
                 the simulation clock"
                    .into(),
            );
        }
        if t.is_ident("SystemTime") {
            emit(
                f,
                out,
                RuleId::D002,
                t.line,
                "`SystemTime` outside eards-obs/eards-bench: sim code must use the \
                 simulation clock"
                    .into(),
            );
        }
    }
}

/// D003 — ambient randomness, anywhere in the workspace. Every random
/// draw must flow from a seeded `SimRng` (or a fork of one); `thread_rng`
/// / `rand::random` / `from_entropy` would make runs irreproducible.
fn d003_ambient_randomness(f: &SourceFile, out: &mut Vec<Finding>) {
    let n = f.code.len();
    for i in 0..n {
        let Some(t) = f.ct(i) else { break };
        let hit = if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            Some(t.text.clone())
        } else if t.is_ident("rand")
            && f.ct_punct(i + 1, ':')
            && f.ct_punct(i + 2, ':')
            && f.ct_is(i + 3, "random")
        {
            Some("rand::random".to_string())
        } else {
            None
        };
        if let Some(api) = hit {
            emit(
                f,
                out,
                RuleId::D003,
                t.line,
                format!("`{api}`: all randomness must come from seeded SimRng streams"),
            );
        }
    }
}

/// D004 — `partial_cmp(..)` chained into `unwrap()`/`expect(..)`. On
/// floats this panics the moment a NaN reaches the comparison; for a
/// total order over floats `f64::total_cmp` is both panic-free and
/// deterministic. Applies everywhere, tests included — a NaN-panicking
/// sort in a test is still a flake waiting to happen.
fn d004_partial_cmp_unwrap(f: &SourceFile, out: &mut Vec<Finding>) {
    let n = f.code.len();
    for i in 0..n {
        let Some(t) = f.ct(i) else { break };
        if !t.is_ident("partial_cmp") {
            continue;
        }
        // A call site: `x.partial_cmp(..)` or `T::partial_cmp(..)`; a
        // declaration (`fn partial_cmp`) is preceded by `fn`.
        let is_call = i > 0 && (f.ct_punct(i - 1, '.') || f.ct_punct(i - 1, ':'));
        if !is_call || !f.ct_punct(i + 1, '(') {
            continue;
        }
        // Skip the balanced argument list.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < n {
            if f.ct_punct(j, '(') {
                depth += 1;
            } else if f.ct_punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if f.ct_punct(j + 1, '.') && (f.ct_is(j + 2, "unwrap") || f.ct_is(j + 2, "expect")) {
            emit(
                f,
                out,
                RuleId::D004,
                t.line,
                "`partial_cmp(..).unwrap()/expect(..)` panics on NaN; use \
                 `f64::total_cmp`"
                    .into(),
            );
        }
    }
}

/// APIs that have no business near serialized state: wall clocks drift
/// between machines, ambient RNGs reseed per process.
const D005_FORBIDDEN: &[&str] = &["Instant", "SystemTime", "thread_rng"];

/// Token-index ranges (inclusive, body brace to body brace) of every
/// `impl … Persist for …` block in the file, read off the item parser
/// (`impl<T: Persist> Persist for Vec<T>` still qualifies — generic
/// parameter lists are skipped before the trait path is read). Shared by
/// D005 (wall state in codecs) and P001 (panic hazards in codecs outside
/// the sim-affecting crates). Note macro template bodies are opaque to
/// the item parser, so `impl Persist for $t` inside `macro_rules!` is
/// (correctly) not a range.
fn persist_impl_ranges(f: &SourceFile) -> Vec<(usize, usize)> {
    f.items
        .impls
        .iter()
        .filter(|i| i.trait_name.as_deref() == Some("Persist"))
        .map(|i| i.body)
        .collect()
}

/// D005 — wall-clock or ambient-randomness APIs inside an `impl Persist`
/// block. A snapshot must restore bit-identically on a different machine
/// at a different time, so nothing derived from `Instant`, `SystemTime`
/// or `thread_rng` may flow through `persist`/`restore`. Unlike D002 this
/// applies in *every* crate: even the clock-allowlisted observability
/// layer must keep wall time out of its persisted form.
fn d005_wall_state_in_persist(f: &SourceFile, out: &mut Vec<Finding>) {
    for (lo, hi) in persist_impl_ranges(f) {
        for j in lo..=hi {
            let Some(t) = f.ct(j) else { break };
            if t.kind == TokenKind::Ident
                && D005_FORBIDDEN.contains(&t.text.as_str())
                && !f.in_test_code(t.line)
            {
                emit(
                    f,
                    out,
                    RuleId::D005,
                    t.line,
                    format!(
                        "`{}` inside an `impl Persist` block: snapshots must \
                         restore bit-identically, so persisted state cannot \
                         come from wall clocks or ambient RNGs",
                        t.text
                    ),
                );
            }
        }
    }
}

/// P001 — panic hazards in non-test library code: `.unwrap()`,
/// `.expect(..)`, `panic!(..)`, and indexing with an integer literal
/// (`xs[0]`). A panic mid-simulation corrupts nothing *because* it
/// aborts — but a production-scale run losing hours to a recoverable edge
/// is exactly what ROADMAP's north star forbids.
///
/// Scope: the whole file in sim-affecting crates; elsewhere only the
/// bodies of `impl Persist` blocks. A panicking codec turns a routine
/// snapshot write into a lost run no matter which crate hosts it (the
/// `put_len` overflow panic lived exactly there), so codec bodies are
/// held to the sim-crate standard everywhere.
fn p001_panic_hazards(f: &SourceFile, out: &mut Vec<Finding>) {
    let sim = f.is_sim_affecting();
    let persist_ranges = if sim {
        Vec::new()
    } else {
        persist_impl_ranges(f)
    };
    if !sim && persist_ranges.is_empty() {
        return;
    }
    let in_scope = |i: usize| sim || persist_ranges.iter().any(|&(lo, hi)| lo <= i && i <= hi);
    let context = if sim {
        "sim library code"
    } else {
        "an impl Persist body"
    };
    let n = f.code.len();
    for i in 0..n {
        let Some(t) = f.ct(i) else { break };
        if f.in_test_code(t.line) || !in_scope(i) {
            continue;
        }
        // .unwrap() / .expect(
        if i > 0
            && f.ct_punct(i - 1, '.')
            && (t.is_ident("unwrap") || t.is_ident("expect"))
            && f.ct_punct(i + 1, '(')
        {
            emit(
                f,
                out,
                RuleId::P001,
                t.line,
                format!(
                    "`.{}(..)` in {context}: return or propagate instead",
                    t.text
                ),
            );
        }
        // panic!(
        if t.is_ident("panic") && f.ct_punct(i + 1, '!') {
            emit(
                f,
                out,
                RuleId::P001,
                t.line,
                format!("`panic!` in {context}: return an error instead"),
            );
        }
        // xs[0] — literal index on an expression (ident or closing
        // bracket), which panics when the container is shorter.
        if t.is_punct('[')
            && i > 0
            && f.ct(i - 1)
                .is_some_and(|p| p.kind == TokenKind::Ident || p.is_punct(')') || p.is_punct(']'))
            && f.ct(i + 1).is_some_and(|x| x.kind == TokenKind::Int)
            && f.ct_punct(i + 2, ']')
        {
            emit(
                f,
                out,
                RuleId::P001,
                t.line,
                "indexing by integer literal panics when the container is shorter; \
                 use .get(..) or .first()"
                    .into(),
            );
        }
    }
}

/// Primitive numeric types a C001-relevant `as` cast can target.
const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// C001 — raw `as` casts in `SimTime`/`SimDuration` arithmetic (any
/// statement mentioning those types, plus the whole fixed-point
/// implementation in `eards-sim/src/time.rs`). Float→int truncates and
/// int→float loses precision past 2^53; both must flow through the
/// rounding/clamping helpers (`from_secs_f64`, `as_secs_f64`, …) so every
/// conversion decision is made exactly once.
fn c001_simtime_casts(f: &SourceFile, out: &mut Vec<Finding>) {
    if !f.is_sim_affecting() {
        return;
    }
    let whole_file = f.path.ends_with("eards-sim/src/time.rs");
    let n = f.code.len();
    let mut stmt_start = 0usize;
    let mut i = 0;
    while i < n {
        let is_boundary = f.ct_punct(i, ';') || f.ct_punct(i, '{') || f.ct_punct(i, '}');
        if is_boundary || i + 1 == n {
            let end = if is_boundary { i } else { n };
            let mentions_time = whole_file
                || (stmt_start..end).any(|k| f.ct_is(k, "SimTime") || f.ct_is(k, "SimDuration"));
            if mentions_time {
                for k in stmt_start..end {
                    let Some(t) = f.ct(k) else { break };
                    if f.in_test_code(t.line) {
                        continue;
                    }
                    if t.is_ident("as")
                        && f.ct(k + 1)
                            .is_some_and(|ty| NUMERIC_TYPES.contains(&ty.text.as_str()))
                    {
                        emit(
                            f,
                            out,
                            RuleId::C001,
                            t.line,
                            format!(
                                "`as {}` in SimTime arithmetic: use the \
                                 SimTime/SimDuration conversion helpers",
                                f.ct(k + 1).map(|t| t.text.as_str()).unwrap_or("?")
                            ),
                        );
                    }
                }
            }
            stmt_start = i + 1;
        }
        i += 1;
    }
}

/// True if any code token in `body` (inclusive brace-to-brace range) is
/// an identifier spelled `name`. This is deliberately name-level, not
/// flow-level: `self.load.persist(w)`, a restore struct-literal key
/// `load:`, or a local `let load = …` all count as coverage. The rules
/// trade a few theoretical false negatives (a shadowing local) for zero
/// false positives on every codec style in this workspace.
fn body_mentions(f: &SourceFile, body: (usize, usize), name: &str) -> bool {
    (body.0..=body.1).any(|ci| f.ct_is(ci, name))
}

/// The `persist`/`restore` method bodies of an `impl Persist`, if both
/// are present (an impl missing either is not a codec — e.g. a fixture
/// exercising an unrelated trait of the same name — and is skipped).
fn codec_bodies(imp: &crate::items::ImplDef) -> Option<((usize, usize), (usize, usize))> {
    Some((imp.method("persist")?.body, imp.method("restore")?.body))
}

/// Resolves the target type of `impl Persist for T`: the same file first
/// (every real codec in this workspace sits beside its type), then the
/// workspace index; ambiguous or unknown names resolve to `None` and the
/// semantic rules stay silent (scalar impls like `Persist for u64`,
/// std containers, macro expansions).
enum ResolvedTarget<'a> {
    /// Struct defined in this file — findings anchor on field lines.
    LocalStruct(&'a crate::items::StructDef),
    /// Enum defined in this file — findings anchor on variant lines.
    LocalEnum(&'a crate::items::EnumDef),
    /// Shape known only via the index — findings anchor on the impl line.
    Indexed(&'a TypeShape),
}

fn resolve_target<'a>(
    f: &'a SourceFile,
    index: &'a ItemIndex,
    name: &str,
) -> Option<ResolvedTarget<'a>> {
    if let Some(sd) = f.items.struct_def(name) {
        return Some(ResolvedTarget::LocalStruct(sd));
    }
    if let Some(ed) = f.items.enum_def(name) {
        return Some(ResolvedTarget::LocalEnum(ed));
    }
    match index.shape(name)? {
        TypeShape::Ambiguous => None,
        shape => Some(ResolvedTarget::Indexed(shape)),
    }
}

/// Formats the shared "which direction is missing" tail of a SNAP
/// diagnostic. `in_w`/`in_r` cannot both be true when this is called.
fn snap_direction(in_w: bool, in_r: bool) -> &'static str {
    match (in_w, in_r) {
        (false, false) => "appears in neither `persist` nor `restore`",
        (true, false) => "is persisted but never restored (write/read asymmetry)",
        (false, true) => "is restored but never persisted (write/read asymmetry)",
        (true, true) => unreachable!("caller emits only on missing coverage"),
    }
}

/// SNAP001 — Persist field-coverage. For every `impl Persist for T` where
/// `T` is a braced struct the analyzer can resolve, every named field
/// must be mentioned in *both* the `persist` and the `restore` body.
/// A field missing from both silently vanishes from snapshots; a field
/// in only one direction is a codec asymmetry that corrupts the read
/// framing. Transient rebuilt-on-restore state carries a reasoned
/// `lint:allow(SNAP001)` on its field declaration (local types) or on
/// the impl header (cross-file types).
fn snap001_field_coverage(f: &SourceFile, index: &ItemIndex, out: &mut Vec<Finding>) {
    for imp in &f.items.impls {
        if imp.trait_name.as_deref() != Some("Persist") || f.in_test_code(imp.line) {
            continue;
        }
        let Some(ty) = imp.type_name.as_deref() else {
            continue;
        };
        let Some((w_body, r_body)) = codec_bodies(imp) else {
            continue;
        };
        // (field name, anchor line) pairs for the resolved struct shape.
        let fields: Vec<(String, u32)> = match resolve_target(f, index, ty) {
            Some(ResolvedTarget::LocalStruct(sd)) if sd.named => sd
                .fields
                .iter()
                .map(|fd| (fd.name.clone(), fd.line))
                .collect(),
            Some(ResolvedTarget::Indexed(TypeShape::Struct {
                fields,
                named: true,
            })) => fields.iter().map(|n| (n.clone(), imp.line)).collect(),
            _ => continue, // enum (SNAP002's job), tuple/unit, unresolved
        };
        for (name, line) in fields {
            let in_w = body_mentions(f, w_body, &name);
            let in_r = body_mentions(f, r_body, &name);
            if in_w && in_r {
                continue;
            }
            emit(
                f,
                out,
                RuleId::SNAP001,
                line,
                format!(
                    "field `{name}` of `{ty}` {} in its impl Persist; persist+restore \
                     it, or mark it transient with a reasoned lint:allow(SNAP001)",
                    snap_direction(in_w, in_r)
                ),
            );
        }
    }
}

/// SNAP002 — codec enum-tag exhaustiveness. For every `impl Persist for
/// E` where `E` is an enum the analyzer can resolve, every variant name
/// must be mentioned in both the `persist` (tag write) and `restore`
/// (tag match) bodies — the exact hole a newly added variant opens when
/// only one direction grows an arm.
fn snap002_tag_exhaustiveness(f: &SourceFile, index: &ItemIndex, out: &mut Vec<Finding>) {
    for imp in &f.items.impls {
        if imp.trait_name.as_deref() != Some("Persist") || f.in_test_code(imp.line) {
            continue;
        }
        let Some(ty) = imp.type_name.as_deref() else {
            continue;
        };
        let Some((w_body, r_body)) = codec_bodies(imp) else {
            continue;
        };
        let variants: Vec<(String, u32)> = match resolve_target(f, index, ty) {
            Some(ResolvedTarget::LocalEnum(ed)) => ed
                .variants
                .iter()
                .map(|v| (v.name.clone(), v.line))
                .collect(),
            Some(ResolvedTarget::Indexed(TypeShape::Enum { variants })) => {
                variants.iter().map(|n| (n.clone(), imp.line)).collect()
            }
            _ => continue,
        };
        for (name, line) in variants {
            let in_w = body_mentions(f, w_body, &name);
            let in_r = body_mentions(f, r_body, &name);
            if in_w && in_r {
                continue;
            }
            emit(
                f,
                out,
                RuleId::SNAP002,
                line,
                format!(
                    "variant `{name}` of `{ty}` {} in its impl Persist: add the tag \
                     arm to both directions",
                    snap_direction(in_w, in_r)
                ),
            );
        }
    }
}
