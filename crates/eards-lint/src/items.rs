//! Item-level parsing: the semantic layer between the lexer and the rules.
//!
//! [`parse_items`] walks a file's comment-free token view with a small
//! recursive-descent parser and extracts *item skeletons* — no expression
//! grammar, just balanced-delimiter structure:
//!
//! * `struct` definitions with their named-field lists (tuple and unit
//!   structs are recorded without fields),
//! * `enum` definitions with their variant names,
//! * `impl` blocks (inherent and trait) with the trait name, the target
//!   type's head identifier, and every method's name + body token range.
//!
//! This is exactly the shape the semantic Persist rules need: `SNAP001`
//! checks that every field of a struct appears in both codec directions of
//! its `impl Persist`, and `SNAP002` does the same for enum variants. The
//! parser is *total* — malformed input degrades to fewer recognized items,
//! never a panic — because the linter must survive any code it audits.
//!
//! ## What the parser understands (and what it skips)
//!
//! Generic parameter lists are skipped with angle-depth tracking that
//! knows `->` (an arrow inside `Fn(..) -> T` sugar) is not a closing
//! angle, and that a `{ … }` group inside a generic position (const
//! generic expressions) suspends angle counting entirely. Function bodies,
//! trait bodies, and `macro_rules!` bodies are skipped wholesale: items
//! declared inside them are invisible, which keeps macro templates like
//! `impl Persist for $t` from polluting the item list. `mod` bodies are
//! descended into, so `#[cfg(test)] mod tests { … }` items are still
//! parsed (rules decide test-scope via [`SourceFile::in_test_code`]).

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// A named field of a braced struct.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field's name token.
    pub line: u32,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant's name token.
    pub line: u32,
}

/// A `struct` definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name (without generics).
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in declaration order. Empty for tuple/unit structs.
    pub fields: Vec<FieldDef>,
    /// True for a braced struct (named fields), false for tuple/unit.
    pub named: bool,
}

/// An `enum` definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Type name (without generics).
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variants in declaration order.
    pub variants: Vec<VariantDef>,
}

/// A method (`fn`) inside an impl body.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-token index range of the body, **inclusive** of both braces.
    pub body: (usize, usize),
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Trait being implemented (`Persist` in `impl Persist for T`), the
    /// last path segment; `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Head identifier of the target type (`Vec` in `Vec<T>`, `ShardMap`
    /// in `crate::shard::ShardMap`); `None` for non-path targets like
    /// slices, tuples, or references to them.
    pub type_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Code-token index range of the body, **inclusive** of both braces.
    pub body: (usize, usize),
    /// Methods declared directly in the body.
    pub methods: Vec<MethodDef>,
}

impl ImplDef {
    /// The method named `name`, if declared in this impl.
    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// Every item skeleton parsed out of one file.
#[derive(Debug, Clone, Default)]
pub struct Items {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// Enum definitions, in source order.
    pub enums: Vec<EnumDef>,
    /// Impl blocks, in source order.
    pub impls: Vec<ImplDef>,
}

impl Items {
    /// The struct named `name`, if defined in this file.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// The enum named `name`, if defined in this file.
    pub fn enum_def(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name)
    }
}

/// The shape of a type as the workspace index knows it.
#[derive(Debug, Clone)]
pub enum TypeShape {
    /// A struct: its named fields (empty + `named: false` for tuple/unit).
    Struct {
        /// Field names in declaration order.
        fields: Vec<String>,
        /// True for braced structs.
        named: bool,
    },
    /// An enum and its variant names.
    Enum {
        /// Variant names in declaration order.
        variants: Vec<String>,
    },
    /// More than one non-test definition shares this name — cross-file
    /// resolution would be a guess, so the semantic rules skip it.
    Ambiguous,
}

/// Workspace-wide map from type name to shape, built in a first pass over
/// every parsed file so `impl Persist for T` in one file can be checked
/// against `struct T` declared in another.
///
/// Definitions inside test code never enter the index (a test-local
/// `struct Host` must not shadow — or ambiguate — the real one). Name
/// collisions between files degrade to [`TypeShape::Ambiguous`]; the
/// rules then fall back to same-file resolution only, which is how every
/// real `impl Persist` in this workspace is laid out anyway.
#[derive(Debug, Default)]
pub struct ItemIndex {
    types: BTreeMap<String, TypeShape>,
}

impl ItemIndex {
    /// Builds the index over already-parsed files.
    pub fn build<'a>(files: impl IntoIterator<Item = &'a SourceFile>) -> ItemIndex {
        let mut types: BTreeMap<String, TypeShape> = BTreeMap::new();
        let mut insert = |name: &str, shape: TypeShape| {
            types
                .entry(name.to_string())
                .and_modify(|e| *e = TypeShape::Ambiguous)
                .or_insert(shape);
        };
        for f in files {
            for s in &f.items.structs {
                if f.in_test_code(s.line) {
                    continue;
                }
                insert(
                    &s.name,
                    TypeShape::Struct {
                        fields: s.fields.iter().map(|fd| fd.name.clone()).collect(),
                        named: s.named,
                    },
                );
            }
            for e in &f.items.enums {
                if f.in_test_code(e.line) {
                    continue;
                }
                insert(
                    &e.name,
                    TypeShape::Enum {
                        variants: e.variants.iter().map(|v| v.name.clone()).collect(),
                    },
                );
            }
        }
        ItemIndex { types }
    }

    /// The shape registered under `name`, if any.
    pub fn shape(&self, name: &str) -> Option<&TypeShape> {
        self.types.get(name)
    }
}

/// Parses the item skeletons of `f`. Total: any input yields some
/// (possibly empty) item list.
pub fn parse_items(f: &SourceFile) -> Items {
    let mut p = Parser {
        f,
        out: Items::default(),
    };
    let n = f.code.len();
    p.scan_items(0, n);
    p.out
}

struct Parser<'a> {
    f: &'a SourceFile,
    out: Items,
}

impl<'a> Parser<'a> {
    fn is(&self, i: usize, s: &str) -> bool {
        self.f.ct_is(i, s)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.f.ct_punct(i, c)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.f.ct(i).and_then(|t| {
            if t.kind == TokenKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    fn line(&self, i: usize) -> u32 {
        self.f.ct(i).map(|t| t.line).unwrap_or(0)
    }

    /// Index just past the group opened by the delimiter at `open`
    /// (`(`/`[`/`{`), or `end` if unbalanced.
    fn skip_group(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.f.ct(open).map(|t| t.text.as_bytes()[0]) {
            Some(b'(') => ('(', ')'),
            Some(b'[') => ('[', ']'),
            Some(b'{') => ('{', '}'),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.punct(i, o) {
                depth += 1;
            } else if self.punct(i, c) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Index of the `}` matching the `{` at `open` (or `end - 1`).
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let after = self.skip_group(open, end);
        after.saturating_sub(1)
    }

    /// At a `<`: index just past the matching `>`. Arrow-aware (`->` and
    /// `=>` never close a generic) and brace-suspending (a `{ … }` const
    /// generic expression is skipped without angle counting, so shifts
    /// inside it cannot derail the depth).
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if (self.punct(i, '-') || self.punct(i, '=')) && self.punct(i + 1, '>') {
                i += 2;
                continue;
            }
            if self.punct(i, '{') {
                i = self.skip_group(i, end);
                continue;
            }
            if self.punct(i, '<') {
                depth += 1;
            } else if self.punct(i, '>') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Index just past an attribute at `i` (`#[…]` or `#![…]`).
    fn skip_attr(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j, '!') {
            j += 1;
        }
        if self.punct(j, '[') {
            self.skip_group(j, end)
        } else {
            i + 1
        }
    }

    /// Index just past a visibility marker (`pub`, `pub(crate)`, …).
    fn skip_vis(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j, '(') {
            j = self.skip_group(j, end);
        }
        j
    }

    /// Scans `lo..end` at item position, collecting items.
    fn scan_items(&mut self, lo: usize, end: usize) {
        let mut i = lo;
        while i < end {
            if self.punct(i, '#') {
                i = self.skip_attr(i, end);
                continue;
            }
            let Some(word) = self.ident(i) else {
                // Stray delimiter groups (extern blocks, leftover braces):
                // skip balanced so their contents stay invisible.
                if self.punct(i, '{') || self.punct(i, '(') || self.punct(i, '[') {
                    i = self.skip_group(i, end);
                } else {
                    i += 1;
                }
                continue;
            };
            match word {
                "pub" => i = self.skip_vis(i, end),
                "unsafe" | "default" | "async" => i += 1,
                "const" | "static" if self.ident(i + 1) == Some("fn") => i += 1,
                "extern" if self.ident(i + 2) != Some("crate") && !self.punct(i + 1, '{') => {
                    // `extern "C" fn` modifier; `extern crate x;` and
                    // `extern { … }` fall through to the semi/group skips.
                    i += 1;
                    if self.f.ct(i).is_some_and(|t| t.kind == TokenKind::Literal) {
                        i += 1;
                    }
                }
                "use" | "const" | "static" | "type" | "extern" => {
                    i = self.skip_to_semi(i + 1, end);
                }
                "fn" => i = self.skip_fn(i, end),
                "trait" => i = self.skip_braced_item(i, end),
                "macro_rules" => {
                    // macro_rules! name { … } — the template body is opaque.
                    let mut j = i + 1;
                    if self.punct(j, '!') {
                        j += 1;
                    }
                    j += 1; // macro name
                    i = self.skip_group(j, end);
                }
                "mod" => {
                    // mod name { items } | mod name;
                    let mut j = i + 2;
                    while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
                        j += 1;
                    }
                    if self.punct(j, '{') {
                        let close = self.match_brace(j, end);
                        self.scan_items(j + 1, close);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "struct" => i = self.parse_struct(i, end),
                "enum" => i = self.parse_enum(i, end),
                "union" => i = self.skip_braced_item(i, end),
                "impl" => i = self.parse_impl(i, end),
                _ => i += 1,
            }
        }
    }

    /// Skips to just past the next `;` at brace depth 0 (initializer
    /// expressions may contain braced blocks).
    fn skip_to_semi(&self, lo: usize, end: usize) -> usize {
        let mut i = lo;
        while i < end {
            if self.punct(i, '{') {
                i = self.skip_group(i, end);
                continue;
            }
            if self.punct(i, ';') {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Skips a `fn`: signature to the body `{` (or a `;` for bodyless
    /// declarations), then the balanced body.
    fn skip_fn(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
            if self.punct(j, '<') {
                j = self.skip_angles(j, end);
                continue;
            }
            if self.punct(j, '(') {
                j = self.skip_group(j, end);
                continue;
            }
            j += 1;
        }
        if self.punct(j, '{') {
            self.skip_group(j, end)
        } else {
            j + 1
        }
    }

    /// Skips an item of the shape `keyword … { … }` (traits, unions).
    fn skip_braced_item(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
            if self.punct(j, '<') {
                j = self.skip_angles(j, end);
                continue;
            }
            j += 1;
        }
        if self.punct(j, '{') {
            self.skip_group(j, end)
        } else {
            j + 1
        }
    }

    /// Parses `struct Name …`, returning the index just past the item.
    fn parse_struct(&mut self, i: usize, end: usize) -> usize {
        let line = self.line(i);
        let Some(name) = self.ident(i + 1) else {
            return i + 1;
        };
        let name = name.to_string();
        let mut j = i + 2;
        if self.punct(j, '<') {
            j = self.skip_angles(j, end);
        }
        // Unit: `struct S;`
        if self.punct(j, ';') {
            self.out.structs.push(StructDef {
                name,
                line,
                fields: Vec::new(),
                named: false,
            });
            return j + 1;
        }
        // Tuple: `struct S(…);` (possibly with a where clause after).
        if self.punct(j, '(') {
            let after = self.skip_group(j, end);
            self.out.structs.push(StructDef {
                name,
                line,
                fields: Vec::new(),
                named: false,
            });
            return self.skip_to_semi(after, end);
        }
        // Braced, possibly after a where clause.
        while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
            if self.punct(j, '<') {
                j = self.skip_angles(j, end);
                continue;
            }
            j += 1;
        }
        if !self.punct(j, '{') {
            return j + 1;
        }
        let close = self.match_brace(j, end);
        let fields = self.parse_fields(j + 1, close);
        self.out.structs.push(StructDef {
            name,
            line,
            fields,
            named: true,
        });
        close + 1
    }

    /// Named fields between a struct body's braces.
    fn parse_fields(&self, lo: usize, close: usize) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        let mut k = lo;
        while k < close {
            // Attributes and visibility before the name.
            if self.punct(k, '#') {
                k = self.skip_attr(k, close);
                continue;
            }
            if self.is(k, "pub") {
                k = self.skip_vis(k, close);
                continue;
            }
            if let Some(name) = self.ident(k) {
                // `name :` introduces a field; `name ::` is a path (not a
                // declaration — malformed body, just resync).
                if self.punct(k + 1, ':') && !self.punct(k + 2, ':') {
                    fields.push(FieldDef {
                        name: name.to_string(),
                        line: self.line(k),
                    });
                    k = self.skip_to_comma(k + 2, close);
                    continue;
                }
            }
            k = self.skip_to_comma(k, close);
        }
        fields
    }

    /// Skips a field's type (or a variant's tail) to just past the next
    /// `,` at depth 0. Angle depth is tracked arrow-aware so the commas
    /// inside `HashMap<K, V>` or `fn(A, B) -> C` never split a field.
    fn skip_to_comma(&self, lo: usize, close: usize) -> usize {
        let mut angle = 0usize;
        let mut k = lo;
        while k < close {
            if (self.punct(k, '-') || self.punct(k, '=')) && self.punct(k + 1, '>') {
                k += 2;
                continue;
            }
            if self.punct(k, '(') || self.punct(k, '[') || self.punct(k, '{') {
                k = self.skip_group(k, close);
                continue;
            }
            if self.punct(k, '<') {
                angle += 1;
            } else if self.punct(k, '>') {
                angle = angle.saturating_sub(1);
            } else if self.punct(k, ',') && angle == 0 {
                return k + 1;
            }
            k += 1;
        }
        close
    }

    /// Parses `enum Name { … }`, returning the index just past the item.
    fn parse_enum(&mut self, i: usize, end: usize) -> usize {
        let line = self.line(i);
        let Some(name) = self.ident(i + 1) else {
            return i + 1;
        };
        let name = name.to_string();
        let mut j = i + 2;
        while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
            if self.punct(j, '<') {
                j = self.skip_angles(j, end);
                continue;
            }
            j += 1;
        }
        if !self.punct(j, '{') {
            return j + 1;
        }
        let close = self.match_brace(j, end);
        let mut variants = Vec::new();
        let mut k = j + 1;
        while k < close {
            if self.punct(k, '#') {
                k = self.skip_attr(k, close);
                continue;
            }
            if let Some(v) = self.ident(k) {
                variants.push(VariantDef {
                    name: v.to_string(),
                    line: self.line(k),
                });
                k += 1;
                // Payload (tuple or struct variant), then discriminant /
                // separator.
                if self.punct(k, '(') || self.punct(k, '{') {
                    k = self.skip_group(k, close);
                }
                k = self.skip_to_comma(k, close);
                continue;
            }
            k = self.skip_to_comma(k, close);
        }
        self.out.enums.push(EnumDef {
            name,
            line,
            variants,
        });
        close + 1
    }

    /// Collects a type/trait path starting at `j`: skips leading `&`,
    /// `mut`, `dyn`, lifetimes and `!` (negative impls), then walks
    /// `seg::seg::…` remembering the last segment and skipping generic
    /// argument lists. Returns `(head identifier, index just past)`.
    fn collect_path(&self, j: usize, end: usize) -> (Option<String>, usize) {
        let mut k = j;
        loop {
            if self.punct(k, '&') || self.punct(k, '!') {
                k += 1;
                continue;
            }
            if self.f.ct(k).is_some_and(|t| t.kind == TokenKind::Lifetime) {
                k += 1;
                continue;
            }
            if self.is(k, "mut") || self.is(k, "dyn") {
                k += 1;
                continue;
            }
            break;
        }
        let mut last: Option<String> = None;
        loop {
            match self.ident(k) {
                Some(seg) if seg != "for" && seg != "where" => {
                    last = Some(seg.to_string());
                    k += 1;
                }
                _ => break,
            }
            if self.punct(k, '<') {
                k = self.skip_angles(k, end);
            }
            if self.punct(k, ':') && self.punct(k + 1, ':') {
                k += 2;
            } else {
                break;
            }
        }
        (last, k)
    }

    /// Parses an `impl` block, returning the index just past it.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let line = self.line(i);
        let mut j = i + 1;
        if self.punct(j, '<') {
            j = self.skip_angles(j, end);
        }
        let (first_path, after_first) = self.collect_path(j, end);
        j = after_first;
        let (trait_name, type_name) = if self.is(j, "for") {
            let (ty, after_ty) = self.collect_path(j + 1, end);
            j = after_ty;
            (first_path, ty)
        } else {
            (None, first_path)
        };
        // Skip any where clause to the body brace.
        while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
            if self.punct(j, '<') {
                j = self.skip_angles(j, end);
                continue;
            }
            if self.punct(j, '(') {
                j = self.skip_group(j, end);
                continue;
            }
            j += 1;
        }
        if !self.punct(j, '{') {
            return j + 1;
        }
        let close = self.match_brace(j, end);
        let methods = self.parse_methods(j + 1, close);
        self.out.impls.push(ImplDef {
            trait_name,
            type_name,
            line,
            body: (j, close),
            methods,
        });
        close + 1
    }

    /// Methods declared directly inside an impl body.
    fn parse_methods(&self, lo: usize, close: usize) -> Vec<MethodDef> {
        let mut methods = Vec::new();
        let mut k = lo;
        while k < close {
            if self.punct(k, '#') {
                k = self.skip_attr(k, close);
                continue;
            }
            if self.is(k, "fn") {
                // Only `fn name` declares a method; `fn(...)` is a type.
                let Some(name) = self.ident(k + 1) else {
                    k += 1;
                    continue;
                };
                let fn_line = self.line(k);
                let mut b = k + 2;
                while b < close && !self.punct(b, '{') && !self.punct(b, ';') {
                    if self.punct(b, '<') {
                        b = self.skip_angles(b, close);
                        continue;
                    }
                    if self.punct(b, '(') {
                        b = self.skip_group(b, close);
                        continue;
                    }
                    b += 1;
                }
                if self.punct(b, '{') {
                    let body_close = self.match_brace(b, close);
                    methods.push(MethodDef {
                        name: name.to_string(),
                        line: fn_line,
                        body: (b, body_close),
                    });
                    k = body_close + 1;
                } else {
                    k = b + 1;
                }
                continue;
            }
            if self.punct(k, '{') {
                k = self.skip_group(k, close);
                continue;
            }
            k += 1;
        }
        methods
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Items {
        let f = SourceFile::parse("crates/eards-sim/src/x.rs", src);
        parse_items(&f)
    }

    #[test]
    fn struct_fields_with_nested_generics() {
        let it = items(
            "pub struct S {\n\
             \x20   pub a: HashMap<u32, Vec<(u8, u8)>>,\n\
             \x20   b: fn(u32, u64) -> BTreeMap<u32, u32>,\n\
             \x20   #[serde(skip)]\n\
             \x20   pub(crate) c: [u8; 4],\n\
             }\n",
        );
        let s = it.struct_def("S").expect("parsed");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"], "generic commas never split fields");
        assert_eq!(s.fields[0].line, 2);
        assert_eq!(s.fields[2].line, 5);
        assert!(s.named);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_named_fields() {
        let it = items("pub struct Id(pub u64);\nstruct Marker;\n");
        assert!(!it.struct_def("Id").unwrap().named);
        assert!(!it.struct_def("Marker").unwrap().named);
        assert!(it.struct_def("Id").unwrap().fields.is_empty());
    }

    #[test]
    fn enum_variants_with_payloads() {
        let it = items(
            "enum PowerState {\n\
             \x20   Off,\n\
             \x20   Booting { ready_at: SimTime },\n\
             \x20   On,\n\
             \x20   Pair(u32, u32),\n\
             }\n",
        );
        let e = it.enum_def("PowerState").unwrap();
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            ["Off", "Booting", "On", "Pair"],
            "payload fields are not variants"
        );
        assert_eq!(e.variants[1].line, 3);
    }

    #[test]
    fn impls_capture_trait_type_and_methods() {
        let it = items(
            "impl Persist for HostSpec {\n\
             \x20   fn persist(&self, w: &mut Writer) { self.id.persist(w); }\n\
             \x20   fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {\n\
             \x20       Ok(HostSpec { id: HostId::restore(r)? })\n\
             \x20   }\n\
             }\n\
             impl HostSpec {\n\
             \x20   pub fn new() -> Self { todo!() }\n\
             }\n",
        );
        assert_eq!(it.impls.len(), 2);
        let p = &it.impls[0];
        assert_eq!(p.trait_name.as_deref(), Some("Persist"));
        assert_eq!(p.type_name.as_deref(), Some("HostSpec"));
        assert_eq!(p.methods.len(), 2);
        assert_eq!(p.method("persist").unwrap().line, 2);
        assert!(p.method("restore").is_some());
        let inh = &it.impls[1];
        assert_eq!(inh.trait_name, None);
        assert_eq!(inh.type_name.as_deref(), Some("HostSpec"));
    }

    #[test]
    fn generic_impls_resolve_head_identifiers() {
        let it = items(
            "impl<T: Persist, const N: usize> Persist for Wrapper<T, N> {\n\
             \x20   fn persist(&self, w: &mut Writer) {}\n\
             }\n\
             impl<F: Fn(u32) -> u64> Runner<F> {\n\
             \x20   fn go(&self) {}\n\
             }\n\
             impl Persist for crate::shard::ShardMap {\n\
             \x20   fn persist(&self, w: &mut Writer) {}\n\
             }\n",
        );
        assert_eq!(it.impls[0].trait_name.as_deref(), Some("Persist"));
        assert_eq!(it.impls[0].type_name.as_deref(), Some("Wrapper"));
        assert_eq!(
            it.impls[1].type_name.as_deref(),
            Some("Runner"),
            "Fn(..) -> arrow inside generics must not derail the parse"
        );
        assert_eq!(
            it.impls[2].type_name.as_deref(),
            Some("ShardMap"),
            "paths resolve to their last segment"
        );
    }

    #[test]
    fn impl_trait_in_fn_signatures_is_not_an_impl_block() {
        let it = items(
            "fn make() -> impl Iterator<Item = u32> {\n\
             \x20   (0..3).map(|x| x + 1)\n\
             }\n\
             struct After { x: u32 }\n",
        );
        assert!(it.impls.is_empty(), "return-position impl Trait skipped");
        assert!(it.struct_def("After").is_some(), "parser resyncs after fn");
    }

    #[test]
    fn macro_bodies_are_opaque() {
        let it = items(
            "macro_rules! scalar {\n\
             \x20   ($t:ty) => {\n\
             \x20       impl Persist for $t { fn persist(&self, w: &mut Writer) {} }\n\
             \x20   };\n\
             }\n\
             struct Real { x: u32 }\n",
        );
        assert!(it.impls.is_empty(), "macro template impls are invisible");
        assert!(it.struct_def("Real").is_some());
    }

    #[test]
    fn mod_bodies_are_descended_into() {
        let it = items(
            "mod inner {\n\
             \x20   pub struct Nested { pub a: u32 }\n\
             \x20   impl Persist for Nested { fn persist(&self) {} }\n\
             }\n",
        );
        assert!(it.struct_def("Nested").is_some());
        assert_eq!(it.impls.len(), 1);
    }

    #[test]
    fn fn_local_items_are_invisible() {
        let it = items(
            "fn f() {\n\
             \x20   struct Local { a: u32 }\n\
             \x20   let x = Local { a: 1 };\n\
             }\n\
             struct Global { b: u32 }\n",
        );
        assert!(it.struct_def("Local").is_none());
        assert!(it.struct_def("Global").is_some());
    }

    #[test]
    fn raw_strings_inside_bodies_do_not_confuse_structure() {
        let it = items(
            "impl Persist for S {\n\
             \x20   fn persist(&self, w: &mut Writer) {\n\
             \x20       let s = r#\"struct Fake { nope: u32 } \" quote\"#;\n\
             \x20       w.put_str(s);\n\
             \x20   }\n\
             }\n\
             struct S { real: u32 }\n",
        );
        assert!(it.struct_def("Fake").is_none(), "string content is inert");
        assert!(it.struct_def("S").is_some());
        assert_eq!(it.impls.len(), 1);
    }

    #[test]
    fn where_clauses_and_unbalanced_input_are_tolerated() {
        let it = items(
            "struct W<T> where T: Into<u64> { t: T }\n\
             impl<T> Persist for W<T> where T: Persist { fn persist(&self) {} }\n",
        );
        let s = it.struct_def("W").unwrap();
        assert_eq!(s.fields.len(), 1);
        assert_eq!(it.impls[0].type_name.as_deref(), Some("W"));
        // Totality: truncated junk parses to something, never panics.
        items("struct Broken { a: Vec<");
        items("impl Persist for");
        items("enum E { A(");
    }

    #[test]
    fn discriminants_do_not_hide_following_variants() {
        let it = items("enum E { A = 1, B = 2, C }\n");
        let names: Vec<&str> = it
            .enum_def("E")
            .unwrap()
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
