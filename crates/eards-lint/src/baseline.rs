//! The checked-in baseline: grandfathered findings, so the lint gate can
//! be blocking from day one.
//!
//! `lint-baseline.toml` records, per `(rule, path)`, how many findings
//! existed when the gate was introduced. A run fails only when some
//! `(rule, path)` group *exceeds* its grandfathered count — i.e. new
//! findings fail, old ones are tolerated until their file is next
//! touched. Shrinking a group below its baseline prints a nudge to
//! refresh (with `eards lint --write-baseline`) so the ratchet only ever
//! tightens. `S001` (malformed suppression) is never baselined: a broken
//! suppression marker is always new.
//!
//! The format is a deliberately tiny TOML subset (`[[allow]]` tables with
//! `rule`/`path`/`count` keys), parsed here by hand like the rest of the
//! workspace's vendored-dependency surface.

use std::collections::BTreeMap;

use crate::rules::{Finding, RuleId};

/// Grandfathered counts per `(rule, path)`.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(RuleId, String), usize>,
}

/// The result of filtering findings through a baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// How many findings the baseline absorbed.
    pub grandfathered: usize,
    /// Groups whose current count undercuts the baseline (refresh nudge),
    /// rendered as `RULE path (baseline N, now M)`.
    pub stale: Vec<String>,
}

impl Baseline {
    /// Parses the baseline file. Unknown keys, unknown rules, or
    /// structural noise are hard errors: a typo in the gate's input must
    /// not silently widen it.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<(Option<RuleId>, Option<String>, Option<usize>)> = None;
        let mut flush = |cur: &mut Option<(Option<RuleId>, Option<String>, Option<usize>)>|
         -> Result<(), String> {
            if let Some((rule, path, count)) = cur.take() {
                match (rule, path, count) {
                    (Some(r), Some(p), Some(c)) => {
                        if !r.baselineable() {
                            return Err(format!("{} findings cannot be baselined", r.name()));
                        }
                        entries.insert((r, p), c);
                        Ok(())
                    }
                    _ => Err("incomplete [[allow]] entry (need rule, path, count)".into()),
                }
            } else {
                Ok(())
            }
        };
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("lint-baseline.toml:{}: {}", no + 1, msg);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                flush(&mut cur).map_err(|e| err(&e))?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = value` or `[[allow]]`"));
            };
            let Some(entry) = cur.as_mut() else {
                return Err(err("key outside an [[allow]] entry"));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "rule" => {
                    let name = value.trim_matches('"');
                    entry.0 = Some(
                        RuleId::from_name(name)
                            .ok_or_else(|| err(&format!("unknown rule {name:?}")))?,
                    );
                }
                "path" => entry.1 = Some(value.trim_matches('"').to_string()),
                "count" => {
                    entry.2 = Some(value.parse().map_err(|_| err("count must be an integer"))?);
                }
                other => return Err(err(&format!("unknown key {other:?}"))),
            }
        }
        flush(&mut cur)?;
        Ok(Baseline { entries })
    }

    /// Renders a baseline grandfathering exactly `findings` (the
    /// suppression-hygiene rules S001/S002 excluded — never tolerated).
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(RuleId, &str), usize> = BTreeMap::new();
        for f in findings {
            if !f.rule.baselineable() {
                continue;
            }
            *counts.entry((f.rule, f.path.as_str())).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# eards lint baseline — findings grandfathered when the gate was introduced.\n\
             # A (rule, path) group may not grow beyond its count; new findings fail.\n\
             # Regenerate (only to *shrink* it) with: eards lint --write-baseline\n",
        );
        for ((rule, path), count) in &counts {
            out.push_str(&format!(
                "\n[[allow]]\nrule = \"{}\"\npath = \"{}\"\ncount = {}\n",
                rule.name(),
                path,
                count
            ));
        }
        out
    }

    /// Splits `findings` into new vs. grandfathered.
    ///
    /// Within a `(rule, path)` group that *exceeds* its baseline, every
    /// finding is reported — line numbers have usually shifted, so there
    /// is no honest way to single out "the new one", and showing the whole
    /// group is what lets the author pick which to fix or re-baseline.
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineOutcome {
        let mut groups: BTreeMap<(RuleId, String), Vec<Finding>> = BTreeMap::new();
        for f in findings {
            groups.entry((f.rule, f.path.clone())).or_default().push(f);
        }
        let mut out = BaselineOutcome::default();
        let mut seen_keys: Vec<(RuleId, String)> = Vec::new();
        for (key, group) in groups {
            let allowed = if !key.0.baselineable() {
                0
            } else {
                self.entries.get(&key).copied().unwrap_or(0)
            };
            if group.len() > allowed {
                out.new.extend(group);
            } else {
                if group.len() < allowed {
                    out.stale.push(format!(
                        "{} {} (baseline {}, now {})",
                        key.0.name(),
                        key.1,
                        allowed,
                        group.len()
                    ));
                }
                out.grandfathered += group.len();
            }
            seen_keys.push(key);
        }
        // Entries whose (rule, path) produced no findings at all this run
        // never enter the group loop — surface them as stale too.
        for ((rule, path), &count) in &self.entries {
            if count > 0 && !seen_keys.iter().any(|(r, p)| r == rule && p == path) {
                out.stale.push(format!(
                    "{} {} (baseline {}, now 0)",
                    rule.name(),
                    path,
                    count
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn round_trip() {
        let fs = vec![
            finding(RuleId::P001, "crates/a/src/x.rs", 3),
            finding(RuleId::P001, "crates/a/src/x.rs", 9),
            finding(RuleId::C001, "crates/b/src/y.rs", 1),
        ];
        let text = Baseline::render(&fs);
        let b = Baseline::parse(&text).unwrap();
        let outcome = b.apply(fs);
        assert!(outcome.new.is_empty());
        assert_eq!(outcome.grandfathered, 3);
        assert!(outcome.stale.is_empty());
    }

    #[test]
    fn growth_fails_shrink_nudges() {
        let old = vec![
            finding(RuleId::P001, "crates/a/src/x.rs", 3),
            finding(RuleId::P001, "crates/a/src/x.rs", 9),
        ];
        let b = Baseline::parse(&Baseline::render(&old)).unwrap();
        // One more P001 in the same file: the whole group is re-reported.
        let grown = vec![
            finding(RuleId::P001, "crates/a/src/x.rs", 3),
            finding(RuleId::P001, "crates/a/src/x.rs", 9),
            finding(RuleId::P001, "crates/a/src/x.rs", 20),
        ];
        assert_eq!(b.apply(grown).new.len(), 3);
        // One fewer: passes, but nudges.
        let shrunk = vec![finding(RuleId::P001, "crates/a/src/x.rs", 3)];
        let outcome = b.apply(shrunk);
        assert!(outcome.new.is_empty());
        assert_eq!(outcome.stale.len(), 1);
    }

    #[test]
    fn fully_fixed_group_is_reported_stale() {
        let b = Baseline::parse(
            "[[allow]]\nrule = \"P001\"\npath = \"crates/a/src/x.rs\"\ncount = 2\n",
        )
        .unwrap();
        let outcome = b.apply(Vec::new());
        assert!(outcome.new.is_empty());
        assert_eq!(
            outcome.stale,
            vec!["P001 crates/a/src/x.rs (baseline 2, now 0)"]
        );
    }

    #[test]
    fn suppression_hygiene_rules_are_never_baselined() {
        for rule in [RuleId::S001, RuleId::S002] {
            let toml = format!(
                "[[allow]]\nrule = \"{}\"\npath = \"x.rs\"\ncount = 1\n",
                rule.name()
            );
            assert!(Baseline::parse(&toml).is_err(), "{rule:?} must not parse");
            let b = Baseline::default();
            let out = b.apply(vec![finding(rule, "x.rs", 1)]);
            assert_eq!(out.new.len(), 1, "{rule:?} is always new");
            // And render() refuses to write them.
            assert!(!Baseline::render(&[finding(rule, "x.rs", 1)]).contains(rule.name()));
        }
    }

    #[test]
    fn parse_rejects_noise() {
        assert!(Baseline::parse("count = 3\n").is_err(), "key outside entry");
        assert!(
            Baseline::parse("[[allow]]\nrule = \"P001\"\n").is_err(),
            "incomplete entry"
        );
        assert!(
            Baseline::parse("[[allow]]\nrule = \"Z999\"\npath = \"x\"\ncount = 1\n").is_err(),
            "unknown rule"
        );
        assert!(
            Baseline::parse("[[allow]]\nrule = \"P001\"\npath = \"x\"\ncount = one\n").is_err(),
            "bad count"
        );
    }
}
