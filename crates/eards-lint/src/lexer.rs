//! A hand-rolled Rust lexer: the token stream the rule engine walks.
//!
//! Deliberately *not* a parser — the rules in [`crate::rules`] are
//! token-pattern matchers, which is exactly the level of analysis the
//! determinism lints need (clippy owns the type-aware layer; see
//! `clippy.toml`). The lexer therefore only has to get the *lexical*
//! structure of Rust right, and that part it gets fully right:
//!
//! * line comments, nested block comments (`/* /* */ */`), doc comments;
//! * string literals with escapes, raw strings with any `#` depth
//!   (`r"…"`, `r#"…"#`, `br##"…"##`), byte strings, C strings;
//! * char literals vs. lifetimes (`'a'` vs `'a`);
//! * numbers with underscores, type suffixes, and float exponents;
//! * identifiers (including raw `r#ident`) and one-character punctuation.
//!
//! Every token carries its 1-based line number so diagnostics point at
//! real source lines, and comments are kept as tokens so the suppression
//! scanner ([`crate::source`]) can read `lint:allow(...)` markers.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e9`, `1_f64`).
    Float,
    /// String-ish literal (`"…"`, `r#"…"#`, `b"…"`, `'c'`).
    Literal,
    /// `// …` or `//! …` or `/// …` up to end of line.
    LineComment,
    /// `/* … */`, nested arbitrarily.
    BlockComment,
    /// A single punctuation character (`.`, `:`, `(`, …).
    Punct,
}

/// One token: kind, the source text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source slice.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// True for comments (skipped by rule matchers).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Unterminated literals/comments are tolerated
/// (the remainder becomes one token): the linter must never panic on the
/// code it audits.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advances until after the first occurrence of `needle` (or EOF).
    fn skip_past(&mut self, needle: u8) {
        while let Some(b) = self.peek() {
            self.bump();
            if b == needle {
                return;
            }
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek_at(1) == Some(b'/') => {
                    self.skip_past(b'\n');
                    // Strip the trailing newline from the comment text.
                    let end = self.src[start..self.pos].trim_end_matches('\n');
                    self.out.push(Token {
                        kind: TokenKind::LineComment,
                        text: end.to_string(),
                        line,
                    });
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'r' | b'b' | b'c' if self.raw_string_ahead() => {
                    self.raw_string();
                    self.push(TokenKind::Literal, start, line);
                }
                b'b' if self.peek_at(1) == Some(b'\'') => {
                    self.bump(); // b
                    self.char_literal();
                    self.push(TokenKind::Literal, start, line);
                }
                b'b' | b'c' if self.peek_at(1) == Some(b'"') => {
                    self.bump(); // b / c
                    self.string_literal();
                    self.push(TokenKind::Literal, start, line);
                }
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Literal, start, line);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        self.ident_tail();
                        self.push(TokenKind::Lifetime, start, line);
                    } else {
                        self.char_literal();
                        self.push(TokenKind::Literal, start, line);
                    }
                }
                b'0'..=b'9' => {
                    let kind = self.number();
                    self.push(kind, start, line);
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    // Raw identifier r#foo: the `r` case above only fires
                    // for raw *strings* (r" / r#"), so r#ident lands here
                    // only via the plain-ident path… handle it explicitly.
                    if (b == b'r' || b == b'b') && self.peek_at(1) == Some(b'#') {
                        let after = self.peek_at(2);
                        if matches!(after, Some(b'_' | b'a'..=b'z' | b'A'..=b'Z')) {
                            self.bump(); // r
                            self.bump(); // #
                        }
                    }
                    self.ident_tail();
                    self.push(TokenKind::Ident, start, line);
                }
                _ if b < 0x80 => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
                _ => {
                    // Multi-byte UTF-8 scalar (only legal in idents by now,
                    // but keep the lexer total): consume the whole scalar.
                    let ch_len = self.src[self.pos..]
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    for _ in 0..ch_len {
                        self.bump();
                    }
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    /// At `/*`: consumes the comment, honouring nesting.
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => return, // unterminated: tolerate
            }
        }
    }

    /// True if the cursor sits on a raw-string introducer: `r"`, `r#…#"`,
    /// `br"`, `br#`, `cr"`, `cr#`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        if matches!(self.peek(), Some(b'b' | b'c')) && self.peek_at(1) == Some(b'r') {
            i = 2;
        } else if self.peek() == Some(b'r') {
            i = 1;
        }
        if i == 0 {
            return false;
        }
        let mut j = i;
        while self.peek_at(j) == Some(b'#') {
            j += 1;
        }
        // `r#ident` has no quote after the hashes — not a string.
        self.peek_at(j) == Some(b'"') && (j > i || self.peek_at(i) == Some(b'"'))
    }

    /// Consumes `r##"…"##` with any hash depth (escapes are inert).
    fn raw_string(&mut self) {
        while matches!(self.peek(), Some(b'b' | b'c' | b'r')) {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None => return, // unterminated: tolerate
                Some(b'"') => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consumes `"…"` honouring `\"` and `\\` escapes.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(b) = self.peek() {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek().is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// After a `'`: lifetime iff an ident char follows and the char after
    /// *that* is not a closing quote (`'a'` is a char literal, `'a` a
    /// lifetime; `'\n'` is always a char literal).
    fn lifetime_ahead(&self) -> bool {
        match self.peek_at(1) {
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z') => self.peek_at(2) != Some(b'\''),
            _ => false,
        }
    }

    /// Consumes `'x'`, `'\n'`, `'\u{1F600}'`.
    fn char_literal(&mut self) {
        self.bump(); // opening quote
        match self.peek() {
            Some(b'\\') => {
                self.bump();
                if self.peek().is_some() {
                    self.bump();
                }
                // \u{…}: run to the closing brace.
                if self.bytes.get(self.pos.wrapping_sub(1)) == Some(&b'u')
                    && self.peek() == Some(b'{')
                {
                    self.skip_past(b'}');
                }
            }
            Some(_) => {
                // One UTF-8 scalar.
                let ch_len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map(char::len_utf8)
                    .unwrap_or(1);
                for _ in 0..ch_len {
                    self.bump();
                }
            }
            None => return,
        }
        if self.peek() == Some(b'\'') {
            self.bump();
        }
    }

    fn ident_tail(&mut self) {
        while matches!(
            self.peek(),
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
        ) {
            self.bump();
        }
    }

    /// Consumes a numeric literal; returns `Int` or `Float`.
    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x' | b'o' | b'b')) {
            self.bump();
            self.bump();
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_')
            ) {
                self.bump();
            }
        } else {
            while matches!(self.peek(), Some(b'0'..=b'9' | b'_')) {
                self.bump();
            }
            // Fractional part — but not `1..2` (range) or `1.method()`.
            if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b'0'..=b'9')) {
                float = true;
                self.bump();
                while matches!(self.peek(), Some(b'0'..=b'9' | b'_')) {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(), Some(b'e' | b'E')) {
                let sign = usize::from(matches!(self.peek_at(1), Some(b'+' | b'-')));
                if matches!(self.peek_at(1 + sign), Some(b'0'..=b'9')) {
                    float = true;
                    self.bump();
                    if sign == 1 {
                        self.bump();
                    }
                    while matches!(self.peek(), Some(b'0'..=b'9' | b'_')) {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u64`, `f64`, `usize`).
        let suffix_start = self.pos;
        while matches!(
            self.peek(),
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
        ) {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with('f') {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = a.b();");
        let texts: Vec<&str> = ts.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "b", "(", ")", ";"]);
        assert_eq!(ts[0].0, TokenKind::Ident);
        assert_eq!(ts[2].0, TokenKind::Punct);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // A raw string containing what would otherwise be real tokens.
        let ts = kinds(r####"let s = r#"partial_cmp().unwrap() " quote"#; x"####);
        assert_eq!(
            ts[3],
            (
                TokenKind::Literal,
                r###"r#"partial_cmp().unwrap() " quote"#"###.to_string()
            )
        );
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Ident && s == "x"));
        // No identifier token leaked out of the literal.
        assert!(!ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "partial_cmp"));
    }

    #[test]
    fn raw_strings_with_deep_hashes_and_byte_prefix() {
        let src = r####"br##"a "# b"## ident"####;
        let ts = kinds(src);
        assert_eq!(ts[0].0, TokenKind::Literal);
        assert_eq!(ts[0].1, r###"br##"a "# b"##"###);
        assert_eq!(ts[1], (TokenKind::Ident, "ident".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[1].0, TokenKind::BlockComment);
        assert!(ts[1].1.contains("inner"));
        assert_eq!(ts[2], (TokenKind::Ident, "b".to_string()));
    }

    #[test]
    fn line_comments_keep_text_and_lines() {
        let ts = lex("x\n// lint:allow(D001): reason\ny");
        assert_eq!(ts[1].kind, TokenKind::LineComment);
        assert_eq!(ts[1].text, "// lint:allow(D001): reason");
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("&'a str; 'x'; '\\n'; b'z'");
        assert_eq!(ts[1], (TokenKind::Lifetime, "'a".to_string()));
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Literal && s == "'x'"));
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Literal && s == "'\\n'"));
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Literal && s == "b'z'"));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let ts = kinds("1 1.5 2e9 0xFF 1_000u64 1f64 1..2");
        assert_eq!(ts[0].0, TokenKind::Int);
        assert_eq!(ts[1].0, TokenKind::Float);
        assert_eq!(ts[2].0, TokenKind::Float);
        assert_eq!(ts[3].0, TokenKind::Int);
        assert_eq!(ts[4].0, TokenKind::Int);
        assert_eq!(ts[5].0, TokenKind::Float);
        // `1..2` lexes as Int, two dots, Int — not a malformed float.
        assert_eq!(ts[6].0, TokenKind::Int);
        assert_eq!(ts[7].0, TokenKind::Punct);
        assert_eq!(ts[8].0, TokenKind::Punct);
        assert_eq!(ts[9].0, TokenKind::Int);
    }

    #[test]
    fn strings_with_escapes() {
        let ts = kinds(r#"let s = "a \" b \\"; t"#);
        assert_eq!(ts[3].0, TokenKind::Literal);
        assert_eq!(ts[3].1, r#""a \" b \\""#);
        assert_eq!(ts[5], (TokenKind::Ident, "t".to_string()));
    }

    #[test]
    fn raw_identifiers() {
        let ts = kinds("r#type r#match plain");
        assert_eq!(ts[0], (TokenKind::Ident, "r#type".to_string()));
        assert_eq!(ts[1], (TokenKind::Ident, "r#match".to_string()));
        assert_eq!(ts[2], (TokenKind::Ident, "plain".to_string()));
    }

    #[test]
    fn shift_operators_are_single_char_puncts() {
        // The item parser's angle-depth tracker counts `<`/`>` one
        // character at a time, so `>>` closing two generic lists (or a
        // shift in a const expression) must never lex as one token.
        for src in [
            "Vec<Vec<u32>>",
            "a >> b",
            "a << b",
            "HashMap<u32, Vec<Vec<u8>>>",
        ] {
            let ts = kinds(src);
            assert!(
                ts.iter()
                    .filter(|(k, _)| *k == TokenKind::Punct)
                    .all(|(_, s)| s.len() == 1),
                "{src:?} must lex punctuation one char at a time: {ts:?}"
            );
        }
    }

    #[test]
    fn raw_strings_spanning_lines_keep_line_numbers() {
        let ts = lex("a\nr#\"x\ny \" z\"# b");
        let b = ts.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3, "tokens after a multiline raw string");
        let lit = ts.iter().find(|t| t.kind == TokenKind::Literal).unwrap();
        assert_eq!(lit.line, 2, "the literal starts on its opening line");
    }

    #[test]
    fn raw_string_hash_runs_shorter_than_the_delimiter_stay_inside() {
        // `"#` and `"` inside an `##`-delimited raw string are content;
        // only `"##` closes. The lexer must resume counting from scratch
        // after each shorter run.
        let src = r####"r##"a "# b " c "## after"####;
        let ts = kinds(src);
        assert_eq!(ts[0].0, TokenKind::Literal);
        assert_eq!(ts[0].1, r####"r##"a "# b " c "##"####);
        assert_eq!(ts[1], (TokenKind::Ident, "after".to_string()));
    }

    #[test]
    fn unterminated_input_is_total() {
        // Never panic, whatever the input.
        lex("/* unterminated");
        lex("\"unterminated");
        lex("r#\"unterminated");
        lex("'");
        lex("b'");
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"x\ny\" c";
        let ts = lex(src);
        let b = ts.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
        let c = ts.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 5);
    }
}
