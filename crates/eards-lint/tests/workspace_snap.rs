//! SNAP001 against a *real* workspace struct, not a fixture: lint the
//! actual `eards-model/src/host.rs` source, then lint a copy with one
//! field's codec write deleted and assert the rule names exactly that
//! field at its declaration line. This is the acceptance check that the
//! semantic pass protects the code it was built for, byte for byte.

use eards_lint::{lint_source, RuleId};

const HOST_RS: &str = include_str!("../../eards-model/src/host.rs");
const HOST_PATH: &str = "crates/eards-model/src/host.rs";

/// The line the `reliability` field is declared on, located dynamically
/// so the test survives unrelated edits to the file.
fn reliability_decl_line() -> u32 {
    HOST_RS
        .lines()
        .position(|l| l.trim_start().starts_with("pub reliability:"))
        .map(|i| i as u32 + 1)
        .expect("HostSpec::reliability is declared in host.rs")
}

#[test]
fn real_host_codecs_are_clean() {
    let findings = lint_source(HOST_PATH, HOST_RS);
    let snap: Vec<_> = findings
        .iter()
        .filter(|f| matches!(f.rule, RuleId::SNAP001 | RuleId::SNAP002))
        .collect();
    assert!(
        snap.is_empty(),
        "every Persist impl in host.rs covers its fields/variants: {snap:?}"
    );
}

#[test]
fn dropping_a_real_field_write_is_caught_at_the_field_line() {
    let write = "w.put_f64(self.reliability);";
    assert!(HOST_RS.contains(write), "the codec write under test exists");
    // Blank the write out in place (line numbers stay stable).
    let broken = HOST_RS.replace(write, "");
    let findings = lint_source(HOST_PATH, &broken);
    let snap: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::SNAP001)
        .collect();
    assert_eq!(snap.len(), 1, "exactly the dropped field: {snap:?}");
    assert!(
        snap[0].message.contains("`reliability`"),
        "names the field: {}",
        snap[0].message
    );
    assert!(
        snap[0].message.contains("restored but never persisted"),
        "names the missing direction: {}",
        snap[0].message
    );
    assert_eq!(
        snap[0].line,
        reliability_decl_line(),
        "anchored on the declaration"
    );
}

#[test]
fn dropping_a_real_restore_read_is_caught_too() {
    let read = "reliability: r.get_f64()?,";
    assert!(HOST_RS.contains(read), "the codec read under test exists");
    let broken = HOST_RS.replace(read, "");
    let findings = lint_source(HOST_PATH, &broken);
    let snap: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::SNAP001)
        .collect();
    assert_eq!(snap.len(), 1, "exactly the dropped field: {snap:?}");
    assert!(
        snap[0].message.contains("persisted but never restored"),
        "names the missing direction: {}",
        snap[0].message
    );
}
