//! Fixture self-tests: one positive and one negative file per rule,
//! asserting *exact* rule IDs, paths, and line numbers.
//!
//! The fixtures live under `fixtures/` (which the workspace walker skips
//! — they are supposed to contain findings) and are linted here under
//! *virtual* workspace paths, so crate-scoped rules (sim-affecting,
//! clock-allowlisted) see the crate they are meant to test.

use eards_lint::{lint_source, Finding, RuleId};

/// Lints fixture `text` as if it lived at `path`, returning `(rule, line)`
/// pairs (already sorted by line, then rule).
fn run(path: &str, text: &str) -> Vec<(RuleId, u32)> {
    let findings = lint_source(path, text);
    for f in &findings {
        assert_eq!(f.path, path, "finding carries the linted path: {f:?}");
        assert!(!f.message.is_empty(), "finding has a message: {f:?}");
    }
    findings
        .iter()
        .map(|f: &Finding| (f.rule, f.line))
        .collect()
}

/// Asserts the fixture yields exactly `expected` `(rule, line)` pairs.
fn expect(path: &str, text: &str, expected: &[(RuleId, u32)]) {
    assert_eq!(run(path, text), expected, "fixture {path}");
}

const SIM: &str = "crates/eards-sim/src/fixture.rs";

#[test]
fn d001_positive() {
    expect(
        SIM,
        include_str!("../fixtures/d001_pos.rs"),
        &[
            (RuleId::D001, 5),
            (RuleId::D001, 6),
            (RuleId::D001, 11),
            (RuleId::D001, 14),
        ],
    );
}

#[test]
fn d001_negative() {
    expect(SIM, include_str!("../fixtures/d001_neg.rs"), &[]);
}

#[test]
fn d001_is_scoped_to_sim_affecting_crates() {
    // The same offending source in a non-sim crate is clean.
    expect(
        "crates/eards-metrics/src/fixture.rs",
        include_str!("../fixtures/d001_pos.rs"),
        &[],
    );
}

#[test]
fn d002_positive() {
    expect(
        SIM,
        include_str!("../fixtures/d002_pos.rs"),
        &[(RuleId::D002, 3), (RuleId::D002, 4)],
    );
}

#[test]
fn d002_negative_allowlisted_crate() {
    expect(
        "crates/eards-obs/src/fixture.rs",
        include_str!("../fixtures/d002_neg.rs"),
        &[],
    );
}

#[test]
fn d003_positive() {
    expect(
        SIM,
        include_str!("../fixtures/d003_pos.rs"),
        &[(RuleId::D003, 3), (RuleId::D003, 4), (RuleId::D003, 10)],
    );
}

#[test]
fn d003_fires_everywhere_even_outside_sim_crates() {
    // D003 has no crate scoping: ambient randomness is never OK.
    let got = run(
        "crates/eards-bench/src/fixture.rs",
        include_str!("../fixtures/d003_pos.rs"),
    );
    assert_eq!(
        got,
        &[(RuleId::D003, 3), (RuleId::D003, 4), (RuleId::D003, 10)]
    );
}

#[test]
fn d003_negative() {
    expect(SIM, include_str!("../fixtures/d003_neg.rs"), &[]);
}

#[test]
fn d004_positive() {
    // The same chains are also panic hazards (P001) in a sim crate — the
    // rules overlap deliberately: fixing with total_cmp clears both.
    expect(
        SIM,
        include_str!("../fixtures/d004_pos.rs"),
        &[
            (RuleId::D004, 3),
            (RuleId::P001, 3),
            (RuleId::D004, 7),
            (RuleId::P001, 7),
        ],
    );
}

#[test]
fn d004_negative() {
    expect(SIM, include_str!("../fixtures/d004_neg.rs"), &[]);
}

#[test]
fn d005_positive_even_in_clock_allowed_crates() {
    // eards-obs is on D002's allowlist, so these wall-clock reads would
    // otherwise pass; inside `impl Persist` they are still findings
    // (thread_rng additionally draws its usual D003).
    expect(
        "crates/eards-obs/src/fixture.rs",
        include_str!("../fixtures/d005_pos.rs"),
        &[
            (RuleId::D005, 6),
            (RuleId::D005, 7),
            (RuleId::D003, 8),
            (RuleId::D005, 8),
            (RuleId::D005, 16),
        ],
    );
}

#[test]
fn d005_overlaps_d002_in_sim_crates() {
    // In a sim crate the same source draws D002 too — fixing the impl
    // clears both, exactly like the D004/P001 overlap.
    let got = run(SIM, include_str!("../fixtures/d005_pos.rs"));
    assert!(got.contains(&(RuleId::D005, 6)));
    assert!(got.contains(&(RuleId::D002, 6)));
}

#[test]
fn d005_negative() {
    expect(
        "crates/eards-obs/src/fixture.rs",
        include_str!("../fixtures/d005_neg.rs"),
        &[],
    );
}

#[test]
fn p001_positive() {
    expect(
        "crates/eards-datacenter/src/fixture.rs",
        include_str!("../fixtures/p001_pos.rs"),
        &[
            (RuleId::P001, 3),
            (RuleId::P001, 4),
            (RuleId::P001, 6),
            (RuleId::P001, 8),
        ],
    );
}

#[test]
fn p001_negative() {
    expect(
        "crates/eards-datacenter/src/fixture.rs",
        include_str!("../fixtures/p001_neg.rs"),
        &[],
    );
}

#[test]
fn p001_skips_integration_test_paths() {
    // tests/ directories are all-test: unwraps there are fine.
    expect(
        "crates/eards-datacenter/tests/fixture.rs",
        include_str!("../fixtures/p001_pos.rs"),
        &[],
    );
}

#[test]
fn p001_persist_bodies_fire_outside_sim_crates() {
    // eards-metrics is not sim-affecting, so whole-file P001 is off —
    // but the `impl Persist` body is still held to the codec standard.
    expect(
        "crates/eards-metrics/src/fixture.rs",
        include_str!("../fixtures/p001_persist_pos.rs"),
        &[
            (RuleId::P001, 8),
            (RuleId::P001, 10),
            (RuleId::P001, 14),
            (RuleId::P001, 16),
        ],
    );
}

#[test]
fn p001_persist_positive_draws_more_in_sim_crates() {
    // The same source in a sim crate is whole-file scope: every hazard
    // fires, codec or not (superset of the non-sim findings).
    let got = run(SIM, include_str!("../fixtures/p001_persist_pos.rs"));
    assert_eq!(
        got,
        &[
            (RuleId::P001, 8),
            (RuleId::P001, 10),
            (RuleId::P001, 14),
            (RuleId::P001, 16),
        ]
    );
}

#[test]
fn p001_persist_negative() {
    // Clean codec + panicking non-codec code in a non-sim crate: no
    // findings (the unwrap outside the impl is out of scope there).
    expect(
        "crates/eards-metrics/src/fixture.rs",
        include_str!("../fixtures/p001_persist_neg.rs"),
        &[],
    );
}

#[test]
fn c001_positive() {
    expect(
        SIM,
        include_str!("../fixtures/c001_pos.rs"),
        &[(RuleId::C001, 3), (RuleId::C001, 3)],
    );
}

#[test]
fn c001_negative() {
    expect(SIM, include_str!("../fixtures/c001_neg.rs"), &[]);
}

#[test]
fn s001_positive() {
    // Malformed markers are findings AND suppress nothing: the field the
    // reasonless marker sat on still gets its D001.
    expect(
        SIM,
        include_str!("../fixtures/s001_pos.rs"),
        &[(RuleId::S001, 6), (RuleId::D001, 7), (RuleId::S001, 10)],
    );
}

#[test]
fn s001_negative() {
    expect(SIM, include_str!("../fixtures/s001_neg.rs"), &[]);
}

#[test]
fn snap001_positive() {
    // `skew` write-only (line 7), `drift` read-only (line 8), `label`
    // in neither direction (line 9); `ticks` is covered and silent.
    expect(
        SIM,
        include_str!("../fixtures/snap001_pos.rs"),
        &[
            (RuleId::SNAP001, 7),
            (RuleId::SNAP001, 8),
            (RuleId::SNAP001, 9),
        ],
    );
}

#[test]
fn snap001_fires_in_every_crate() {
    // Unlike P001, the Persist coverage rules have no crate scoping: a
    // codec that drops fields is wrong wherever it lives.
    let got = run(
        "crates/eards-metrics/src/fixture.rs",
        include_str!("../fixtures/snap001_pos.rs"),
    );
    assert_eq!(
        got,
        &[
            (RuleId::SNAP001, 7),
            (RuleId::SNAP001, 8),
            (RuleId::SNAP001, 9),
        ]
    );
}

#[test]
fn snap001_negative() {
    expect(SIM, include_str!("../fixtures/snap001_neg.rs"), &[]);
}

#[test]
fn snap002_positive() {
    // `Draining` has a write arm but no read arm (line 8); `Halted` has
    // neither (line 9).
    expect(
        SIM,
        include_str!("../fixtures/snap002_pos.rs"),
        &[(RuleId::SNAP002, 8), (RuleId::SNAP002, 9)],
    );
}

#[test]
fn snap002_negative() {
    expect(SIM, include_str!("../fixtures/snap002_neg.rs"), &[]);
}

#[test]
fn s002_positive() {
    expect(
        SIM,
        include_str!("../fixtures/s002_pos.rs"),
        &[(RuleId::S002, 3), (RuleId::S002, 9)],
    );
}

#[test]
fn s002_negative() {
    expect(SIM, include_str!("../fixtures/s002_neg.rs"), &[]);
}

#[test]
fn s002_flags_live_allows_whose_rule_is_out_of_scope_here() {
    // The d001_neg fixture's allows cover real D001 findings in a
    // sim-affecting crate — but lint the same file under a non-sim path
    // and D001 never fires, so the same markers are now dead weight.
    let got = run(
        "crates/eards-metrics/src/fixture.rs",
        include_str!("../fixtures/s002_neg.rs"),
    );
    assert_eq!(got, &[(RuleId::S002, 7)]);
}
