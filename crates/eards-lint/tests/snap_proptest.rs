//! Property test for SNAP001: generate a random struct definition plus a
//! Persist impl that omits one randomly chosen field from one or both
//! codec directions, and assert the rule flags exactly the omitted field
//! (and nothing at all when the impl is complete).

use eards_lint::{lint_source, RuleId};
use proptest::prelude::*;

/// Which codec direction(s) the generated impl drops the field from.
#[derive(Debug, Clone, Copy)]
enum Omit {
    Persist,
    Restore,
    Both,
}

/// Builds a lintable source file: `struct Snapshot { … }` plus an
/// `impl Persist for Snapshot` writing/reading every field except the
/// omitted one. Returns `(source, decl line of each field)`.
fn render(fields: &[String], omitted: Option<(usize, Omit)>) -> (String, Vec<u32>) {
    let mut src = String::from("pub struct Snapshot {\n");
    let mut decl_lines = Vec::with_capacity(fields.len());
    let mut line = 1u32;
    for name in fields {
        line += 1;
        decl_lines.push(line);
        src.push_str(&format!("    pub {name}: u64,\n"));
    }
    src.push_str("}\n\nimpl Persist for Snapshot {\n");
    src.push_str("    fn persist(&self, w: &mut Writer) {\n");
    for (i, name) in fields.iter().enumerate() {
        let drop_write = matches!(
            omitted,
            Some((j, Omit::Persist | Omit::Both)) if j == i
        );
        if !drop_write {
            src.push_str(&format!("        w.put_u64(self.{name});\n"));
        }
    }
    src.push_str("    }\n\n");
    src.push_str("    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {\n");
    src.push_str("        Ok(Snapshot {\n");
    for (i, name) in fields.iter().enumerate() {
        let drop_read = matches!(
            omitted,
            Some((j, Omit::Restore | Omit::Both)) if j == i
        );
        if !drop_read {
            src.push_str(&format!("            {name}: r.get_u64()?,\n"));
        }
    }
    src.push_str("        })\n    }\n}\n");
    (src, decl_lines)
}

/// 2–7 distinct field names. The `fld_` prefix keeps generated names
/// clear of `persist`/`restore`/`w`/`r`/`Snapshot`; the index suffix
/// guarantees distinctness whatever letters the generator draws.
fn field_names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(0usize..26, 2..8).prop_map(|codes| {
        codes
            .iter()
            .enumerate()
            .map(|(i, c)| format!("fld_{}{}", (b'a' + *c as u8) as char, i))
            .collect()
    })
}

fn omit_kind() -> impl Strategy<Value = Omit> {
    prop_oneof![Just(Omit::Persist), Just(Omit::Restore), Just(Omit::Both),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complete_impls_are_silent(fields in field_names()) {
        let (src, _) = render(&fields, None);
        let findings = lint_source("crates/eards-sim/src/gen.rs", &src);
        prop_assert!(
            findings.is_empty(),
            "complete codec must be clean: {findings:?}\n{src}"
        );
    }

    #[test]
    fn the_omitted_field_is_flagged_exactly(
        fields in field_names(),
        pick in 0usize..9973,
        kind in omit_kind(),
    ) {
        let idx = pick % fields.len();
        let (src, decl_lines) = render(&fields, Some((idx, kind)));
        let findings = lint_source("crates/eards-sim/src/gen.rs", &src);
        let snap: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::SNAP001)
            .collect();
        prop_assert_eq!(snap.len(), 1, "one finding: {:?}\n{}", findings, src);
        prop_assert!(
            snap[0].message.contains(&format!("`{}`", fields[idx])),
            "names the omitted field: {}",
            snap[0].message
        );
        prop_assert_eq!(snap[0].line, decl_lines[idx], "anchored on its declaration");
        let expect_dir = match kind {
            Omit::Persist => "restored but never persisted",
            Omit::Restore => "persisted but never restored",
            Omit::Both => "appears in neither",
        };
        prop_assert!(
            snap[0].message.contains(expect_dir),
            "direction {:?} in message: {}",
            kind,
            snap[0].message
        );
    }
}
