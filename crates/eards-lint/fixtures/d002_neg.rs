// D002 negative (linted under an eards-obs path, which is allowlisted —
// profiling spans legitimately read the wall clock).
pub fn span_start() -> std::time::Instant {
    std::time::Instant::now()
}
