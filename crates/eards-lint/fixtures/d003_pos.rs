// D003 positive: ambient randomness — nondeterministic seeds.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let x: f64 = rand::random();
    let _ = &mut rng;
    x
}

pub fn reseed() -> u64 {
    let r = SmallRng::from_entropy();
    let _ = r;
    0
}
