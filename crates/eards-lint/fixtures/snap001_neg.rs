// SNAP001 negative: full coverage, a reasoned transient allow, and the
// shapes the rule must skip (tuple structs, unresolvable target types).
pub struct Gauge {
    pub total: u64,
    // lint:allow(SNAP001): scratch cache, rebuilt lazily after restore
    pub cache: Vec<u64>,
}

impl Persist for Gauge {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.total);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Gauge {
            total: r.get_u64()?,
            cache: Vec::new(),
        })
    }
}

// Tuple structs have no named fields to cover.
pub struct Seq(pub u64);

impl Persist for Seq {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Seq(r.get_u64()?))
    }
}

// Target type defined nowhere the analyzer can see: skipped, not guessed.
impl Persist for External {
    fn persist(&self, _w: &mut Writer) {}

    fn restore(_r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(External)
    }
}
