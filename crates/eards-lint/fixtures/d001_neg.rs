// D001 negative: BTreeMap is ordered, suppressed fields carry reasons,
// and test-only maps are exempt.
use std::collections::{BTreeMap, HashMap};

pub struct State {
    pub ordered: BTreeMap<u32, u64>,
    // lint:allow(D001): keyed lookups only, never iterated
    pub index: HashMap<u32, u64>,
}

pub fn sum(s: &State) -> u64 {
    s.ordered.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert_eq!(m.values().count(), 0);
    }
}
