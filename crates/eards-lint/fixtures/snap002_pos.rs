// SNAP002 positive: enum tag arms missing from one or both codec
// directions. `Idle`/`Busy` are covered; `Draining` has a write arm but
// no read arm, and `Halted` has neither — the exact hole a new variant
// opens when only one direction grows.
pub enum Phase {
    Idle,
    Busy,
    Draining,
    Halted,
}

impl Persist for Phase {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            Phase::Idle => 0,
            Phase::Busy => 1,
            Phase::Draining => 2,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(Phase::Idle),
            1 => Ok(Phase::Busy),
            t => Err(PersistError::Corrupt(format!("bad Phase tag {t}"))),
        }
    }
}
