// P001 negative: propagating instead of panicking, and tests may
// unwrap freely.
pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1u32];
        assert_eq!(v.first().unwrap(), &v[0]);
        assert!(!v.is_empty(), "{}", v[0]);
    }
}
