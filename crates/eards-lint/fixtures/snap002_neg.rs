// SNAP002 negative: every variant has a tag arm in both directions, and
// an enum without a Persist impl is nobody's business.
pub enum Mode {
    Off,
    Counting,
    Strict,
}

impl Persist for Mode {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            Mode::Off => 0,
            Mode::Counting => 1,
            Mode::Strict => 2,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(Mode::Off),
            1 => Ok(Mode::Counting),
            2 => Ok(Mode::Strict),
            t => Err(PersistError::Corrupt(format!("bad Mode tag {t}"))),
        }
    }
}

pub enum NeverPersisted {
    A,
    B,
}
