// D004 positive: partial_cmp chained into unwrap/expect panics on NaN.
pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn sort_expect(v: &mut [f64]) {
    v.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
}
