// D003 negative: explicit seeding is the sanctioned way to randomness.
pub fn rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}
