// P001 positive (Persist scope): panicking constructs inside an
// `impl Persist` body. Linted under a NON-sim-affecting path, where
// whole-file P001 does not apply — codec bodies still draw findings
// (a panicking codec loses the run it checkpoints; cf. the put_len
// `expect` that motivated the rule extension).
impl Persist for Counters {
    fn persist(&self, w: &mut Writer) {
        let n = u32::try_from(self.values.len()).expect("fits");
        w.put_u32(n);
        w.put_u64(self.values[0]);
    }

    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        let n = r.get_u32().unwrap();
        if n > MAX {
            panic!("too many counters");
        }
        Ok(Counters { values: Vec::new() })
    }
}
