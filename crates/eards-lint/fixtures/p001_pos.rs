// P001 positive: panicking constructs in sim library code.
pub fn first(v: &[u32]) -> u32 {
    let head = v.first().unwrap();
    let tail = v.last().expect("non-empty");
    if *head > *tail {
        panic!("unsorted");
    }
    v[0]
}
