// D001 positive: map-typed field and iteration in a sim-affecting crate.
use std::collections::{HashMap, HashSet};

pub struct State {
    pub by_host: HashMap<u32, u64>,
    pub live: HashSet<u64>,
}

pub fn sum(s: &State) -> u64 {
    let mut total = 0;
    for (_, v) in s.by_host.iter() {
        total += v;
    }
    for v in s.live.iter() {
        total += v;
    }
    total
}
