// S002 negative: every allow covers a live raw finding (the marker on
// the map field suppresses a real D001), and markers inside test code
// are exempt — rules skip test lines, so allows there are documentation.
use std::collections::HashMap;

pub struct State {
    // lint:allow(D001): keyed lookups only, never iterated
    pub index: HashMap<u32, u64>,
}

#[cfg(test)]
mod tests {
    // lint:allow(D004): in-test marker, exempt from staleness checks
    fn helper() {}
}
