// S002 positive: well-formed allows whose rules fire nothing on the
// lines they cover — dead markers left behind by a long-gone fix.
// lint:allow(D004): the comparator below was rewritten with total_cmp
pub fn compare(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

pub struct Plain {
    // lint:allow(D001): this field stopped being a map two refactors ago
    pub xs: Vec<u64>,
}
