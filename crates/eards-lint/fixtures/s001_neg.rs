// S001 negative: a well-formed reasoned marker suppresses its rule, and
// doc comments that merely describe the syntax are inert.
use std::collections::HashMap;

/// To suppress, write `// lint:allow(D001)` followed by `: reason`.
pub struct State {
    // lint:allow(D001): keyed lookups only, never iterated
    pub index: HashMap<u32, u64>,
}
