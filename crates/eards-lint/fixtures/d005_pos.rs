// D005 positive: wall-clock / ambient-randomness state captured inside an
// `impl Persist` block. Linted under an eards-obs path, where D002's
// allowlist would otherwise let the wall clock through — D005 still fires.
impl Persist for Span {
    fn persist(&self, w: &mut Writer) {
        let t0 = std::time::Instant::now();
        let wall = std::time::SystemTime::now();
        let mut rng = rand::thread_rng();
        let _ = (t0, wall, &mut rng);
        w.put_u64(self.id);
    }

    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        Ok(Span {
            id: r.get_u64()?,
            started: std::time::Instant::now(),
        })
    }
}
