// C001 negative: the conversion helpers keep SimTime arithmetic exact,
// and casts in statements without SimTime/SimDuration are out of scope.
pub fn secs(t: SimTime) -> f64 {
    t.as_secs_f64()
}

pub fn widen(x: u32) -> u64 {
    x as u64
}
