// D004 negative: total_cmp is total, and an un-unwrapped partial_cmp
// (handled Option) is fine.
pub fn sort(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

pub fn tri(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}
