// C001 positive: raw numeric casts in SimTime arithmetic.
pub fn skewed(t: SimTime, k: f64) -> SimTime {
    SimTime::from_millis((t.as_millis() as f64 * k) as u64)
}
