// D002 positive: wall-clock reads outside eards-obs/eards-bench.
pub fn elapsed_ms() -> u128 {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    t0.elapsed().as_millis()
}
