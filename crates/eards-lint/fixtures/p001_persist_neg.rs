// P001 negative (Persist scope): a clean codec, plus panicking code
// OUTSIDE any `impl Persist` body in a non-sim crate — the whole-file
// rule is scoped to sim-affecting crates, so only codec bodies count
// here.
impl Persist for Counters {
    fn persist(&self, w: &mut Writer) {
        w.put_len(self.values.len());
        for v in &self.values {
            w.put_u64(*v);
        }
    }

    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(r.get_u64()?);
        }
        Ok(Counters { values })
    }
}

pub fn render(rows: &[String]) -> String {
    // Outside the codec, a non-sim crate may make its own call.
    let first = rows.first().unwrap();
    format!("{first} and {} more", rows.len() - 1)
}
