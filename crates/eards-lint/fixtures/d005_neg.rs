// D005 negative: a clean Persist impl (sim-time state only), plus a
// wall-clock read *outside* any Persist impl, which in this allowlisted
// crate (eards-obs) is D002-clean and out of D005's scope.
impl Persist for Span {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.started.as_millis());
    }

    fn restore(r: &mut Reader) -> Result<Self, PersistError> {
        Ok(Span {
            started: SimTime::from_millis(r.get_u64()?),
        })
    }
}

impl Span {
    pub fn wall_elapsed(&self) -> u128 {
        std::time::Instant::now().elapsed().as_millis()
    }
}
