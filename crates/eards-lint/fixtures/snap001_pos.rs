// SNAP001 positive: a codec whose field coverage drifted from its
// struct. `ticks` is covered in both directions (clean); `skew` is
// written but never read back, `drift` is read but never written
// (write/read asymmetry), and `label` vanished from both.
pub struct Meter {
    pub ticks: u64,
    pub skew: u64,
    pub drift: u64,
    pub label: String,
}

impl Persist for Meter {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.ticks);
        w.put_u64(self.skew);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Meter {
            ticks: r.get_u64()?,
            drift: r.get_u64()?,
        })
    }
}
