// S001 positive: reasonless and unknown-rule markers are findings and
// suppress nothing.
use std::collections::HashMap;

pub struct State {
    // lint:allow(D001)
    pub index: HashMap<u32, u64>,
}

// lint:allow(Z999): not a rule that exists
pub fn f() {}
