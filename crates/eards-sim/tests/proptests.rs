//! Property tests for the DES engine: the event queue against a reference
//! model, and time arithmetic laws.

use proptest::prelude::*;

use eards_sim::{EventQueue, SimDuration, SimTime, WheelQueue};

/// Operations to drive the queue model.
#[derive(Debug, Clone)]
enum Op {
    Schedule(u64),
    /// Cancel the i-th still-live handle (mod live count).
    Cancel(usize),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..10_000).prop_map(Op::Schedule),
        1 => (0usize..64).prop_map(Op::Cancel),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    /// The timing wheel and the binary heap behave identically under any
    /// interleaving of schedule / cancel / pop: drive both with the same
    /// operations and require identical observable behaviour.
    #[test]
    fn wheel_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut heap = EventQueue::new();
        let mut wheel = WheelQueue::new();
        let mut handles: Vec<(eards_sim::EventHandle, eards_sim::EventHandle)> = Vec::new();
        // The wheel clamps past-times to its cursor, so generate monotone
        // non-decreasing times to keep the two queues comparable.
        let mut floor = 0u64;
        for op in ops {
            match op {
                Op::Schedule(ms) => {
                    let at = SimTime::from_millis(floor + ms);
                    let hh = heap.schedule(at, floor + ms);
                    let hw = wheel.schedule(at, floor + ms);
                    handles.push((hh, hw));
                }
                Op::Cancel(i) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let idx = i % handles.len();
                    let (hh, hw) = handles[idx];
                    prop_assert_eq!(heap.cancel(hh), wheel.cancel(hw));
                }
                Op::Pop => {
                    prop_assert_eq!(heap.peek_time(), wheel.peek_time());
                    let a = heap.pop();
                    let b = wheel.pop();
                    match (a, b) {
                        (None, None) => {}
                        (Some((ta, _, pa)), Some((tb, _, pb))) => {
                            prop_assert_eq!(ta, tb);
                            prop_assert_eq!(pa, pb);
                            floor = ta.as_millis();
                        }
                        (a, b) => prop_assert!(false, "heap {a:?} vs wheel {b:?}"),
                    }
                }
            }
            prop_assert_eq!(heap.len(), wheel.len());
        }
        // Drain both; they must agree to the end.
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            match (&a, &b) {
                (None, None) => break,
                (Some((ta, _, pa)), Some((tb, _, pb))) => {
                    prop_assert_eq!(ta, tb);
                    prop_assert_eq!(pa, pb);
                }
                _ => prop_assert!(false, "heap {a:?} vs wheel {b:?}"),
            }
        }
    }

    /// The queue behaves exactly like a sorted reference list under any
    /// interleaving of schedule / cancel / pop.
    #[test]
    fn queue_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut queue = EventQueue::new();
        // Reference: Vec of (time, seq, payload, handle) kept sorted by (time, seq).
        let mut reference: Vec<(SimTime, u64, u64, eards_sim::EventHandle)> = Vec::new();
        let mut next_payload = 0u64;

        for op in ops {
            match op {
                Op::Schedule(ms) => {
                    let t = SimTime::from_millis(ms);
                    let h = queue.schedule(t, next_payload);
                    reference.push((t, next_payload, next_payload, h));
                    next_payload += 1;
                }
                Op::Cancel(i) => {
                    if reference.is_empty() {
                        prop_assert!(queue.is_empty());
                        continue;
                    }
                    let idx = i % reference.len();
                    let (_, _, _, h) = reference.remove(idx);
                    prop_assert!(queue.cancel(h), "live handle must cancel");
                    prop_assert!(!queue.cancel(h), "double cancel must fail");
                }
                Op::Pop => {
                    reference.sort_by_key(|&(t, seq, _, _)| (t, seq));
                    match queue.pop() {
                        Some((t, _, payload)) => {
                            let (rt, _, rp, _) = reference.remove(0);
                            prop_assert_eq!(t, rt);
                            prop_assert_eq!(payload, rp);
                        }
                        None => prop_assert!(reference.is_empty()),
                    }
                }
            }
            prop_assert_eq!(queue.len(), reference.len());
        }

        // Drain: the remainder pops in exact (time, insertion) order.
        reference.sort_by_key(|&(t, seq, _, _)| (t, seq));
        for (rt, _, rp, _) in reference {
            let (t, _, p) = queue.pop().expect("queue must match reference");
            prop_assert_eq!(t, rt);
            prop_assert_eq!(p, rp);
        }
        prop_assert!(queue.pop().is_none());
    }

    /// Pop order is globally sorted and FIFO-stable for equal timestamps.
    #[test]
    fn pop_order_is_monotone(times in proptest::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal time");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Duration arithmetic: associativity-ish laws within u64 range.
    #[test]
    fn time_arithmetic_laws(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, k in 0.0f64..8.0) {
        let ta = SimTime::from_millis(a);
        let db = SimDuration::from_millis(b);
        // add-then-subtract round trips.
        prop_assert_eq!((ta + db) - ta, db);
        prop_assert_eq!((ta + db).saturating_since(ta), db);
        // saturating_since in the other direction is zero.
        prop_assert_eq!(ta.saturating_since(ta + db + SimDuration::from_millis(1)), SimDuration::ZERO);
        // scaling by a non-negative factor preserves ordering.
        let scaled = db.mul_f64(k);
        if k >= 1.0 {
            prop_assert!(scaled >= db);
        } else {
            prop_assert!(scaled <= db);
        }
        // seconds round trip within rounding.
        let rt = SimDuration::from_secs_f64(db.as_secs_f64());
        let diff = rt.as_millis().abs_diff(db.as_millis());
        prop_assert!(diff <= 1, "round trip drift {diff}");
    }
}
