//! Failure-path coverage for [`eards_sim::write_atomic`]: every error is
//! a typed `std::io::Error`, the target file is never torn or
//! half-visible, and no `.tmp` debris survives a failed call.

use std::fs;
use std::io::ErrorKind;
use std::path::PathBuf;

use eards_sim::write_atomic;

/// A fresh scratch directory per test (removed on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("eards-write-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    /// Files currently in the scratch dir (sorted names).
    fn listing(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.0)
            .expect("scratch dir readable")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        names.sort();
        names
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn writes_then_replaces_without_leaving_tmp() {
    let s = Scratch::new("replace");
    let target = s.path("snap.bin");
    write_atomic(&target, b"first").expect("initial write");
    assert_eq!(fs::read(&target).expect("readable"), b"first");
    write_atomic(&target, b"the second version").expect("replacement write");
    assert_eq!(fs::read(&target).expect("readable"), b"the second version");
    // The staging file never outlives a successful call.
    assert_eq!(s.listing(), vec!["snap.bin".to_string()]);
}

#[test]
fn path_without_file_name_is_invalid_input() {
    let err = write_atomic(std::path::Path::new("/"), b"x").expect_err("no file name");
    assert_eq!(err.kind(), ErrorKind::InvalidInput);
    assert!(err.to_string().contains("no file name"), "{err}");
}

#[test]
fn missing_parent_directory_is_not_found_and_creates_nothing() {
    let s = Scratch::new("noparent");
    let target = s.path("absent/snap.bin");
    let err = write_atomic(&target, b"x").expect_err("parent missing");
    assert_eq!(err.kind(), ErrorKind::NotFound);
    // Nothing appeared: not the target, not a staging file.
    assert!(
        s.listing().is_empty(),
        "scratch stayed empty: {:?}",
        s.listing()
    );
}

#[test]
fn blocked_staging_path_leaves_previous_file_intact() {
    let s = Scratch::new("blocked-tmp");
    let target = s.path("snap.bin");
    write_atomic(&target, b"previous generation").expect("initial write");
    // A directory squatting on `<path>.tmp` makes `File::create` fail
    // before a single byte is staged.
    fs::create_dir(s.path("snap.bin.tmp")).expect("squatter dir");
    let err = write_atomic(&target, b"next generation").expect_err("staging blocked");
    assert!(
        matches!(
            err.kind(),
            ErrorKind::AlreadyExists | ErrorKind::IsADirectory
        ),
        "unexpected kind {:?}",
        err.kind()
    );
    // The reader-visible file is the complete previous version — never
    // empty, never a mix.
    assert_eq!(fs::read(&target).expect("readable"), b"previous generation");
}

#[test]
fn failed_rename_cleans_up_the_staging_file() {
    let s = Scratch::new("bad-rename");
    // A non-empty directory at the target makes the final rename fail
    // after the staging file was fully written and fsynced.
    let target = s.path("snap.bin");
    fs::create_dir(&target).expect("target dir");
    fs::write(target.join("occupant"), b"x").expect("occupant");
    let err = write_atomic(&target, b"payload").expect_err("rename onto non-empty dir");
    // Kind varies by platform/filesystem; the type contract is just that
    // it is a real io::Error and the staging file is gone.
    let _ = err.kind();
    assert_eq!(s.listing(), vec!["snap.bin".to_string()]);
    assert!(target.is_dir(), "target directory untouched");
}
