//! # eards-sim — deterministic discrete-event simulation engine
//!
//! The simulation substrate of the EARDS reproduction of *"Energy-aware
//! Scheduling in Virtualized Datacenters"* (Goiri et al., CLUSTER 2010).
//! The paper builds its power-aware datacenter simulator on OMNeT++ (§IV);
//! this crate provides the equivalent foundation in pure Rust:
//!
//! * [`SimTime`] / [`SimDuration`] — fixed-point (millisecond) simulated
//!   time, so event ordering is exact and runs never drift.
//! * [`EventQueue`] — a future-event list with FIFO tie-breaking at equal
//!   timestamps and O(log n) lazy cancellation.
//! * [`Simulator`] — the clock + event loop, generic over the model's event
//!   type.
//! * [`SimRng`] — a seedable PRNG with the distribution samplers the model
//!   needs (Normal, LogNormal, Exponential, Weibull, bounded Pareto), plus
//!   `fork` for decorrelated per-subsystem streams.
//! * [`Persist`] — the snapshot trait and its versioned, length-prefixed
//!   binary codec ([`Writer`] / [`Reader`]), so a run can be checkpointed
//!   and resumed bit-identically.
//!
//! Everything above the engine (hosts, VMs, power) lives in `eards-model`;
//! everything in the paper's evaluation (policies, the score-based
//! scheduler) lives in `eards-policies` / `eards-core`.
//!
//! ## Example
//!
//! ```
//! use eards_sim::{run, SimTime, SimDuration, Simulator};
//!
//! #[derive(Debug)]
//! enum Event { Tick(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_at(SimTime::from_secs(1), Event::Tick(0));
//! let mut ticks = 0u32;
//! run(&mut sim, &mut ticks, SimTime::from_secs(10), |sim, ticks, _, ev| {
//!     let Event::Tick(i) = ev;
//!     *ticks += 1;
//!     if i < 100 {
//!         sim.schedule_after(SimDuration::from_secs(2), Event::Tick(i + 1));
//!     }
//! });
//! assert_eq!(ticks, 5); // t = 1, 3, 5, 7, 9
//! ```

#![warn(missing_docs)]

mod engine;
mod persist;
mod queue;
mod rng;
mod time;
mod wheel;

pub use engine::{run, Simulator};
pub use persist::{
    read_header, write_atomic, write_header, Persist, PersistError, Reader, Writer, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use queue::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use time::{
    SimDuration, SimTime, MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MIN, MILLIS_PER_SEC,
    MILLIS_PER_WEEK,
};
pub use wheel::WheelQueue;
