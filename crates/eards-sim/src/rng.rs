//! Deterministic random numbers and the statistical distributions the
//! simulator needs.
//!
//! The paper (§IV) injects measured variability into the model — e.g. VM
//! creation times follow a Normal(µ = 40 s, σ = 2.5 s) observed on the real
//! testbed. We keep every stochastic element behind [`SimRng`], a small
//! seedable PRNG wrapper, so a whole datacenter run is reproducible from a
//! single seed, and independent subsystems can `fork` their own streams
//! without coupling their consumption order.
//!
//! Distribution sampling (Normal, LogNormal, Exponential, Weibull, Pareto)
//! is implemented here directly rather than pulling in `rand_distr`: the
//! formulas are short, and owning them lets property tests pin their exact
//! behaviour.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::persist::{Persist, PersistError, Reader, Writer};

/// A deterministic, seedable random number generator for simulations.
///
/// Wraps [`SmallRng`] and adds the distribution samplers used by the
/// datacenter model. Two `SimRng`s created from equal seeds produce equal
/// streams on every platform this crate supports.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Cached second value from the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child stream is a deterministic function of the parent's current
    /// state and `stream`, so different subsystems (workload generation,
    /// creation jitter, failures, …) can consume randomness without
    /// perturbing each other's sequences.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix a fresh draw with the stream id through SplitMix64 so forks
        // with different ids are decorrelated even from identical parents.
        let mut z = self
            .inner
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform value in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform() < p
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller needs u1 in (0, 1]; resample the open bound away.
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "std_dev must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Normal draw truncated below at `floor` (resampled, not clamped, to
    /// avoid a probability mass spike at the floor). Used for operation
    /// durations, which must stay positive.
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        // For the parameterizations we use (mean >> floor), rejection is
        // cheap. Bail out to the floor after a bounded number of attempts so
        // adversarial parameters cannot loop forever.
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if x >= floor {
                return x;
            }
        }
        floor
    }

    /// Exponential draw with the given `rate` (λ). Mean is `1 / rate`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "rate must be positive");
        let mut u = self.uniform();
        while u <= f64::MIN_POSITIVE {
            u = self.uniform();
        }
        -u.ln() / rate
    }

    /// Log-normal draw: `exp(N(mu, sigma))`.
    ///
    /// `mu`/`sigma` are the parameters of the underlying normal, i.e. the
    /// median of the distribution is `exp(mu)`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Weibull draw with shape `k` and scale `lambda`.
    pub fn weibull(&mut self, k: f64, lambda: f64) -> f64 {
        debug_assert!(k > 0.0 && lambda > 0.0);
        let mut u = self.uniform();
        while u <= f64::MIN_POSITIVE {
            u = self.uniform();
        }
        lambda * (-u.ln()).powf(1.0 / k)
    }

    /// Bounded Pareto draw on `[lo, hi]` with tail index `alpha`.
    ///
    /// Used for job runtimes: grid workloads are famously heavy-tailed
    /// (many short jobs, a few very long ones).
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Draws an index according to the given non-negative weights.
    /// Panics if the weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs a positive total weight");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Raw 64-bit draw, for callers that need to derive seeds.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Canonical state: the full xoshiro256++ state plus the cached Box–Muller
/// spare, so a restored generator continues the exact stream — including a
/// pending second normal draw.
impl Persist for SimRng {
    fn persist(&self, w: &mut Writer) {
        for word in self.inner.state() {
            w.put_u64(word);
        }
        w.put_opt(&self.gauss_spare);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        Ok(SimRng {
            inner: SmallRng::from_state(state),
            gauss_spare: r.get_opt()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.normal(10.0, 2.0), b.normal(10.0, 2.0));
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let s1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(s1, s2);

        // Same parent state + same stream id = same child.
        let mut p1 = SimRng::seed_from_u64(9);
        let mut p2 = SimRng::seed_from_u64(9);
        let mut f1 = p1.fork(3);
        let mut f2 = p2.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn normal_matches_parameters() {
        let mut rng = SimRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.normal(40.0, 2.5)).collect();
        let (mean, sd) = sample_stats(&samples);
        assert!((mean - 40.0).abs() < 0.1, "mean {mean}");
        assert!((sd - 2.5).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn normal_at_least_respects_floor() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(rng.normal_at_least(5.0, 10.0, 1.0) >= 1.0);
        }
        // Degenerate parameters terminate at the floor.
        assert_eq!(rng.normal_at_least(-100.0, 0.0, 3.0), 3.0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.exponential(0.25)).collect();
        let (mean, _) = sample_stats(&samples);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut below_mid = 0usize;
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.2, 10.0, 10_000.0);
            assert!((10.0..=10_000.0).contains(&x), "x = {x}");
            if x < 100.0 {
                below_mid += 1;
            }
        }
        // Heavy head: the vast majority of mass sits near the lower bound.
        assert!(below_mid > 8_000, "below_mid = {below_mid}");
    }

    #[test]
    fn weibull_positive_and_scaled() {
        let mut rng = SimRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.weibull(1.0, 3.0)).collect();
        // k = 1 degenerates to Exponential(1/3): mean 3.
        let (mean, _) = sample_stats(&samples);
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut samples: Vec<f64> = (0..20_001).map(|_| rng.log_normal(2.0, 1.0)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 2.0f64.exp()).abs() < 0.3, "median {median}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 3.0])] += 1;
        }
        assert!((4_000..6_000).contains(&counts[0]), "{counts:?}");
        assert!((9_000..11_000).contains(&counts[1]), "{counts:?}");
        assert!((14_000..16_000).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn persist_round_trip_continues_stream() {
        use crate::persist::{Reader, Writer};

        let mut rng = SimRng::seed_from_u64(0xEA2D5);
        // Burn an odd number of normal draws so a Box–Muller spare is cached.
        for _ in 0..7 {
            rng.normal(10.0, 3.0);
        }
        let mut w = Writer::new();
        rng.persist(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        let mut restored = SimRng::restore(&mut r).unwrap();
        r.finish().unwrap();
        for _ in 0..64 {
            assert_eq!(rng.normal(10.0, 3.0), restored.normal(10.0, 3.0));
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn uniform_range_empty_returns_lo() {
        let mut rng = SimRng::seed_from_u64(9);
        assert_eq!(rng.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform_range(5.0, 4.0), 5.0);
        let x = rng.uniform_range(2.0, 3.0);
        assert!((2.0..3.0).contains(&x));
    }
}
