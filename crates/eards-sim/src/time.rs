//! Simulation time.
//!
//! Simulated time is kept as an integer number of **milliseconds** since the
//! start of the simulation. Using a fixed-point representation (rather than
//! `f64` seconds) keeps event ordering exact and runs deterministic: two
//! events scheduled for the same instant always compare equal, and adding
//! durations never accumulates rounding error over a week-long simulation
//! (6.048e8 ms, far below `u64::MAX`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Milliseconds in one second.
pub const MILLIS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;
/// Milliseconds in one day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;
/// Milliseconds in one week.
pub const MILLIS_PER_WEEK: u64 = 7 * MILLIS_PER_DAY;

/// An instant of simulated time (milliseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (milliseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MILLIS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_f64_to_millis(secs))
    }

    /// Raw milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        // lint:allow(C001): this IS the sanctioned ms->float boundary
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Hours since simulation start, as a float.
    pub fn as_hours_f64(self) -> f64 {
        // lint:allow(C001): this IS the sanctioned ms->float boundary
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (`None` on overflow).
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MILLIS_PER_SEC)
    }

    /// Creates a span from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MILLIS_PER_MIN)
    }

    /// Creates a span from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * MILLIS_PER_HOUR)
    }

    /// Creates a span from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * MILLIS_PER_DAY)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_f64_to_millis(secs))
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        // lint:allow(C001): this IS the sanctioned ms->float boundary
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Hours, as a float.
    pub fn as_hours_f64(self) -> f64 {
        // lint:allow(C001): this IS the sanctioned ms->float boundary
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// millisecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "duration scale factor must be non-negative");
        // lint:allow(C001): round-to-nearest-ms is this helper's contract
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

fn secs_f64_to_millis(secs: f64) -> u64 {
    if !secs.is_finite() {
        if secs > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    // lint:allow(C001): round-to-nearest-ms is this helper's contract
    (secs * MILLIS_PER_SEC as f64).round().max(0.0) as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_millis(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_millis(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_millis(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_millis(self.0))
    }
}

/// Formats milliseconds as `DdHH:MM:SS.mmm`, omitting leading zero fields.
fn format_millis(ms: u64) -> String {
    let days = ms / MILLIS_PER_DAY;
    let hours = (ms % MILLIS_PER_DAY) / MILLIS_PER_HOUR;
    let mins = (ms % MILLIS_PER_HOUR) / MILLIS_PER_MIN;
    let secs = (ms % MILLIS_PER_MIN) / MILLIS_PER_SEC;
    let millis = ms % MILLIS_PER_SEC;
    if days > 0 {
        format!("{days}d{hours:02}:{mins:02}:{secs:02}.{millis:03}")
    } else if hours > 0 {
        format!("{hours}:{mins:02}:{secs:02}.{millis:03}")
    } else {
        format!("{mins}:{secs:02}.{millis:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_hours(2).as_secs_f64(), 7200.0);
        assert_eq!(SimDuration::from_days(1).as_millis(), MILLIS_PER_DAY);
        assert_eq!(SimDuration::from_mins(3).as_millis(), 180_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn from_secs_f64_saturates_and_rounds() {
        assert_eq!(SimTime::from_secs_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0004), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0006).as_millis(), 1);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(
            t.saturating_since(SimTime::from_secs(30)),
            SimDuration::ZERO
        );
        assert_eq!(d.mul_f64(2.5), SimDuration::from_secs(10));
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_secs(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(62).to_string(), "1:02.000");
        assert_eq!(SimTime::from_secs(3_723).to_string(), "1:02:03.000");
        assert_eq!(
            SimTime::from_millis(MILLIS_PER_DAY + 1500).to_string(),
            "1d00:00:01.500"
        );
        assert_eq!(format!("{:?}", SimTime::from_secs(1)), "t+0:01.000");
    }
}
