//! The discrete-event simulation loop.
//!
//! [`Simulator`] owns the clock and the future-event list. It is generic over
//! the event payload type `E`; the datacenter driver defines its own event
//! enum and drives the loop with [`Simulator::step`] or the [`run`] helper.
//! Keeping the engine payload-agnostic mirrors how the paper's OMNeT++
//! substrate is separate from their datacenter model (§IV).

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::queue::{EventHandle, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulator: a monotonic clock plus a future-event list.
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at `t = 0`.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a causality violation that would
    /// silently corrupt any downstream time-integrated statistic.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now = {}, requested = {}",
            self.now,
            at
        );
        self.queue.schedule(at, event)
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the current instant (it fires after all events
    /// already pending at this instant, preserving FIFO order).
    pub fn schedule_now(&mut self, event: E) -> EventHandle {
        self.queue.schedule(self.now, event)
    }

    /// Cancels a pending event. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn step(&mut self) -> Option<(SimTime, EventHandle, E)> {
        let (time, handle, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue yielded a past event");
        self.now = time;
        self.processed += 1;
        Some((time, handle, event))
    }

    /// Pops the next event only if it fires strictly before `end`.
    ///
    /// Leaves later events queued and does *not* advance the clock past
    /// them; call [`Simulator::finish_at`] to close out a horizon.
    pub fn step_before(&mut self, end: SimTime) -> Option<(SimTime, EventHandle, E)> {
        if self.queue.peek_time()? >= end {
            return None;
        }
        self.step()
    }

    /// Advances the clock to `end` without processing events (used to close
    /// out time-integrated statistics at the simulation horizon).
    ///
    /// # Panics
    /// Panics if `end` is in the past.
    pub fn finish_at(&mut self, end: SimTime) {
        assert!(end >= self.now, "cannot rewind the clock");
        self.now = end;
    }
}

/// Canonical state: the clock (`SimClock` role of the engine), the
/// processed-event counter, and the future-event list.
impl<E: Persist> Persist for Simulator<E> {
    fn persist(&self, w: &mut Writer) {
        self.now.persist(w);
        w.put_u64(self.processed);
        self.queue.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Simulator {
            now: SimTime::restore(r)?,
            processed: r.get_u64()?,
            queue: EventQueue::restore(r)?,
        })
    }
}

/// Runs `sim` until `end` (exclusive), dispatching each event to `handler`
/// together with mutable access to both the simulator and caller state.
///
/// This free-function shape sidesteps the borrow conflict of a closure that
/// captures the simulator: handlers routinely need to schedule follow-up
/// events while holding the popped one.
pub fn run<E, S>(
    sim: &mut Simulator<E>,
    state: &mut S,
    end: SimTime,
    mut handler: impl FnMut(&mut Simulator<E>, &mut S, SimTime, E),
) {
    while let Some((time, _, event)) = sim.step_before(end) {
        handler(sim, state, time, event);
    }
    sim.finish_at(end);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), Ev::Ping(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Ping(0));
        assert_eq!(sim.now(), SimTime::ZERO);
        let (t, _, e) = sim.step().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(2), Ev::Ping(0)));
        assert_eq!(sim.now(), SimTime::from_secs(2));
        sim.step().unwrap();
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(sim.step().is_none());
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10), Ev::Stop);
        sim.step();
        sim.schedule_at(SimTime::from_secs(3), Ev::Stop);
    }

    #[test]
    fn schedule_now_runs_fifo_at_current_instant() {
        let mut sim = Simulator::new();
        sim.schedule_now(Ev::Ping(1));
        sim.schedule_now(Ev::Ping(2));
        assert_eq!(sim.step().unwrap().2, Ev::Ping(1));
        assert_eq!(sim.step().unwrap().2, Ev::Ping(2));
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn step_before_respects_horizon() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), Ev::Ping(1));
        sim.schedule_at(SimTime::from_secs(10), Ev::Ping(2));
        assert!(sim.step_before(SimTime::from_secs(5)).is_some());
        assert!(sim.step_before(SimTime::from_secs(5)).is_none());
        assert_eq!(sim.pending(), 1, "later event must stay queued");
        sim.finish_at(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_dispatches_and_closes_horizon() {
        let mut sim = Simulator::new();
        for i in 0..5u32 {
            sim.schedule_at(SimTime::from_secs(u64::from(i)), Ev::Ping(i));
        }
        sim.schedule_at(SimTime::from_secs(100), Ev::Stop); // beyond horizon
        let mut seen = Vec::new();
        run(
            &mut sim,
            &mut seen,
            SimTime::from_secs(50),
            |sim, seen, t, ev| {
                if let Ev::Ping(i) = ev {
                    seen.push(i);
                    if i == 0 {
                        // Handlers can schedule follow-ups.
                        sim.schedule_after(SimDuration::from_secs(1), Ev::Ping(99));
                    }
                }
                let _ = t;
            },
        );
        assert_eq!(seen, vec![0, 1, 99, 2, 3, 4]);
        assert_eq!(sim.now(), SimTime::from_secs(50));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn persist_round_trip_resumes_mid_run() {
        use crate::persist::{Reader, Writer};

        let mut sim = Simulator::new();
        for i in 0..6u32 {
            sim.schedule_at(SimTime::from_secs(u64::from(i) + 1), Ev::Ping(i));
        }
        sim.step();
        sim.step();

        let mut w = Writer::new();
        sim.persist(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        let mut restored: Simulator<Ev> = Simulator::restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.now(), sim.now());
        assert_eq!(restored.processed(), sim.processed());
        loop {
            let (a, b) = (sim.step(), restored.step());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    impl Persist for Ev {
        fn persist(&self, w: &mut Writer) {
            match self {
                Ev::Ping(i) => {
                    w.put_u8(0);
                    w.put_u32(*i);
                }
                Ev::Stop => w.put_u8(1),
            }
        }
        fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
            match r.get_u8()? {
                0 => Ok(Ev::Ping(r.get_u32()?)),
                1 => Ok(Ev::Stop),
                t => Err(PersistError::Corrupt(format!("bad Ev tag {t}"))),
            }
        }
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulator::new();
        let h = sim.schedule_at(SimTime::from_secs(1), Ev::Ping(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Ping(2));
        assert!(sim.cancel(h));
        let (_, _, e) = sim.step().unwrap();
        assert_eq!(e, Ev::Ping(2));
    }
}
