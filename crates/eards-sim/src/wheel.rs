//! A hierarchical timing-wheel future-event list.
//!
//! The binary-heap [`crate::EventQueue`] costs O(log n) per operation; a
//! timing wheel schedules and cancels in O(1) and pops in amortized O(1)
//! by hashing events into time-bucketed slots. This implementation uses
//! three cascading wheels of 256 slots at millisecond granularity
//! (horizon ≈ 256³ ms ≈ 4.6 h) with a `BTreeMap` overflow for events
//! beyond the horizon, and per-wheel occupancy bitmaps so the next
//! non-empty slot is found with `trailing_zeros` instead of a scan.
//!
//! Semantics match `EventQueue` exactly — same-timestamp FIFO, lazy
//! cancellation — and the property suite drives the two implementations
//! against each other operation-for-operation.
//!
//! **Measured verdict** (see the `event_queue/wheel_vs_heap_dense`
//! bench): the heap wins on this simulator's workloads. The driver needs
//! *jump-to-next-event* (`peek_time`) rather than tick-by-tick advance,
//! and finding the minimum inside a coarse high-level slot is linear in
//! the slot population — which is exactly where events concentrate when
//! the horizon is hours wide. Timing wheels shine in tick-driven systems
//! (OS timers) where expirations are processed per tick and almost all
//! timers are cancelled before firing; the binary heap remains the
//! default here. The implementation stays as a correct, property-tested
//! alternative and a benchmarked negative result.

use std::collections::{BTreeMap, HashSet, VecDeque};

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::queue::EventHandle;
use crate::time::SimTime;

const SLOTS: usize = 256;
const LEVELS: usize = 3;
/// Widths of one slot per level, in milliseconds.
const SLOT_WIDTH: [u64; LEVELS] = [1, SLOTS as u64, (SLOTS * SLOTS) as u64];
/// Horizon covered by all wheels, in milliseconds.
const HORIZON: u64 = SLOT_WIDTH[2] * SLOTS as u64;

type Entry<E> = (u64, u64, E); // (time ms, seq, payload)

struct Wheel<E> {
    slots: Vec<VecDeque<Entry<E>>>,
    /// Occupancy bitmap: bit i set ⇔ slot i non-empty.
    bitmap: [u64; SLOTS / 64],
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            bitmap: [0; SLOTS / 64],
        }
    }

    fn push(&mut self, slot: usize, entry: Entry<E>) {
        self.slots[slot].push_back(entry);
        self.bitmap[slot / 64] |= 1 << (slot % 64);
    }

    fn mark(&mut self, slot: usize) {
        if self.slots[slot].is_empty() {
            self.bitmap[slot / 64] &= !(1 << (slot % 64));
        }
    }

    /// First non-empty slot at or after `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut bits = self.bitmap[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.bitmap.len() {
                return None;
            }
            bits = self.bitmap[word];
        }
    }
}

/// A hierarchical timing-wheel with the same interface and semantics as
/// [`crate::EventQueue`].
pub struct WheelQueue<E> {
    // lint:allow(SNAP001): snapshots store a flat (ms, seq) list; restore re-places entries
    wheels: Vec<Wheel<E>>,
    /// Events beyond the wheel horizon.
    // lint:allow(SNAP001): snapshots store a flat (ms, seq) list; restore re-places entries
    overflow: BTreeMap<(u64, u64), E>,
    /// Absolute time (ms) of the current level-0 position.
    cursor: u64,
    /// Absolute slot number last cascaded, per level (avoids re-draining
    /// the same window on every pop).
    // lint:allow(SNAP001): cascade bookkeeping is re-derived as restore re-places entries
    cascaded: [u64; LEVELS],
    // lint:allow(D001): membership tests and counts only, never iterated
    pending: HashSet<u64>,
    // lint:allow(D001): membership tests only, never iterated. lint:allow(SNAP001): tombstones are compacted away at snapshot time; restore starts clean
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// Creates an empty queue anchored at `t = 0`.
    pub fn new() -> Self {
        WheelQueue {
            wheels: (0..LEVELS).map(|_| Wheel::new()).collect(),
            overflow: BTreeMap::new(),
            cursor: 0,
            cascaded: [u64::MAX; LEVELS],
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Number of live scheduled events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedules `payload` at `time` (must not precede the last popped
    /// event — the cursor only moves forward).
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let ms = time.as_millis().max(self.cursor);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.place(ms, seq, payload);
        EventHandle::from_raw(seq)
    }

    fn place(&mut self, ms: u64, seq: u64, payload: E) {
        let delta = ms - self.cursor;
        if delta < HORIZON {
            // Find the level whose span contains the delta.
            for (level, &width) in SLOT_WIDTH.iter().enumerate() {
                let span = width * SLOTS as u64;
                if delta < span {
                    let slot = ((ms / width) % SLOTS as u64) as usize;
                    let cursor_slot = ((self.cursor / width) % SLOTS as u64) as usize;
                    // The level is chosen by delta but the slot by absolute
                    // time, so once the cursor has advanced, a delta just
                    // under the level's span can wrap onto the cursor's own
                    // slot — a *next-rotation* entry that the in-order slot
                    // scan would mistake for the level minimum. Promote it
                    // one level up (the wider slot cannot wrap for this
                    // delta); past the top level it joins the overflow.
                    if slot == cursor_slot && delta >= width {
                        continue;
                    }
                    self.wheels[level].push(slot, (ms, seq, payload));
                    return;
                }
            }
        }
        // Beyond the horizon, or wrapped onto the cursor's top-level slot:
        // the overflow map keeps exact order.
        self.overflow.insert((ms, seq), payload);
    }

    /// Cancels a pending event; `true` if it was live.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let seq = handle.raw();
        if self.pending.remove(&seq) {
            self.cancelled.insert(seq);
            true
        } else {
            false
        }
    }

    /// Time of the next live event, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Cheapest correct implementation: pop and re-schedule would break
        // FIFO, so locate the minimum non-destructively.
        self.next_event_time().map(SimTime::from_millis)
    }

    fn next_event_time(&mut self) -> Option<u64> {
        if self.pending.is_empty() {
            return None;
        }
        loop {
            // Earliest live entry within the wheels, scanning each level's
            // ring in time order, then the overflow.
            let mut best: Option<u64> = None;
            for level in 0..LEVELS {
                if let Some(t) = self.earliest_live_in_level(level) {
                    best = Some(best.map_or(t, |b: u64| b.min(t)));
                }
            }
            if let Some(&(ms, seq)) = self.overflow.keys().next() {
                if self.cancelled.contains(&seq) {
                    let key = (ms, seq);
                    self.overflow.remove(&key);
                    self.cancelled.remove(&seq);
                    continue;
                }
                best = Some(best.map_or(ms, |b| b.min(ms)));
            }
            return best;
        }
    }

    /// Earliest live entry time at `level`. Within one level, ring order
    /// from the cursor slot is time order (wrapped slots hold the next
    /// rotation), so the first slot containing a live entry holds the
    /// level's minimum; fully-cancelled slots are purged as encountered.
    fn earliest_live_in_level(&mut self, level: usize) -> Option<u64> {
        let from = ((self.cursor / SLOT_WIDTH[level]) % SLOTS as u64) as usize;
        let scan = |range_start: usize, range_end: usize, queue: &mut Self| -> Option<u64> {
            let mut idx = range_start;
            while idx < range_end {
                let slot = queue.wheels[level].next_occupied(idx)?;
                if slot >= range_end {
                    return None;
                }
                let min = queue.wheels[level].slots[slot]
                    .iter()
                    .filter(|(_, seq, _)| !queue.cancelled.contains(seq))
                    .map(|&(ms, _, _)| ms)
                    .min();
                if min.is_some() {
                    return min;
                }
                // Slot is fully cancelled: purge it and keep scanning.
                for (_, seq, _) in queue.wheels[level].slots[slot].drain(..) {
                    queue.cancelled.remove(&seq);
                }
                queue.wheels[level].mark(slot);
                idx = slot + 1;
            }
            None
        };
        scan(from, SLOTS, self).or_else(|| scan(0, from, self))
    }

    /// Removes and returns the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, EventHandle, E)> {
        let target = self.next_event_time()?;
        self.advance_to(target);
        // After advancing, the event sits in level 0 at the cursor slot —
        // or in the overflow if it was beyond the horizon all along.
        let slot = (self.cursor % SLOTS as u64) as usize;
        loop {
            // FIFO across the horizon boundary: if the overflow holds a
            // live entry at the target time with a smaller sequence number
            // than everything in the wheel slot, it was scheduled first
            // and must pop first.
            if let Some(&(ms, seq)) = self.overflow.keys().next() {
                if ms == target && !self.cancelled.contains(&seq) {
                    let wheel_min_seq = self.wheels[0].slots[slot]
                        .iter()
                        .filter(|(_, s, _)| !self.cancelled.contains(s))
                        .map(|&(_, s, _)| s)
                        .min();
                    if wheel_min_seq.is_none_or(|w| seq < w) {
                        let payload = self
                            .overflow
                            .remove(&(ms, seq))
                            .expect("key observed above");
                        self.pending.remove(&seq);
                        return Some((
                            SimTime::from_millis(ms),
                            EventHandle::from_raw(seq),
                            payload,
                        ));
                    }
                }
            }
            let entry = self.wheels[0].slots[slot].pop_front();
            match entry {
                Some((ms, seq, payload)) => {
                    debug_assert_eq!(ms, self.cursor);
                    self.wheels[0].mark(slot);
                    if self.cancelled.remove(&seq) {
                        continue;
                    }
                    self.pending.remove(&seq);
                    return Some((
                        SimTime::from_millis(ms),
                        EventHandle::from_raw(seq),
                        payload,
                    ));
                }
                None => {
                    // The target event lives in the overflow exactly at the
                    // horizon edge; pull it directly.
                    let key = self.overflow.keys().next().copied()?;
                    debug_assert_eq!(key.0, target);
                    let payload = self.overflow.remove(&key)?;
                    let (_, seq) = key;
                    if self.cancelled.remove(&seq) {
                        continue;
                    }
                    self.pending.remove(&seq);
                    return Some((
                        SimTime::from_millis(key.0),
                        EventHandle::from_raw(seq),
                        payload,
                    ));
                }
            }
        }
    }

    /// Moves the cursor to `target`, cascading higher-level slots down as
    /// their windows are entered (each window at most once).
    fn advance_to(&mut self, target: u64) {
        debug_assert!(target >= self.cursor);
        while self.cursor < target {
            // Jump in level-0 slot units, cascading when crossing level
            // boundaries. A big jump first drains any level-1/2 slots whose
            // window covers `target`.
            let remaining = target - self.cursor;
            if remaining >= SLOT_WIDTH[1] {
                // Cross into the next level-1 slot: move the cursor to the
                // next level-1 boundary and cascade that slot down.
                let next_boundary = (self.cursor / SLOT_WIDTH[1] + 1) * SLOT_WIDTH[1];
                self.cursor = next_boundary.min(target);
                self.maybe_cascade(2);
                self.maybe_cascade(1);
            } else {
                self.cursor = target;
            }
        }
        // Ensure the level-1/2 slots covering the target are cascaded.
        self.maybe_cascade(2);
        self.maybe_cascade(1);
    }

    /// Cascades the slot covering the cursor at `level`, once per window.
    fn maybe_cascade(&mut self, level: usize) {
        let window = self.cursor / SLOT_WIDTH[level];
        if self.cascaded[level] == window {
            return;
        }
        self.cascaded[level] = window;
        self.cascade(level);
    }

    /// Re-places every entry in the current slot of `level` through
    /// [`WheelQueue::place`], which routes each to the deepest level whose
    /// slot does not wrap (entries whose time already passed go to the
    /// cursor slot of level 0).
    fn cascade(&mut self, level: usize) {
        let slot = ((self.cursor / SLOT_WIDTH[level]) % SLOTS as u64) as usize;
        let entries: Vec<Entry<E>> = self.wheels[level].slots[slot].drain(..).collect();
        self.wheels[level].mark(slot);
        for (ms, seq, payload) in entries {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.place(ms.max(self.cursor), seq, payload);
        }
    }
}

/// Canonical state: the cursor, `next_seq`, and the live entries written
/// sorted by `(time, seq)`. Slot assignments, occupancy bitmaps, and the
/// per-level cascade memo are *derived* state: restore re-places every
/// entry against the restored cursor, rebuilding the wheels from scratch —
/// which also compacts cancelled tombstones away while preserving issued
/// [`EventHandle`]s, exactly like the heap queue's codec.
impl<E: Persist> Persist for WheelQueue<E> {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.cursor);
        w.put_u64(self.next_seq);
        let mut live: Vec<(u64, u64, &E)> = Vec::with_capacity(self.pending.len());
        for wheel in &self.wheels {
            for slot in &wheel.slots {
                for (ms, seq, payload) in slot {
                    if self.pending.contains(seq) {
                        live.push((*ms, *seq, payload));
                    }
                }
            }
        }
        for (&(ms, seq), payload) in &self.overflow {
            if self.pending.contains(&seq) {
                live.push((ms, seq, payload));
            }
        }
        live.sort_by_key(|&(ms, seq, _)| (ms, seq));
        w.put_len(live.len());
        for (ms, seq, payload) in live {
            w.put_u64(ms);
            w.put_u64(seq);
            payload.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let cursor = r.get_u64()?;
        let next_seq = r.get_u64()?;
        let mut q = WheelQueue::new();
        q.cursor = cursor;
        q.next_seq = next_seq;
        let n = r.get_len()?;
        for _ in 0..n {
            let ms = r.get_u64()?;
            let seq = r.get_u64()?;
            let payload = E::restore(r)?;
            if seq >= next_seq {
                return Err(PersistError::Corrupt(format!(
                    "timer seq {seq} not below next_seq {next_seq}"
                )));
            }
            if !q.pending.insert(seq) {
                return Err(PersistError::Corrupt(format!("duplicate timer seq {seq}")));
            }
            // Live entries never precede the cursor, but a cascade may have
            // left `ms` below it in the source wheel; clamp like cascade does.
            q.place(ms.max(cursor), seq, payload);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut q = WheelQueue::new();
        // One event per level plus overflow.
        q.schedule(t(5), "l0");
        q.schedule(t(SLOT_WIDTH[1] * 3 + 7), "l1");
        q.schedule(t(SLOT_WIDTH[2] * 2 + 11), "l2");
        q.schedule(t(HORIZON + 13), "overflow");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["l0", "l1", "l2", "overflow"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = WheelQueue::new();
        for i in 0..20 {
            q.schedule(t(1000), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_semantics_match_event_queue() {
        let mut q = WheelQueue::new();
        let h1 = q.schedule(t(10), "a");
        let h2 = q.schedule(t(20), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1));
        assert_eq!(q.len(), 1);
        let (at, handle, p) = q.pop().unwrap();
        assert_eq!((at, p), (t(20), "b"));
        assert_eq!(handle, h2);
        assert!(!q.cancel(h2), "already fired");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = WheelQueue::new();
        q.schedule(t(500), ());
        assert_eq!(q.peek_time(), Some(t(500)));
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = WheelQueue::new();
        q.schedule(t(100), 1);
        assert_eq!(q.pop().unwrap().2, 1);
        // Scheduling "in the past" clamps to the cursor.
        q.schedule(t(50), 2);
        q.schedule(t(150), 3);
        assert_eq!(q.pop().unwrap().0, t(100));
        assert_eq!(q.pop().unwrap().2, 3);
    }

    #[test]
    fn fifo_holds_across_the_horizon_boundary() {
        let mut q = WheelQueue::new();
        // A is scheduled first, beyond the horizon (→ overflow).
        let target = HORIZON + 500;
        q.schedule(t(target), "A");
        // Advance the cursor by consuming an earlier event, then schedule B
        // at the same absolute time — now within the horizon (→ wheel).
        q.schedule(t(600_000), "tick");
        assert_eq!(q.pop().unwrap().2, "tick");
        q.schedule(t(target), "B");
        assert_eq!(q.pop().unwrap().2, "A", "scheduled first, pops first");
        assert_eq!(q.pop().unwrap().2, "B");
        assert!(q.is_empty());
    }

    #[test]
    fn horizon_boundary_from_origin() {
        // HORIZON-1 is the last wheel-resident delta; HORIZON and beyond
        // belong to the overflow. All three must pop in time order.
        let mut q = WheelQueue::new();
        q.schedule(t(HORIZON + 1), "past");
        q.schedule(t(HORIZON), "edge");
        q.schedule(t(HORIZON - 1), "inside");
        assert_eq!(q.peek_time(), Some(t(HORIZON - 1)));
        assert_eq!(q.pop().unwrap().2, "inside");
        assert_eq!(q.pop().unwrap().2, "edge");
        assert_eq!(q.pop().unwrap().2, "past");
        assert!(q.is_empty());
    }

    #[test]
    fn horizon_edge_after_cursor_advance() {
        // With the cursor advanced off zero, a delta just under HORIZON
        // wraps onto the cursor's own top-level slot (next rotation). The
        // level scan must not mistake it for the level minimum.
        let mut q = WheelQueue::new();
        q.schedule(t(1000), "tick");
        assert_eq!(q.pop().unwrap().2, "tick");
        // delta = HORIZON - 1000: wheel-resident, absolute slot wraps to 0.
        q.schedule(t(HORIZON), "edge");
        q.schedule(t(SLOT_WIDTH[2] * 3 + 5), "early");
        assert_eq!(q.peek_time(), Some(t(SLOT_WIDTH[2] * 3 + 5)));
        assert_eq!(q.pop().unwrap().2, "early");
        assert_eq!(q.pop().unwrap().2, "edge");
        assert!(q.is_empty());
    }

    #[test]
    fn horizon_boundaries_after_cursor_advance_pop_in_order() {
        let mut q = WheelQueue::new();
        q.schedule(t(300), "tick");
        assert_eq!(q.pop().unwrap().2, "tick");
        let base = 300;
        q.schedule(t(base + HORIZON + 1), "past");
        q.schedule(t(base + HORIZON), "edge");
        q.schedule(t(base + HORIZON - 1), "inside");
        assert_eq!(q.peek_time(), Some(t(base + HORIZON - 1)));
        assert_eq!(q.pop().unwrap().2, "inside");
        assert_eq!(q.pop().unwrap().2, "edge");
        assert_eq!(q.pop().unwrap().2, "past");
        assert!(q.is_empty());
    }

    fn round_trip<E: Persist + Clone>(q: &WheelQueue<E>) -> WheelQueue<E> {
        let mut w = Writer::new();
        q.persist(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        let restored = WheelQueue::restore(&mut r).unwrap();
        r.finish().unwrap();
        restored
    }

    #[test]
    fn restore_at_horizon_boundary_fires_in_original_order() {
        // The PR 4 cascade edge: with the cursor advanced off zero, deltas
        // straddling HORIZON split between wheel residency (with wrap-around
        // promotion) and the overflow map. A snapshot taken in that regime
        // must restore to a wheel that fires the same timers in the same
        // order as the original.
        let mut q = WheelQueue::new();
        q.schedule(t(1000), 0u64);
        assert_eq!(q.pop().unwrap().2, 0);
        let base = 1000;
        // Overflow-resident first, then the wheel-resident ones, including
        // the wrap-onto-cursor-slot promotion case (delta = HORIZON - base).
        q.schedule(t(base + HORIZON + 1), 1u64);
        q.schedule(t(base + HORIZON), 2u64);
        q.schedule(t(HORIZON), 3u64);
        q.schedule(t(base + HORIZON - 1), 4u64);
        q.schedule(t(base + 5), 5u64);
        let cancelled = q.schedule(t(base + HORIZON), 6u64);
        q.schedule(t(base + HORIZON), 7u64); // same instant as 2: FIFO by seq
        q.cancel(cancelled);

        let mut restored = round_trip(&q);
        assert_eq!(restored.len(), q.len());
        let original: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let replayed: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(
            original
                .iter()
                .map(|(at, _, p)| (*at, *p))
                .collect::<Vec<_>>(),
            vec![
                (t(base + 5), 5),
                (t(HORIZON), 3),
                (t(base + HORIZON - 1), 4),
                (t(base + HORIZON), 2),
                (t(base + HORIZON), 7),
                (t(base + HORIZON + 1), 1),
            ]
        );
        assert_eq!(original, replayed, "restored wheel must fire identically");
    }

    #[test]
    fn restore_mid_drain_matches_original_under_churn() {
        // Snapshot after every pop of a randomized near-horizon workload and
        // check the restored wheel drains exactly like the original.
        let mut q = WheelQueue::new();
        let mut rng = crate::SimRng::seed_from_u64(0x5EED);
        let mut now = 0u64;
        for i in 0..64u64 {
            let delta = rng.next_u64() % (HORIZON + HORIZON / 2);
            q.schedule(t(now + delta), i);
        }
        while let Some((at, _, p)) = q.pop() {
            now = at.as_millis();
            let mut restored = round_trip(&q);
            assert_eq!(restored.peek_time(), q.peek_time(), "after popping {p}");
            // Continue from the restored copy on every eighth *original*
            // payload to prove new schedules land identically post-restore.
            // Injected payloads (≥ 1000) must not re-trigger this, or every
            // injected pop would spawn another and the drain never ends.
            if p % 8 == 0 && p < 1000 && !q.is_empty() {
                q = restored;
                q.schedule(t(now + 10), 1000 + p);
            }
        }
    }

    #[test]
    fn interleaved_schedules_near_horizon_match_model() {
        // Drive the wheel against a BTreeMap model with schedule deltas
        // spanning the horizon while the cursor keeps moving, which is
        // exactly the regime where slot wrap-around can corrupt ordering.
        let mut q = WheelQueue::new();
        let mut rng = crate::SimRng::seed_from_u64(0xEA2D5);
        let mut model: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for round in 0..200u32 {
            for i in 0..8 {
                let delta = rng.next_u64() % (HORIZON + HORIZON / 4);
                let ms = now + delta;
                q.schedule(t(ms), round * 8 + i);
                model.insert((ms, seq), round * 8 + i);
                seq += 1;
            }
            for _ in 0..6 {
                let (at, _, p) = q.pop().unwrap();
                let (&key, &id) = model.iter().next().unwrap();
                assert_eq!((at.as_millis(), p), (key.0, id));
                model.remove(&key);
                now = at.as_millis();
            }
        }
        while let Some((at, _, p)) = q.pop() {
            let (&key, &id) = model.iter().next().unwrap();
            assert_eq!((at.as_millis(), p), (key.0, id));
            model.remove(&key);
        }
        assert!(model.is_empty());
    }

    #[test]
    fn dense_schedule_pop_matches_sorted_order() {
        let mut q = WheelQueue::new();
        let mut rng = crate::SimRng::seed_from_u64(9);
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for i in 0..5000 {
            let ms = rng.next_u64() % (HORIZON * 2);
            q.schedule(t(ms), i);
            expected.push((ms, i));
        }
        expected.sort();
        let mut popped = Vec::new();
        while let Some((at, _, p)) = q.pop() {
            popped.push((at.as_millis(), p));
        }
        assert_eq!(popped.len(), expected.len());
        assert_eq!(popped, expected);
    }
}
