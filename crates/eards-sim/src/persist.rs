//! Snapshot serialization: the [`Persist`] trait and its binary codec.
//!
//! Every stateful layer of the simulator implements [`Persist`] so a whole
//! run can be checkpointed mid-flight and resumed bit-identically. The
//! format is a hand-rolled, versioned, length-prefixed binary codec — no
//! serde, matching the hand-rolled exporters in `eards-obs::export` — with
//! these conventions:
//!
//! * all integers are **little-endian** fixed width; `usize` is encoded as
//!   `u64`;
//! * floats are encoded as their IEEE-754 bit pattern (`f64::to_bits`), so
//!   restore is exact, NaN payloads included;
//! * variable-length data (strings, sequences, nested blocks) carries a
//!   `u32` length prefix;
//! * enums are encoded as a `u8` discriminant tag followed by the variant's
//!   fields;
//! * a snapshot file starts with the 8-byte magic [`SNAPSHOT_MAGIC`]
//!   followed by a version byte ([`SNAPSHOT_VERSION`]); readers reject
//!   unknown versions instead of guessing.
//!
//! Only **canonical** state is serialized. Transient state — recycled
//! scratch buffers, observability sinks, derived caches — is rebuilt on
//! restore; each implementer documents its split. Snapshot code must be
//! deterministic: no wall-clock reads, no ambient RNGs (lint rule `D005`
//! enforces this inside `impl Persist` blocks).

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Magic bytes opening every snapshot produced by this workspace.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EARDSNAP";

/// Current snapshot format version. Bump on any encoding change; readers
/// reject snapshots written by other versions.
///
/// v2: the score-based scheduler's policy block gained the degradation-
/// ladder driver state (rung tag + work EWMA + exhaustion flag), and the
/// runner grew the backpressure `parked` queue — v1 snapshots no longer
/// decode and are rejected cleanly here instead of mis-parsing.
///
/// v3: the score-based scheduler's policy block gained the shard
/// round-robin cursor (the queue-assignment state of the sharded
/// hierarchical solver), so v2 policy blocks no longer decode.
pub const SNAPSHOT_VERSION: u8 = 3;

/// A type whose canonical state can be written to and rebuilt from the
/// snapshot codec.
///
/// The contract is exact round-tripping: `restore(persist(x)) == x` for
/// every observable behaviour of the type (RNG streams continue where they
/// left off, queues pop in the same order, counters keep counting).
pub trait Persist: Sized {
    /// Appends this value's canonical state to `w`.
    fn persist(&self, w: &mut Writer);

    /// Rebuilds a value from `r`, consuming exactly the bytes `persist`
    /// wrote.
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input ended before a field could be read.
    UnexpectedEof {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Number of bytes the read needed.
        needed: usize,
    },
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The input's version byte is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u8),
    /// A field decoded to a value that violates an invariant.
    Corrupt(String),
    /// Decoding finished with unread bytes left over.
    TrailingBytes(usize),
    /// A sequence was too long for its `u32` length prefix. Raised on the
    /// *encoding* side: the [`Writer`] records it and
    /// [`Writer::into_bytes`] surfaces it instead of emitting a snapshot
    /// with a silently wrong length.
    SequenceTooLong(usize),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof { offset, needed } => {
                write!(
                    f,
                    "unexpected end of snapshot at byte {offset} (needed {needed} more)"
                )
            }
            PersistError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            PersistError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes after the last field")
            }
            PersistError::SequenceTooLong(n) => {
                write!(f, "sequence of {n} entries exceeds the u32 length prefix")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Append-only encoder for the snapshot codec.
///
/// Encoding itself is infallible (`Persist::persist` takes no `Result`),
/// but a pathological input — a sequence longer than the `u32` length
/// prefix can express — must not produce a silently corrupt snapshot.
/// The writer therefore records the first such error *stickily* and
/// [`Writer::into_bytes`] refuses to hand out the bytes, so every
/// snapshot that reaches disk or a restore path is well-formed.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
    err: Option<PersistError>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes — or the first
    /// encoding error recorded by a `put_*` call, in which case the
    /// (corrupt) bytes are discarded.
    pub fn into_bytes(self) -> Result<Vec<u8>, PersistError> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.buf),
        }
    }

    /// The first encoding error recorded so far, if any.
    pub fn error(&self) -> Option<&PersistError> {
        self.err.as_ref()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a sequence length prefix (`u32`).
    ///
    /// If `n` exceeds `u32::MAX` the writer records a
    /// [`PersistError::SequenceTooLong`] (first error wins) and encodes a
    /// zero prefix; [`Writer::into_bytes`] will then return the error
    /// instead of the bytes, so the malformed snapshot never escapes.
    pub fn put_len(&mut self, n: usize) {
        match u32::try_from(n) {
            Ok(n) => self.put_u32(n),
            Err(_) => {
                if self.err.is_none() {
                    self.err = Some(PersistError::SequenceTooLong(n));
                }
                // Placeholder so the buffer stays structurally aligned for
                // any further writes; the bytes are discarded anyway.
                self.put_u32(0);
            }
        }
    }

    /// Writes a length-prefixed sequence of [`Persist`] values.
    pub fn put_seq<T: Persist>(&mut self, items: &[T]) {
        self.put_len(items.len());
        for item in items {
            item.persist(self);
        }
    }

    /// Writes an `Option` as a presence byte plus the value.
    pub fn put_opt<T: Persist>(&mut self, v: &Option<T>) {
        match v {
            None => self.put_bool(false),
            Some(x) => {
                self.put_bool(true);
                x.persist(self);
            }
        }
    }

    /// Writes a length-prefixed nested block filled in by `f`, so readers
    /// can bound (or skip) a sub-payload whose internal layout they do not
    /// control — e.g. policy-private state.
    pub fn put_block(&mut self, f: impl FnOnce(&mut Writer)) {
        let mut inner = Writer::new();
        f(&mut inner);
        // An error recorded inside the block is as fatal as one outside:
        // propagate it to this writer (first error wins).
        if self.err.is_none() {
            self.err = inner.err.take();
        }
        self.put_len(inner.buf.len());
        self.buf.extend_from_slice(&inner.buf);
    }
}

/// Cursor-based decoder for the snapshot codec.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), PersistError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(PersistError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::UnexpectedEof {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        // lint:allow(P001): take(4) returned exactly 4 bytes; infallible
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        // lint:allow(P001): take(8) returned exactly 8 bytes; infallible
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| PersistError::Corrupt("usize field exceeds platform width".into()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("string field is not UTF-8".into()))
    }

    /// Reads a sequence length prefix, bounded by the remaining input so a
    /// corrupt count cannot trigger a huge allocation.
    pub fn get_len(&mut self) -> Result<usize, PersistError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(PersistError::Corrupt(format!(
                "length prefix {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed sequence of [`Persist`] values.
    pub fn get_seq<T: Persist>(&mut self) -> Result<Vec<T>, PersistError> {
        let n = self.get_len()?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(T::restore(self)?);
        }
        Ok(items)
    }

    /// Reads an `Option` written by [`Writer::put_opt`].
    pub fn get_opt<T: Persist>(&mut self) -> Result<Option<T>, PersistError> {
        if self.get_bool()? {
            Ok(Some(T::restore(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed nested block written by
    /// [`Writer::put_block`], returning a sub-reader confined to it. The
    /// parent cursor advances past the whole block regardless of how much
    /// of it the sub-reader consumes.
    pub fn get_block(&mut self) -> Result<Reader<'a>, PersistError> {
        let n = self.get_len()?;
        Ok(Reader::new(self.take(n)?))
    }
}

/// Writes the snapshot file preamble: magic bytes plus version.
pub fn write_header(w: &mut Writer) {
    w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
    w.put_u8(SNAPSHOT_VERSION);
}

/// Validates the snapshot file preamble, returning the version byte.
pub fn read_header(r: &mut Reader<'_>) -> Result<u8, PersistError> {
    let magic = r
        .take(SNAPSHOT_MAGIC.len())
        .map_err(|_| PersistError::BadMagic)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.get_u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Writes `bytes` to `path` atomically: the data goes to `<path>.tmp`
/// first, is fsynced, and is then renamed over the target. A reader (or
/// a resume after a crash) therefore sees either the complete previous
/// file or the complete new one — never a torn write. The checkpoint
/// and sweep layers rely on this: a worker SIGKILLed mid-checkpoint must
/// not leave a half-written file that a retry would try to restore.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("write_atomic: {} has no file name", path.display()),
            ))
        }
    };
    let written = (|| {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    })();
    // Any failure must leave the filesystem as if the call never
    // happened: the target untouched and no orphaned `.tmp` debris for a
    // retry (or a directory listing) to trip over.
    if let Err(e) = written {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

macro_rules! persist_via {
    ($t:ty, $put:ident, $get:ident) => {
        impl Persist for $t {
            fn persist(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
                r.$get()
            }
        }
    };
}

persist_via!(u8, put_u8, get_u8);
persist_via!(u32, put_u32, get_u32);
persist_via!(u64, put_u64, get_u64);
persist_via!(usize, put_usize, get_usize);
persist_via!(f64, put_f64, get_f64);
persist_via!(bool, put_bool, get_bool);

impl Persist for String {
    fn persist(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_str()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut Writer) {
        w.put_seq(self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_seq()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut Writer) {
        w.put_opt(self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_opt()
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, w: &mut Writer) {
        self.0.persist(w);
        self.1.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl Persist for SimTime {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.as_millis());
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SimTime::from_millis(r.get_u64()?))
    }
}

impl Persist for SimDuration {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.as_millis());
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SimDuration::from_millis(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("héllo");
        SimTime::from_millis(123_456).persist(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(
            SimTime::restore(&mut r).unwrap(),
            SimTime::from_millis(123_456)
        );
        r.finish().unwrap();
    }

    #[test]
    fn sequences_options_and_blocks_round_trip() {
        let mut w = Writer::new();
        w.put_seq(&[1u64, 2, 3]);
        w.put_opt(&Some(7.5f64));
        w.put_opt::<u32>(&None);
        w.put_block(|w| w.put_str("nested"));
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_seq::<u64>().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_opt::<f64>().unwrap(), Some(7.5));
        assert_eq!(r.get_opt::<u32>().unwrap(), None);
        let mut block = r.get_block().unwrap();
        assert_eq!(block.get_str().unwrap(), "nested");
        block.finish().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let mut w = Writer::new();
        write_header(&mut w);
        let good = w.into_bytes().unwrap();
        assert_eq!(
            read_header(&mut Reader::new(&good)).unwrap(),
            SNAPSHOT_VERSION
        );

        assert_eq!(
            read_header(&mut Reader::new(b"NOTASNAP\x01")),
            Err(PersistError::BadMagic)
        );
        let mut bumped = good.clone();
        *bumped.last_mut().unwrap() = SNAPSHOT_VERSION + 1;
        assert_eq!(
            read_header(&mut Reader::new(&bumped)),
            Err(PersistError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
        );
        assert_eq!(
            read_header(&mut Reader::new(b"EAR")),
            Err(PersistError::BadMagic)
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes().unwrap();
        let mut short = Reader::new(&bytes[..5]);
        assert_eq!(
            short.get_u64(),
            Err(PersistError::UnexpectedEof {
                offset: 0,
                needed: 3
            })
        );
        let mut long = Reader::new(&bytes);
        long.get_u32().unwrap();
        assert_eq!(long.finish(), Err(PersistError::TrailingBytes(4)));
    }

    #[test]
    fn corrupt_length_prefix_is_bounded() {
        // A length prefix claiming more bytes than remain must fail fast
        // instead of allocating.
        let mut w = Writer::new();
        w.put_u32(1_000_000);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_seq::<u64>(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn oversized_sequence_is_a_sticky_error_not_a_panic() {
        let too_long = u32::MAX as usize + 1;
        let mut w = Writer::new();
        w.put_len(too_long);
        // Writes after the failure still land; the error sticks.
        w.put_u64(42);
        assert_eq!(w.error(), Some(&PersistError::SequenceTooLong(too_long)));
        assert_eq!(w.into_bytes(), Err(PersistError::SequenceTooLong(too_long)));
    }

    #[test]
    fn block_errors_propagate_to_the_outer_writer() {
        let mut w = Writer::new();
        w.put_block(|inner| inner.put_len(u32::MAX as usize + 7));
        assert_eq!(
            w.into_bytes(),
            Err(PersistError::SequenceTooLong(u32::MAX as usize + 7))
        );

        // First error wins over a later one in a block.
        let mut w = Writer::new();
        w.put_len(u32::MAX as usize + 1);
        w.put_block(|inner| inner.put_len(u32::MAX as usize + 2));
        assert_eq!(
            w.into_bytes(),
            Err(PersistError::SequenceTooLong(u32::MAX as usize + 1))
        );
    }
}
