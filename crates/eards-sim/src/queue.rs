//! The pending-event set of the discrete-event engine.
//!
//! A binary min-heap ordered by `(time, sequence)`: two events scheduled for
//! the same instant pop in scheduling order, which makes runs reproducible
//! regardless of heap internals. Cancellation is *lazy*: a cancelled handle
//! goes into a tombstone set and the entry is discarded when it surfaces,
//! keeping both `schedule` and `cancel` O(log n) / O(1).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::time::SimTime;

/// An opaque handle identifying one scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

impl EventHandle {
    /// Builds a handle from a raw sequence number (crate-internal: the
    /// alternative queue implementations share the handle type).
    pub(crate) fn from_raw(seq: u64) -> Self {
        EventHandle(seq)
    }

    /// The raw sequence number.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Manual impls: the heap is a max-heap, so reverse the natural order to get
// earliest-first, and among equal times, lowest sequence first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: the core data structure of the DES engine.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers that are scheduled and not cancelled.
    // lint:allow(D001): membership tests and counts only, never iterated
    pending: HashSet<u64>,
    /// Tombstones: cancelled entries still physically in the heap.
    // lint:allow(D001): membership tests only, never iterated. lint:allow(SNAP001): tombstones are compacted away at snapshot time; restore starts clean
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedules `payload` at `time`, returning a handle for cancellation.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next live event as `(time, handle, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventHandle, E)> {
        self.skim_cancelled();
        let entry = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        Some((entry.time, EventHandle(entry.seq), entry.payload))
    }

    /// Drops cancelled entries sitting at the top of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl Persist for EventHandle {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(EventHandle(r.get_u64()?))
    }
}

/// Canonical state: `next_seq` plus the live entries with their original
/// sequence numbers, written sorted by `(time, seq)`. Cancelled tombstones
/// are compacted away (restore starts with an empty tombstone set), but
/// sequence numbers are preserved so [`EventHandle`]s held by callers
/// remain valid across a snapshot.
impl<E: Persist> Persist for EventQueue<E> {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.next_seq);
        let mut live: Vec<&Entry<E>> = self
            .heap
            .iter()
            .filter(|e| self.pending.contains(&e.seq))
            .collect();
        live.sort_by_key(|e| (e.time, e.seq));
        w.put_len(live.len());
        for entry in live {
            entry.time.persist(w);
            w.put_u64(entry.seq);
            entry.payload.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let next_seq = r.get_u64()?;
        let n = r.get_len()?;
        let mut heap = BinaryHeap::with_capacity(n);
        let mut pending = HashSet::with_capacity(n);
        for _ in 0..n {
            let time = SimTime::restore(r)?;
            let seq = r.get_u64()?;
            let payload = E::restore(r)?;
            if seq >= next_seq {
                return Err(PersistError::Corrupt(format!(
                    "event seq {seq} not below next_seq {next_seq}"
                )));
            }
            if !pending.insert(seq) {
                return Err(PersistError::Corrupt(format!("duplicate event seq {seq}")));
            }
            heap.push(Entry { time, seq, payload });
        }
        Ok(EventQueue {
            heap,
            pending,
            cancelled: HashSet::new(),
            next_seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(h1), "double cancel must fail");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_fails() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), ());
        let (_, popped, _) = q.pop().unwrap();
        assert_eq!(popped, h);
        assert!(!q.cancel(h));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_handle_fails() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(12345)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "dead");
        q.schedule(t(2), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("live"));
    }

    #[test]
    fn persist_round_trip_preserves_order_and_handles() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 50u64);
        let doomed = q.schedule(t(1), 10u64);
        q.schedule(t(3), 30u64);
        let live = q.schedule(t(3), 31u64);
        q.cancel(doomed);

        let mut w = crate::persist::Writer::new();
        q.persist(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut r = crate::persist::Reader::new(&bytes);
        let mut restored: EventQueue<u64> = EventQueue::restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.len(), q.len());
        // Handles issued before the snapshot still cancel the right entry.
        assert!(restored.cancel(live));
        assert!(q.cancel(live));
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b);
        // New schedules in both queues keep issuing identical handles.
        assert_eq!(q.schedule(t(9), 90u64), restored.schedule(t(9), 90u64));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10);
        q.schedule(t(20), 20);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(10));
        q.schedule(t(15), 15);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(15));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(20));
        assert_eq!(q.pop().map(|(ti, _, _)| ti), None);
        let _ = SimDuration::ZERO; // keep import used in this cfg
    }
}
