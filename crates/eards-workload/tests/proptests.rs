//! Property tests for workload generation and SWF parsing.

use proptest::prelude::*;

use eards_sim::SimDuration;
use eards_workload::{generate, parse_swf, SwfOptions, SynthConfig, Trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the configuration, generated traces are structurally
    /// valid: sorted, in-span, node-fitting, paper-range deadlines.
    #[test]
    fn generated_traces_are_well_formed(
        seed in any::<u64>(),
        hours in 1u64..72,
        rate in 1.0f64..40.0,
        amplitude in 0.0f64..0.9,
        weekend in 0.1f64..1.0,
    ) {
        let cfg = SynthConfig {
            span: SimDuration::from_hours(hours),
            events_per_hour: rate,
            diurnal_amplitude: amplitude,
            weekend_factor: weekend,
            ..SynthConfig::grid5000_week()
        };
        let trace = generate(&cfg, seed);
        let jobs = trace.jobs();
        for w in jobs.windows(2) {
            prop_assert!(w[0].submit <= w[1].submit, "unsorted");
        }
        for j in jobs {
            prop_assert!(j.submit.saturating_since(eards_sim::SimTime::ZERO) <= cfg.span);
            prop_assert!(j.cpu.points() >= 1 && j.cpu.points() <= 400);
            prop_assert!((1.2..=2.0).contains(&j.deadline_factor));
            prop_assert!(j.dedicated >= SimDuration::from_secs(30));
            prop_assert!(j.mem.mib() >= 256);
        }
        // Ids are dense 0..n.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id.raw()).collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(*id, i as u64);
        }
    }

    /// Trace stats are consistent with their definitions.
    #[test]
    fn trace_stats_consistent(seed in any::<u64>(), hours in 2u64..48) {
        let cfg = SynthConfig {
            span: SimDuration::from_hours(hours),
            ..SynthConfig::grid5000_week()
        };
        let trace = generate(&cfg, seed);
        let stats = trace.stats();
        prop_assert_eq!(stats.jobs, trace.len());
        let manual: f64 = trace
            .jobs()
            .iter()
            .map(|j| j.total_work() / 100.0 / 3600.0)
            .sum();
        prop_assert!((stats.total_cpu_hours - manual).abs() < 1e-9);
        if let Some(max) = trace.jobs().iter().map(|j| j.cpu.points()).max() {
            prop_assert_eq!(stats.max_cpu_demand, max);
        }
    }

    /// SWF parsing never panics on structurally valid numeric lines, and
    /// produced jobs respect the option caps.
    #[test]
    fn swf_parse_total(
        rows in proptest::collection::vec(
            (0.0f64..1e6, -1.0f64..1e5, 1.0f64..128.0, -1.0f64..1e6, 0i64..1000),
            0..30,
        ),
    ) {
        let mut text = String::from("; header\n");
        for (submit, run, procs, req_time, user) in &rows {
            text.push_str(&format!(
                "1 {submit} 0 {run} {procs} -1 -1 {procs} {req_time} -1 1 {user} 1 1 1 1 -1 -1\n"
            ));
        }
        let opts = SwfOptions::default();
        let trace: Trace = parse_swf(&text, &opts).expect("valid lines must parse");
        for j in trace.jobs() {
            prop_assert!(j.cpu.points() <= opts.max_cpu);
            prop_assert!(j.dedicated > SimDuration::ZERO);
            let (lo, hi) = opts.deadline_factor_range;
            prop_assert!((lo..=hi).contains(&j.deadline_factor));
        }
        prop_assert!(trace.len() <= rows.len());
    }
}
