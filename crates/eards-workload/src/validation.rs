//! The simulator-validation workload of Fig. 1.
//!
//! §IV-B validates the paper's simulator against a real node executing "a
//! 1300 seconds workload that is composed by seven different tasks that
//! explore the most typical situations we can have in a real cloud
//! execution". The exact seven tasks are not published; this module defines
//! a deterministic 7-task, 1300-second workload with the same coverage —
//! single-VM phases, stacked concurrent VMs up to the node's 400% CPU,
//! a full-load spike, overlapping arrivals during creation, and an idle
//! tail — on one 4-way node.

use eards_model::{Cpu, Job, JobId, Mem};
use eards_sim::{SimDuration, SimTime};

use crate::trace::Trace;

/// Total length of the validation scenario.
pub const VALIDATION_SPAN: SimDuration = SimDuration::from_secs(1300);

/// Builds the seven-task validation workload (deterministic; no RNG).
pub fn validation_workload() -> Trace {
    // (submit s, cpu %, dedicated s, deadline factor)
    // Deadlines are generous: validation measures power, not SLAs.
    let spec: [(u64, u32, u64, f64); 7] = [
        (0, 100, 300, 2.0),    // T1: lone single-vCPU task
        (50, 200, 250, 2.0),   // T2: joins T1 → 300% phase
        (350, 400, 150, 2.0),  // T3: full-node spike (400%)
        (550, 100, 450, 2.0),  // T4: long moderate task
        (600, 200, 300, 2.0),  // T5: overlaps T4 → 300%
        (950, 300, 200, 2.0),  // T6: joins T4 tail → contention window
        (1150, 100, 100, 2.0), // T7: small task before the idle tail
    ];
    let jobs = spec
        .iter()
        .enumerate()
        .map(|(i, &(submit, cpu, dur, factor))| {
            Job::new(
                // lint:allow(C001): loop index to JobId, not time arithmetic
                JobId(i as u64),
                SimTime::from_secs(submit),
                Cpu(cpu),
                Mem::gib(1),
                SimDuration::from_secs(dur),
                factor,
            )
        })
        .collect();
    Trace::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_tasks_within_span() {
        let t = validation_workload();
        assert_eq!(t.len(), 7);
        for j in t.jobs() {
            let end = j.submit + j.dedicated;
            assert!(
                end <= SimTime::ZERO + VALIDATION_SPAN,
                "{} would run past the 1300 s window even uncontended",
                j.id
            );
            assert!(j.cpu.points() <= 400, "must fit one 4-way node");
        }
    }

    #[test]
    fn covers_typical_situations() {
        let t = validation_workload();
        // A full-load phase exists…
        assert!(t.jobs().iter().any(|j| j.cpu == Cpu(400)));
        // …and concurrent phases (overlapping intervals).
        let overlaps = t.jobs().iter().enumerate().any(|(i, a)| {
            t.jobs()
                .iter()
                .skip(i + 1)
                .any(|b| b.submit < a.submit + a.dedicated && a.submit < b.submit + b.dedicated)
        });
        assert!(overlaps);
        // Deterministic: two builds are identical.
        let t2 = validation_workload();
        assert_eq!(t.jobs(), t2.jobs());
    }

    #[test]
    fn peak_concurrent_demand_exceeds_node() {
        // The 950–1150 s window (T4+T6 tails) must create contention so the
        // validation exercises the credit scheduler: 100+300(+…) vs 400 cap
        // *while a creation overhead is in flight*.
        let t = validation_workload();
        let demand_at = |secs: u64| -> u32 {
            let at = SimTime::from_secs(secs);
            t.jobs()
                .iter()
                .filter(|j| j.submit <= at && at < j.submit + j.dedicated)
                .map(|j| j.cpu.points())
                .sum()
        };
        assert!(demand_at(100) >= 300);
        assert!(demand_at(960) >= 400);
        assert_eq!(demand_at(1299), 0, "idle tail after the last completion");
    }
}
