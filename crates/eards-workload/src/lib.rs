//! # eards-workload — workload generation and trace parsing
//!
//! The paper evaluates on "slightly modified real Grid traces" — a
//! Grid5000 week from the Grid Workloads Archive (§IV, §V). This crate
//! provides the workload layer of the reproduction:
//!
//! * [`synth`] — a synthetic Grid5000-like generator (non-homogeneous
//!   Poisson arrivals, diurnal/weekend modulation, heavy-tailed grid job
//!   mix) calibrated to the paper's published load level. This is the
//!   documented substitution for the non-redistributable real trace.
//! * [`parse_swf`] / [`write_swf`] — Standard Workload Format I/O, so a real archive trace
//!   can be dropped in.
//! * [`validation_workload`] — the deterministic 7-task, 1300-second
//!   scenario reproducing the simulator-validation experiment of Fig. 1.
//! * [`Trace`] / [`TraceStats`] — the common trace type.

#![warn(missing_docs)]

mod analysis;
mod swf;
pub mod synth;
mod trace;
pub mod typology;
mod validation;

pub use analysis::{analyze, TraceAnalysis};
pub use swf::{parse_swf, write_swf, SwfError, SwfOptions};
pub use synth::{generate, SynthConfig};
pub use trace::{Trace, TraceStats};
pub use typology::JobClass;
pub use validation::{validation_workload, VALIDATION_SPAN};
