//! Parser for the Standard Workload Format (SWF) used by the Grid
//! Workloads Archive and the Parallel Workloads Archive.
//!
//! The paper drives its evaluation with a real Grid5000 trace from the
//! archive (§V, ref. [31]). This parser lets a downstream user drop that
//! trace (or any SWF file) into the simulator in place of the synthetic
//! workload. Each data line has 18 whitespace-separated fields; `-1`
//! denotes "unknown"; lines starting with `;` are comments/headers.

use eards_model::{Cpu, Job, JobId, Mem};
use eards_sim::{SimDuration, SimTime};

use crate::trace::Trace;

/// Errors raised while parsing an SWF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than the 18 mandatory fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 1-based field index.
        field: usize,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::TooFewFields { line, found } => {
                write!(f, "line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadNumber { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Options controlling the SWF → [`Trace`] mapping.
#[derive(Debug, Clone)]
pub struct SwfOptions {
    /// CPU percent points granted per requested processor (100 = one full
    /// core, matching the paper's one-vCPU-per-processor model).
    pub cpu_per_processor: u32,
    /// Cap on a single job's CPU demand, so jobs fit the node size
    /// (parallel jobs wider than one node are truncated — the paper's
    /// simulator places one VM per job).
    pub max_cpu: u32,
    /// Memory assigned when the trace has no usable memory field.
    pub default_mem: Mem,
    /// Range of deadline factors assigned (deterministically, by user id)
    /// across users: §V uses 1.2–2.
    pub deadline_factor_range: (f64, f64),
    /// Drop jobs whose runtime is unknown or zero.
    pub skip_zero_runtime: bool,
}

impl Default for SwfOptions {
    fn default() -> Self {
        SwfOptions {
            cpu_per_processor: 100,
            max_cpu: 400,
            default_mem: Mem::gib(1),
            deadline_factor_range: (1.2, 2.0),
            skip_zero_runtime: true,
        }
    }
}

/// Parses SWF text into a [`Trace`].
///
/// Field usage (1-based SWF indices): submit time (2), run time (4),
/// allocated processors (5), per-processor memory in KiB (7), requested
/// processors (8), requested time (9), user id (12). The *requested* time
/// is preferred as the user estimate `T_u`; the measured run time is the
/// fallback.
pub fn parse_swf(text: &str, opts: &SwfOptions) -> Result<Trace, SwfError> {
    let mut jobs = Vec::new();
    let mut next_id = 0u64;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::TooFewFields {
                line: line_no,
                found: fields.len(),
            });
        }
        let num = |i: usize| -> Result<f64, SwfError> {
            fields[i - 1]
                .parse::<f64>()
                .map_err(|_| SwfError::BadNumber {
                    line: line_no,
                    field: i,
                })
        };

        let submit = num(2)?.max(0.0);
        let run_time = num(4)?;
        let alloc_procs = num(5)?;
        let mem_kb_per_proc = num(7)?;
        let req_procs = num(8)?;
        let req_time = num(9)?;
        let user_id = num(12)?;

        // Ground truth = measured run time; user estimate = requested
        // time. Either may be missing (-1), in which case the other
        // stands in.
        let truth = if run_time > 0.0 { run_time } else { req_time };
        let estimate = if req_time > 0.0 { req_time } else { run_time };
        if opts.skip_zero_runtime && truth <= 0.0 {
            continue;
        }

        let procs = if req_procs > 0.0 {
            req_procs
        } else if alloc_procs > 0.0 {
            alloc_procs
        } else {
            1.0
        };
        let cpu = ((procs as u32).max(1) * opts.cpu_per_processor).min(opts.max_cpu);

        let mem = if mem_kb_per_proc > 0.0 {
            let total_mib = (mem_kb_per_proc * procs / 1024.0).round() as u32;
            Mem(total_mib.clamp(256, 16 * 1024))
        } else {
            opts.default_mem
        };

        // Deterministic per-user deadline factor in the configured range.
        let (lo, hi) = opts.deadline_factor_range;
        let u = if user_id >= 0.0 {
            // Cheap integer hash → [0, 1).
            let h = (user_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> 11) as f64 / (1u64 << 53) as f64
        } else {
            0.5
        };
        let factor = lo + (hi - lo) * u;

        jobs.push(
            Job::new(
                JobId(next_id),
                SimTime::from_secs_f64(submit),
                Cpu(cpu),
                mem,
                SimDuration::from_secs_f64(truth),
                factor,
            )
            .with_estimate(SimDuration::from_secs_f64(estimate.max(0.0))),
        );
        next_id += 1;
    }
    Ok(Trace::new(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic SWF document (3 jobs + header).
    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Grid5000
;
1 0 10 3600 2 -1 524288 2 4000 -1 1 7 1 1 1 1 -1 -1
2 120 -1 600 1 -1 -1 -1 -1 -1 1 8 1 1 1 1 -1 -1
3 300 5 0 1 -1 -1 1 0 -1 0 9 1 1 1 1 -1 -1
";

    #[test]
    fn parses_fields() {
        let t = parse_swf(SAMPLE, &SwfOptions::default()).unwrap();
        assert_eq!(t.len(), 2, "zero-runtime job 3 skipped");
        let j0 = &t.jobs()[0];
        assert_eq!(j0.submit, SimTime::ZERO);
        assert_eq!(j0.cpu, Cpu(200), "2 requested processors");
        // Ground truth from the measured run time; the (over)estimate
        // from the requested time.
        assert_eq!(j0.dedicated, SimDuration::from_secs(3600));
        assert_eq!(j0.user_estimate, SimDuration::from_secs(4000));
        // 512 MiB/proc × 2 procs = 1024 MiB.
        assert_eq!(j0.mem, Mem(1024));
        let j1 = &t.jobs()[1];
        assert_eq!(j1.cpu, Cpu(100), "defaults to allocated processors");
        assert_eq!(j1.dedicated, SimDuration::from_secs(600));
        assert_eq!(
            j1.user_estimate,
            SimDuration::from_secs(600),
            "run-time fallback"
        );
        assert_eq!(j1.mem, Mem::gib(1), "default memory");
    }

    #[test]
    fn keeps_zero_runtime_when_asked() {
        let opts = SwfOptions {
            skip_zero_runtime: false,
            ..SwfOptions::default()
        };
        let t = parse_swf(SAMPLE, &opts).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn deadline_factor_deterministic_per_user() {
        let t1 = parse_swf(SAMPLE, &SwfOptions::default()).unwrap();
        let t2 = parse_swf(SAMPLE, &SwfOptions::default()).unwrap();
        for (a, b) in t1.jobs().iter().zip(t2.jobs()) {
            assert_eq!(a.deadline_factor, b.deadline_factor);
            assert!((1.2..=2.0).contains(&a.deadline_factor));
        }
        // Different users get different factors (with this hash, these do).
        assert_ne!(t1.jobs()[0].deadline_factor, t1.jobs()[1].deadline_factor);
    }

    #[test]
    fn wide_jobs_are_capped() {
        let line = "1 0 0 100 64 -1 -1 64 100 -1 1 1 1 1 1 1 -1 -1\n";
        let t = parse_swf(line, &SwfOptions::default()).unwrap();
        assert_eq!(t.jobs()[0].cpu, Cpu(400));
    }

    #[test]
    fn error_on_short_line() {
        let err = parse_swf("1 2 3\n", &SwfOptions::default()).unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, found: 3 });
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn error_on_garbage_number() {
        let line = "1 abc 0 100 1 -1 -1 1 100 -1 1 1 1 1 1 1 -1 -1\n";
        let err = parse_swf(line, &SwfOptions::default()).unwrap_err();
        assert_eq!(err, SwfError::BadNumber { line: 1, field: 2 });
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_swf("; just a header\n\n   \n", &SwfOptions::default()).unwrap();
        assert!(t.is_empty());
    }
}

/// Serializes a [`Trace`] as SWF text, the inverse of [`parse_swf`].
///
/// Lets synthetic traces be exported for use by other simulators (and
/// round-trips through [`parse_swf`], which the property tests verify).
/// Deadline factors cannot be represented in SWF — they are re-derived
/// from the user id on parse — so the writer encodes each job's factor
/// band into the user-id field best-effort.
pub fn write_swf(trace: &crate::trace::Trace) -> String {
    let mut out = String::new();
    out.push_str("; SWF trace exported by eards-workload\n");
    out.push_str("; Version: 2.2\n");
    for (i, job) in trace.jobs().iter().enumerate() {
        let submit = job.submit.as_secs_f64();
        let runtime = job.dedicated.as_secs_f64();
        let procs = job.cpu.vcpus().max(1);
        let mem_kb_per_proc = (f64::from(job.mem.mib()) * 1024.0 / f64::from(procs)).round();
        // Encode the deadline factor into a synthetic user id so that the
        // per-user factor derivation stays deterministic on re-parse.
        let user = (job.deadline_factor * 1000.0).round() as i64;
        out.push_str(&format!(
            "{} {submit:.0} -1 {runtime:.0} {procs} -1 {mem_kb_per_proc:.0} {procs} {runtime:.0} -1 1 {user} 1 1 1 1 -1 -1\n",
            i + 1
        ));
    }
    out
}

#[cfg(test)]
mod writer_tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use eards_sim::SimDuration;

    #[test]
    fn round_trips_through_parse() {
        let cfg = SynthConfig {
            span: SimDuration::from_hours(4),
            ..SynthConfig::grid5000_week()
        };
        let original = generate(&cfg, 5);
        let text = write_swf(&original);
        let parsed = parse_swf(&text, &SwfOptions::default()).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            // Submit times survive at 1-second resolution.
            assert!(
                a.submit.as_secs_f64().round() == b.submit.as_secs_f64(),
                "submit {} vs {}",
                a.submit,
                b.submit
            );
            // Runtime at 1-second resolution.
            assert!((a.dedicated.as_secs_f64().round() - b.dedicated.as_secs_f64()).abs() < 1.0);
            // CPU survives via whole vCPUs.
            assert_eq!(a.cpu.vcpus().max(1) * 100, b.cpu.points());
        }
    }

    #[test]
    fn writer_emits_18_fields_per_line() {
        let trace = generate(
            &SynthConfig {
                span: SimDuration::from_hours(1),
                ..SynthConfig::grid5000_week()
            },
            1,
        );
        let text = write_swf(&trace);
        for line in text.lines().filter(|l| !l.starts_with(';')) {
            assert_eq!(line.split_whitespace().count(), 18, "line: {line}");
        }
    }

    #[test]
    fn empty_trace_writes_header_only() {
        let text = write_swf(&crate::trace::Trace::new(vec![]));
        assert!(text.lines().all(|l| l.starts_with(';')));
    }
}
