//! Job typologies.
//!
//! §V of the paper assigns each Grid5000 job a deadline factor "between 1.2
//! and 2 depending on the job and user typology". We model four grid-user
//! typologies with distinct resource/runtime profiles; the synthetic
//! generator draws jobs from a weighted mix of them.

use eards_sim::SimRng;

/// A class of jobs with a characteristic shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Short sequential tasks (test runs, small analyses): 1 vCPU, minutes.
    /// Loose deadlines (factor 2.0) — nobody babysits them.
    SmallSequential,
    /// Standard batch work: 1–2 vCPUs, tens of minutes to an hour or two.
    MediumBatch,
    /// Long-running computations: 2–4 vCPUs, hours, heavy-tailed.
    /// Tight deadlines (factor 1.2–1.3) — results are being waited on.
    LongCompute,
    /// Bag-of-tasks bursts: several identical 1-vCPU tasks submitted
    /// together (the classic grid pattern).
    BagOfTasks,
}

impl JobClass {
    /// All classes, in a stable order.
    pub const ALL: [JobClass; 4] = [
        JobClass::SmallSequential,
        JobClass::MediumBatch,
        JobClass::LongCompute,
        JobClass::BagOfTasks,
    ];

    /// Default mix weights (fractions of *arrival events*, not of load).
    /// Grid traces are dominated by small jobs by count while long jobs
    /// and bag-of-tasks campaigns carry most of the load.
    pub fn default_weight(self) -> f64 {
        match self {
            JobClass::SmallSequential => 0.25,
            JobClass::MediumBatch => 0.30,
            JobClass::LongCompute => 0.20,
            JobClass::BagOfTasks => 0.25,
        }
    }

    /// Samples a CPU demand (percent points) for one job of this class.
    pub fn sample_cpu(self, rng: &mut SimRng) -> u32 {
        match self {
            JobClass::SmallSequential => 100,
            JobClass::MediumBatch => {
                if rng.chance(0.4) {
                    200
                } else {
                    100
                }
            }
            JobClass::LongCompute => *[200u32, 300, 400]
                .get(rng.weighted_index(&[0.5, 0.3, 0.2]))
                .expect("weighted_index in range"),
            JobClass::BagOfTasks => 100,
        }
    }

    /// Samples a memory demand in MiB.
    pub fn sample_mem_mib(self, rng: &mut SimRng) -> u32 {
        let gib = match self {
            JobClass::SmallSequential => 1,
            JobClass::MediumBatch => 1 + rng.index(2) as u32, // 1–2 GiB
            JobClass::LongCompute => 2 + rng.index(3) as u32, // 2–4 GiB
            JobClass::BagOfTasks => 1,
        };
        gib * 1024
    }

    /// Samples a dedicated-machine runtime in seconds.
    pub fn sample_runtime_secs(self, rng: &mut SimRng) -> f64 {
        match self {
            // Median ~8 min, spread ×2.
            JobClass::SmallSequential => rng
                .log_normal((8.0f64 * 60.0).ln(), 0.7)
                .clamp(30.0, 3600.0),
            // Median ~45 min.
            JobClass::MediumBatch => rng
                .log_normal((45.0f64 * 60.0).ln(), 0.6)
                .clamp(300.0, 4.0 * 3600.0),
            // Heavy tail: 1–12 h.
            JobClass::LongCompute => rng.bounded_pareto(1.1, 3600.0, 12.0 * 3600.0),
            // Tasks in a bag are small and uniform-ish.
            JobClass::BagOfTasks => rng
                .log_normal((30.0f64 * 60.0).ln(), 0.5)
                .clamp(120.0, 2.0 * 3600.0),
        }
    }

    /// Samples a deadline factor in the paper's 1.2–2.0 range.
    pub fn sample_deadline_factor(self, rng: &mut SimRng) -> f64 {
        match self {
            JobClass::SmallSequential => rng.uniform_range(1.8, 2.0),
            JobClass::MediumBatch => rng.uniform_range(1.4, 1.8),
            JobClass::LongCompute => rng.uniform_range(1.2, 1.4),
            JobClass::BagOfTasks => rng.uniform_range(1.2, 1.5),
        }
    }

    /// Samples the user's runtime *over*estimation multiplier (≥ 1).
    /// Roughly half of grid users request exactly what they measured
    /// before; the rest pad generously — the classic workload-archive
    /// finding that estimates are poor.
    pub fn sample_estimate_factor(self, rng: &mut SimRng) -> f64 {
        if rng.chance(0.5) {
            1.0
        } else {
            1.0 + rng.exponential(1.5).min(2.0)
        }
    }

    /// Number of tasks submitted together (1 except for bags).
    ///
    /// Real grid campaigns are heavy-tailed: most bags are a handful of
    /// tasks, but campaigns of many tens arrive regularly — those bursts
    /// are what overwhelms load-oblivious placement (the paper's RD/RR
    /// rows in Table II) and builds queues even for Backfilling.
    pub fn sample_batch_size(self, rng: &mut SimRng) -> usize {
        match self {
            JobClass::BagOfTasks => rng.bounded_pareto(0.9, 4.0, 120.0).round() as usize,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = JobClass::ALL.iter().map(|c| c.default_weight()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_in_declared_ranges() {
        let mut rng = SimRng::seed_from_u64(1);
        for class in JobClass::ALL {
            for _ in 0..500 {
                let cpu = class.sample_cpu(&mut rng);
                assert!((100..=400).contains(&cpu), "{class:?} cpu {cpu}");
                assert_eq!(cpu % 100, 0, "whole vCPUs only");
                let mem = class.sample_mem_mib(&mut rng);
                assert!((1024..=4096).contains(&mem));
                let rt = class.sample_runtime_secs(&mut rng);
                assert!((30.0..=12.0 * 3600.0).contains(&rt), "{class:?} rt {rt}");
                let f = class.sample_deadline_factor(&mut rng);
                assert!((1.2..=2.0).contains(&f), "{class:?} factor {f}");
                let b = class.sample_batch_size(&mut rng);
                if class == JobClass::BagOfTasks {
                    assert!((4..=120).contains(&b), "bag size {b}");
                } else {
                    assert_eq!(b, 1);
                }
            }
        }
    }

    #[test]
    fn long_jobs_are_longer_than_small_jobs() {
        let mut rng = SimRng::seed_from_u64(2);
        let avg = |class: JobClass, rng: &mut SimRng| -> f64 {
            (0..2000)
                .map(|_| class.sample_runtime_secs(rng))
                .sum::<f64>()
                / 2000.0
        };
        let small = avg(JobClass::SmallSequential, &mut rng);
        let long = avg(JobClass::LongCompute, &mut rng);
        assert!(long > 4.0 * small, "long {long} vs small {small}");
    }

    #[test]
    fn long_compute_has_tightest_deadlines() {
        let mut rng = SimRng::seed_from_u64(3);
        let avg = |class: JobClass, rng: &mut SimRng| -> f64 {
            (0..1000)
                .map(|_| class.sample_deadline_factor(rng))
                .sum::<f64>()
                / 1000.0
        };
        assert!(avg(JobClass::LongCompute, &mut rng) < avg(JobClass::SmallSequential, &mut rng));
    }
}
