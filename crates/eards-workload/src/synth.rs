//! Synthetic Grid5000-like workload generation.
//!
//! The paper evaluates on a real Grid5000 trace (the week starting Monday
//! 2007-10-01, from the Grid Workloads Archive). That trace is not
//! redistributable here, so — per the substitution documented in
//! DESIGN.md — this module synthesizes a workload with the properties the
//! evaluation actually depends on:
//!
//! * the published aggregate load level (≈ 6 000 CPU·hours over the week,
//!   i.e. ≈ 36 busy cores ≈ 9–10 busy 4-way nodes on average);
//! * diurnal and weekday/weekend arrival modulation (consolidation
//!   headroom comes from the valleys);
//! * a grid-like job mix: many short sequential jobs, heavy-tailed long
//!   jobs carrying most of the load, and bag-of-tasks bursts.
//!
//! Arrivals follow a non-homogeneous Poisson process sampled by thinning.
//! Real traces can be used instead via [`crate::parse_swf`].

use eards_model::{Cpu, Job, JobId, Mem};
use eards_sim::{SimDuration, SimRng, SimTime, MILLIS_PER_DAY, MILLIS_PER_HOUR};

use crate::trace::Trace;
use crate::typology::JobClass;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Length of the generated trace.
    pub span: SimDuration,
    /// Mean arrival *events* per hour (a bag-of-tasks burst is one event).
    pub events_per_hour: f64,
    /// Diurnal amplitude in `[0, 1)`: 0 = flat, 0.6 = strong day/night.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) at which arrivals peak.
    pub peak_hour: f64,
    /// Arrival-rate multiplier on Saturday/Sunday.
    pub weekend_factor: f64,
    /// Mix weights per job class, aligned with [`JobClass::ALL`].
    pub class_weights: [f64; 4],
}

impl SynthConfig {
    /// The default week-long, Grid5000-like configuration used by the
    /// paper-reproduction experiments. The event rate is calibrated so the
    /// offered load lands near the paper's ≈ 6 000 CPU·h/week.
    pub fn grid5000_week() -> Self {
        SynthConfig {
            span: SimDuration::from_days(7),
            events_per_hour: 10.0,
            diurnal_amplitude: 0.6,
            peak_hour: 14.0,
            weekend_factor: 0.6,
            class_weights: [
                JobClass::SmallSequential.default_weight(),
                JobClass::MediumBatch.default_weight(),
                JobClass::LongCompute.default_weight(),
                JobClass::BagOfTasks.default_weight(),
            ],
        }
    }

    /// Scales the offered load by `factor` (e.g. 2.0 for an overload
    /// scenario in the SLA-enforcement ablation).
    pub fn with_load_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.events_per_hour *= factor;
        self
    }

    /// Arrival-rate modulation at time `t` (dimensionless, mean ≈ 1 on
    /// weekdays).
    fn modulation(&self, t: SimTime) -> f64 {
        let ms = t.as_millis();
        let hour_of_day = (ms % MILLIS_PER_DAY) as f64 / MILLIS_PER_HOUR as f64;
        let day_index = ms / MILLIS_PER_DAY; // day 0 = Monday
        let diurnal = 1.0
            + self.diurnal_amplitude
                * (std::f64::consts::TAU * (hour_of_day - self.peak_hour) / 24.0).cos();
        let weekday = if day_index % 7 >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        diurnal * weekday
    }

    /// Upper bound of the modulated rate, for thinning.
    fn max_rate_per_hour(&self) -> f64 {
        self.events_per_hour * (1.0 + self.diurnal_amplitude) * self.weekend_factor.max(1.0)
    }
}

/// Generates a synthetic trace. Deterministic in `(config, seed)`.
///
/// ```
/// use eards_workload::{generate, SynthConfig};
/// use eards_sim::SimDuration;
///
/// let cfg = SynthConfig {
///     span: SimDuration::from_hours(12),
///     ..SynthConfig::grid5000_week()
/// };
/// let trace = generate(&cfg, 42);
/// assert!(!trace.is_empty());
/// assert_eq!(trace.len(), generate(&cfg, 42).len(), "deterministic");
/// assert!(trace.stats().max_cpu_demand <= 400, "fits a 4-way node");
/// ```
pub fn generate(config: &SynthConfig, seed: u64) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut arrival_rng = rng.fork(1);
    let mut shape_rng = rng.fork(2);

    let mut jobs: Vec<Job> = Vec::new();
    let mut next_id = 0u64;
    let max_rate = config.max_rate_per_hour();
    let span_secs = config.span.as_secs_f64();

    // Thinning (Lewis & Shedler): candidate arrivals at the max rate,
    // accepted with probability rate(t)/max_rate.
    let mut t_secs = 0.0f64;
    loop {
        t_secs += arrival_rng.exponential(max_rate / 3600.0);
        if t_secs >= span_secs {
            break;
        }
        let at = SimTime::from_secs_f64(t_secs);
        let accept_p = config.events_per_hour * config.modulation(at) / max_rate;
        if !arrival_rng.chance(accept_p) {
            continue;
        }

        let class = JobClass::ALL[shape_rng.weighted_index(&config.class_weights)];
        let batch = class.sample_batch_size(&mut shape_rng);
        // Tasks in one bag share a runtime scale and deadline factor (they
        // belong to one user submission).
        let factor = class.sample_deadline_factor(&mut shape_rng);
        for _ in 0..batch {
            let runtime = class.sample_runtime_secs(&mut shape_rng);
            let estimate = runtime * class.sample_estimate_factor(&mut shape_rng);
            let mut job = Job::new(
                JobId(next_id),
                at,
                Cpu(class.sample_cpu(&mut shape_rng)),
                Mem(class.sample_mem_mib(&mut shape_rng)),
                SimDuration::from_secs_f64(runtime),
                factor,
            )
            .with_estimate(SimDuration::from_secs_f64(estimate));
            job.fault_tolerance = 0.0;
            jobs.push(job);
            next_id += 1;
        }
    }
    Trace::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = SynthConfig::grid5000_week();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x, y);
        }
        let c = generate(&cfg, 43);
        assert_ne!(a.len(), c.len(), "different seeds should differ (whp)");
    }

    #[test]
    fn load_calibration_matches_paper_band() {
        // The paper's tables report ≈ 6 055 CPU·h consumed over the week
        // under uncontended policies. The *offered* load must land in that
        // neighbourhood — wide band, since the generator is stochastic.
        let cfg = SynthConfig::grid5000_week();
        let stats = generate(&cfg, 7).stats();
        assert!(
            (3_500.0..=9_500.0).contains(&stats.total_cpu_hours),
            "offered load {:.0} CPU·h outside calibration band",
            stats.total_cpu_hours
        );
        assert!(
            (1_000..=12_000).contains(&stats.jobs),
            "job count {} implausible",
            stats.jobs
        );
        assert!(stats.max_cpu_demand <= 400, "jobs must fit a 4-way node");
    }

    #[test]
    fn span_respected_and_sorted() {
        let cfg = SynthConfig {
            span: SimDuration::from_days(1),
            ..SynthConfig::grid5000_week()
        };
        let trace = generate(&cfg, 1);
        assert!(trace.span() <= SimDuration::from_days(1));
        let jobs = trace.jobs();
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        // Ids are unique.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let cfg = SynthConfig::grid5000_week();
        let trace = generate(&cfg, 11);
        // Compare arrivals in daily 12:00–16:00 windows vs 00:00–04:00
        // (weekdays only).
        let mut peak = 0usize;
        let mut trough = 0usize;
        for j in trace.jobs() {
            let ms = j.submit.as_millis();
            let day = ms / MILLIS_PER_DAY;
            if day % 7 >= 5 {
                continue;
            }
            let hod = (ms % MILLIS_PER_DAY) / MILLIS_PER_HOUR;
            match hod {
                12..=15 => peak += 1,
                0..=3 => trough += 1,
                _ => {}
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn weekend_is_quieter() {
        let cfg = SynthConfig::grid5000_week();
        let trace = generate(&cfg, 13);
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        for j in trace.jobs() {
            let day = j.submit.as_millis() / MILLIS_PER_DAY;
            if day % 7 >= 5 {
                weekend += 1;
            } else {
                weekday += 1;
            }
        }
        let per_weekday = weekday as f64 / 5.0;
        let per_weekend_day = weekend as f64 / 2.0;
        assert!(
            per_weekend_day < 0.85 * per_weekday,
            "weekend {per_weekend_day:.0}/day vs weekday {per_weekday:.0}/day"
        );
    }

    #[test]
    fn load_factor_scales_work() {
        let base = generate(&SynthConfig::grid5000_week(), 5).stats();
        let double = generate(&SynthConfig::grid5000_week().with_load_factor(2.0), 5).stats();
        let ratio = double.total_cpu_hours / base.total_cpu_hours;
        assert!((1.5..=2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deadline_factors_in_paper_range() {
        let trace = generate(&SynthConfig::grid5000_week(), 3);
        for j in trace.jobs() {
            assert!(
                (1.2..=2.0).contains(&j.deadline_factor),
                "factor {} outside §V's range",
                j.deadline_factor
            );
        }
    }
}
