//! Trace analysis: arrival-process and job-mix statistics beyond the
//! basic [`crate::TraceStats`].
//!
//! The evaluation's qualitative results hinge on workload *shape* —
//! burstiness drives the naive policies' contention, diurnal valleys
//! drive consolidation headroom (DESIGN.md §10). These metrics make a
//! trace's shape inspectable (CLI: `eards trace info`) and comparable
//! against the calibration targets.

use eards_sim::{SimTime, MILLIS_PER_HOUR};

use crate::trace::Trace;

/// Arrival-process and mix statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Arrivals per hour-of-trace (index 0 = the first hour).
    pub hourly_arrivals: Vec<usize>,
    /// Coefficient of variation of inter-arrival times (1 = Poisson;
    /// > 1 = bursty — grid traces typically sit well above 1).
    pub interarrival_cv: f64,
    /// Largest number of jobs sharing one submission instant (the biggest
    /// bag-of-tasks campaign).
    pub max_batch: usize,
    /// Fraction of all jobs that arrive in the busiest 10% of hours —
    /// 0.1 means perfectly uniform; grid traces concentrate much more.
    pub peak_hour_mass: f64,
    /// Fraction of total *work* carried by the largest 10% of jobs
    /// (heavy-tail indicator; near 1.0 for grid workloads).
    pub top_decile_work_share: f64,
}

/// Computes the analysis. Returns `None` for traces with fewer than two
/// jobs (no arrival process to speak of).
pub fn analyze(trace: &Trace) -> Option<TraceAnalysis> {
    let jobs = trace.jobs();
    if jobs.len() < 2 {
        return None;
    }

    // Hourly histogram.
    let span_ms = jobs.last().expect("non-empty").submit.as_millis();
    let hours = (span_ms / MILLIS_PER_HOUR + 1) as usize;
    let mut hourly = vec![0usize; hours];
    for j in jobs {
        hourly[(j.submit.as_millis() / MILLIS_PER_HOUR) as usize] += 1;
    }

    // Inter-arrival CV over distinct submission instants.
    let mut instants: Vec<SimTime> = jobs.iter().map(|j| j.submit).collect();
    instants.dedup();
    let gaps: Vec<f64> = instants
        .windows(2)
        .map(|w| w[1].saturating_since(w[0]).as_secs_f64())
        .collect();
    let cv = if gaps.len() >= 2 {
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean > 0.0 {
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        } else {
            0.0
        }
    } else {
        0.0
    };

    // Largest same-instant batch.
    let mut max_batch = 1;
    let mut run = 1;
    for w in jobs.windows(2) {
        if w[0].submit == w[1].submit {
            run += 1;
            max_batch = max_batch.max(run);
        } else {
            run = 1;
        }
    }

    // Mass in the busiest decile of hours.
    let mut sorted_hours = hourly.clone();
    sorted_hours.sort_unstable_by(|a, b| b.cmp(a));
    let decile = (hours.div_ceil(10)).max(1);
    let peak_mass: usize = sorted_hours.iter().take(decile).sum();
    let peak_hour_mass = peak_mass as f64 / jobs.len() as f64;

    // Work share of the biggest decile of jobs.
    let mut works: Vec<f64> = jobs.iter().map(|j| j.total_work()).collect();
    works.sort_unstable_by(|a, b| b.total_cmp(a));
    let total: f64 = works.iter().sum();
    let top = (jobs.len().div_ceil(10)).max(1);
    let top_work: f64 = works.iter().take(top).sum();
    let top_decile_work_share = if total > 0.0 { top_work / total } else { 0.0 };

    Some(TraceAnalysis {
        hourly_arrivals: hourly,
        interarrival_cv: cv,
        max_batch,
        peak_hour_mass,
        top_decile_work_share,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use eards_model::{Cpu, Job, JobId, Mem};
    use eards_sim::SimDuration;

    fn uniform_trace(n: u64, gap_secs: u64) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| {
                    Job::new(
                        JobId(i),
                        SimTime::from_secs(i * gap_secs),
                        Cpu(100),
                        Mem::gib(1),
                        SimDuration::from_secs(600),
                        1.5,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn uniform_arrivals_have_zero_cv() {
        let a = analyze(&uniform_trace(100, 60)).unwrap();
        assert!(a.interarrival_cv < 1e-9);
        assert_eq!(a.max_batch, 1);
        // 100 arrivals over ~1.7 h: hourly histogram covers the span.
        assert_eq!(a.hourly_arrivals.iter().sum::<usize>(), 100);
        // Equal-size jobs: top decile carries exactly its share.
        assert!((a.top_decile_work_share - 0.1).abs() < 0.01);
    }

    #[test]
    fn batches_are_detected() {
        let mut jobs = Vec::new();
        for i in 0..5u64 {
            jobs.push(Job::new(
                JobId(i),
                SimTime::from_secs(100),
                Cpu(100),
                Mem::gib(1),
                SimDuration::from_secs(60),
                1.5,
            ));
        }
        jobs.push(Job::new(
            JobId(5),
            SimTime::from_secs(500),
            Cpu(100),
            Mem::gib(1),
            SimDuration::from_secs(60),
            1.5,
        ));
        let a = analyze(&Trace::new(jobs)).unwrap();
        assert_eq!(a.max_batch, 5);
    }

    #[test]
    fn synthetic_grid_trace_is_bursty_and_heavy_tailed() {
        let trace = generate(&SynthConfig::grid5000_week(), 7);
        let a = analyze(&trace).unwrap();
        assert!(a.interarrival_cv > 1.0, "cv {}", a.interarrival_cv);
        assert!(a.max_batch >= 10, "max batch {}", a.max_batch);
        assert!(
            a.top_decile_work_share > 0.4,
            "top decile carries {}",
            a.top_decile_work_share
        );
        assert!(a.peak_hour_mass > 0.15, "peak mass {}", a.peak_hour_mass);
    }

    #[test]
    fn tiny_traces_yield_none() {
        assert!(analyze(&Trace::new(vec![])).is_none());
        assert!(analyze(&uniform_trace(1, 60)).is_none());
    }
}
