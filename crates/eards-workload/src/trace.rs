//! Workload traces: ordered job arrival sequences plus summary statistics.

use eards_model::Job;
use eards_sim::{SimDuration, SimTime};

/// A workload trace: jobs ordered by submission time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    jobs: Vec<Job>,
}

/// Aggregate statistics of a trace, for sanity checks and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Time of the last submission.
    pub span: SimDuration,
    /// Total work across jobs, in CPU·hours (100 cpu% for 1 h = 1).
    pub total_cpu_hours: f64,
    /// Average *offered load* in cores: total work divided by the span.
    pub avg_offered_cores: f64,
    /// Mean dedicated runtime in seconds.
    pub mean_runtime_secs: f64,
    /// Largest single-job CPU demand (percent points).
    pub max_cpu_demand: u32,
}

impl Trace {
    /// Builds a trace, sorting by submission time (stable: equal-time jobs
    /// keep their relative order).
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| j.submit);
        Trace { jobs }
    }

    /// The jobs, ordered by submit time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Consumes the trace, yielding its jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Submission time of the last job (ZERO for an empty trace).
    pub fn span(&self) -> SimDuration {
        self.jobs
            .last()
            .map(|j| j.submit.saturating_since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let total_work_cpu_secs: f64 = self.jobs.iter().map(|j| j.total_work()).sum();
        let total_cpu_hours = total_work_cpu_secs / 100.0 / 3600.0;
        let span = self.span();
        let span_hours = span.as_hours_f64();
        TraceStats {
            jobs: self.jobs.len(),
            span,
            total_cpu_hours,
            avg_offered_cores: if span_hours > 0.0 {
                total_cpu_hours / span_hours
            } else {
                0.0
            },
            mean_runtime_secs: if self.jobs.is_empty() {
                0.0
            } else {
                self.jobs
                    .iter()
                    .map(|j| j.dedicated.as_secs_f64())
                    .sum::<f64>()
                    / self.jobs.len() as f64
            },
            max_cpu_demand: self.jobs.iter().map(|j| j.cpu.points()).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cpu, JobId, Mem};

    fn job(id: u64, submit_secs: u64, cpu: u32, dur_secs: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(submit_secs),
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(dur_secs),
            1.5,
        )
    }

    #[test]
    fn sorts_by_submit_time() {
        let t = Trace::new(vec![job(1, 50, 100, 10), job(2, 10, 100, 10)]);
        assert_eq!(t.jobs()[0].id.raw(), 2);
        assert_eq!(t.jobs()[1].id.raw(), 1);
    }

    #[test]
    fn stats_totals() {
        // Two jobs: 1 core for 1 h + 2 cores for half an hour = 2 CPU·h.
        let t = Trace::new(vec![job(1, 0, 100, 3600), job(2, 7200, 200, 1800)]);
        let s = t.stats();
        assert_eq!(s.jobs, 2);
        assert_eq!(s.span, SimDuration::from_secs(7200));
        assert!((s.total_cpu_hours - 2.0).abs() < 1e-9);
        assert!((s.avg_offered_cores - 1.0).abs() < 1e-9);
        assert_eq!(s.mean_runtime_secs, 2700.0);
        assert_eq!(s.max_cpu_demand, 200);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new(vec![]);
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.avg_offered_cores, 0.0);
        assert_eq!(s.max_cpu_demand, 0);
    }
}
