//! Property tests for the metrics layer: exact integration against a
//! brute-force reference, summary merging, and the SLA metric's laws.

use proptest::prelude::*;

use eards_metrics::{delay_pct, percentile, satisfaction, Summary, TimeSeries, TimeWeighted};
use eards_sim::{SimDuration, SimTime};

proptest! {
    /// TimeSeries integral equals a brute-force per-millisecond sum.
    #[test]
    fn integral_matches_brute_force(
        steps in proptest::collection::vec((1u64..50, -10.0f64..10.0), 1..20),
        from in 0u64..500,
        span in 1u64..500,
    ) {
        let mut series = TimeSeries::new();
        let mut t = 0u64;
        let mut timeline: Vec<(u64, f64)> = Vec::new();
        for (dt, v) in steps {
            series.record(SimTime::from_millis(t), v);
            timeline.push((t, v));
            t += dt;
        }
        let to = from + span;
        let exact = series.integral(SimTime::from_millis(from), SimTime::from_millis(to));

        // Brute force: value at each millisecond × 1 ms.
        let value_at = |ms: u64| -> f64 {
            timeline
                .iter()
                .rev()
                .find(|&&(at, _)| at <= ms)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        let brute: f64 = (from..to).map(|ms| value_at(ms) / 1000.0).sum();
        prop_assert!((exact - brute).abs() < 1e-6, "exact {exact} vs brute {brute}");
    }

    /// TimeWeighted agrees with TimeSeries on the same signal.
    #[test]
    fn time_weighted_agrees_with_series(
        values in proptest::collection::vec(0.0f64..100.0, 1..30),
    ) {
        let mut series = TimeSeries::new();
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        series.record(SimTime::ZERO, 0.0);
        for (i, &v) in values.iter().enumerate() {
            let t = SimTime::from_secs((i as u64 + 1) * 7);
            series.record(t, v);
            tw.set(t, v);
        }
        let end = SimTime::from_secs((values.len() as u64 + 2) * 7);
        let a = series.integral(SimTime::ZERO, end);
        let b = tw.integral(end);
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    /// Merging summaries equals one big summary.
    #[test]
    fn summary_merge_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let mut all = Summary::new();
        for &x in xs.iter().chain(&ys) {
            all.push(x);
        }
        let mut a = Summary::new();
        for &x in &xs { a.push(x); }
        let mut b = Summary::new();
        for &y in &ys { b.push(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!((a.std_dev() - all.std_dev()).abs() <= 1e-6 * (1.0 + all.std_dev()));
    }

    /// Percentiles are bounded by min/max and monotone in q.
    #[test]
    fn percentile_laws(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let lo = q1.min(q2);
        let hi = q1.max(q2);
        let p_lo = percentile(&xs, lo).unwrap();
        let p_hi = percentile(&xs, hi).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min - 1e-12 && p_hi <= max + 1e-12);
    }

    /// The paper's SLA metric: bounded, monotone, and consistent with the
    /// delay measure.
    #[test]
    fn satisfaction_laws(exec_s in 0u64..100_000, dead_s in 1u64..50_000) {
        let exec = SimDuration::from_secs(exec_s);
        let dead = SimDuration::from_secs(dead_s);
        let s = satisfaction(exec, dead);
        let d = delay_pct(exec, dead);
        prop_assert!((0.0..=100.0).contains(&s));
        prop_assert!(d >= 0.0);
        // Inside the deadline: perfect score, no delay.
        if exec_s <= dead_s {
            prop_assert_eq!(s, 100.0);
            prop_assert_eq!(d, 0.0);
        }
        // Past twice the deadline: zero score.
        if exec_s >= 2 * dead_s {
            prop_assert_eq!(s, 0.0);
        }
        // Mid-band: s and delay are complementary (s = 100 − delay).
        if exec_s > dead_s && exec_s < 2 * dead_s {
            prop_assert!((s - (100.0 - d)).abs() < 1e-9);
        }
        // Later completion never scores better.
        let s2 = satisfaction(exec + SimDuration::from_secs(17), dead);
        prop_assert!(s2 <= s);
    }
}
