//! Piecewise-constant time series.
//!
//! Every signal the simulator records — node power draw, number of working
//! nodes, datacenter CPU usage — is a step function of simulated time: it
//! changes only at events. [`TimeSeries`] stores the steps exactly, so
//! integrals (energy, CPU·hours) and time-weighted means (average working
//! nodes) are computed without discretization error.

use eards_sim::{Persist, PersistError, Reader, SimDuration, SimTime, Writer};

/// One step of a piecewise-constant signal: `value` holds from `at` until
/// the next point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Instant the signal changed.
    pub at: SimTime,
    /// Value from `at` onwards.
    pub value: f64,
}

/// A piecewise-constant signal sampled at its change points.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<SeriesPoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Creates a series with an initial value at `t = 0`.
    pub fn with_initial(value: f64) -> Self {
        let mut s = TimeSeries::new();
        s.record(SimTime::ZERO, value);
        s
    }

    /// Records that the signal takes `value` from `at` onwards.
    ///
    /// Out-of-order times panic (the simulator only moves forward). Equal
    /// times overwrite (several state changes can land on one event
    /// timestamp; only the final value holds). Recording the current value
    /// again is a no-op, keeping the series minimal.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(last) = self.points.last_mut() {
            assert!(at >= last.at, "time series must be recorded in order");
            if at == last.at {
                last.value = value;
                self.coalesce_tail();
                return;
            }
            if last.value == value {
                return;
            }
        }
        self.points.push(SeriesPoint { at, value });
    }

    /// Drops the last point if overwriting made it equal its predecessor.
    fn coalesce_tail(&mut self) {
        if self.points.len() >= 2 {
            let n = self.points.len();
            if self.points[n - 2].value == self.points[n - 1].value {
                self.points.pop();
            }
        }
    }

    /// The change points, in time order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at time `t` (the most recent step at or before `t`).
    /// Returns `None` before the first point.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|p| p.at.cmp(&t)) {
            Ok(i) => Some(self.points[i].value),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].value),
        }
    }

    /// Exact integral of the signal over `[from, to)`, in value·seconds.
    ///
    /// Time before the first recorded point contributes zero.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, p) in self.points.iter().enumerate() {
            let seg_start = p.at.max(from);
            let seg_end = match self.points.get(i + 1) {
                Some(next) => next.at.min(to),
                None => to,
            };
            if seg_end > seg_start {
                acc += p.value * (seg_end - seg_start).as_secs_f64();
            }
            if p.at >= to {
                break;
            }
        }
        acc
    }

    /// Time-weighted mean over `[from, to)`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_since(from).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.integral(from, to) / span
    }

    /// Maximum recorded value (over the recorded points, not a window).
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|p| p.value).fold(None, |m, v| {
            Some(match m {
                Some(m) => m.max(v),
                None => v,
            })
        })
    }

    /// Resamples the signal at a fixed period over `[from, to]`, yielding
    /// `(time, value)` pairs — the shape plotting front-ends want.
    ///
    /// Instants before the first recorded point are skipped rather than
    /// fabricated as 0.0: the signal is *undefined* there, and a synthetic
    /// zero row is indistinguishable from a real measurement downstream.
    /// (This is deliberately different from [`TimeSeries::integral`] /
    /// [`TimeSeries::mean`], where zero-before-start is a documented part
    /// of the aggregate's definition.)
    pub fn resample(&self, from: SimTime, to: SimTime, period: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!period.is_zero(), "resample period must be positive");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            if t >= to {
                break;
            }
            t += period;
            if t > to {
                t = to;
            }
        }
        out
    }
}

/// Tracks a live value and its exact running integral; the recording half
/// of [`TimeSeries`] for signals where only aggregates are needed (cheaper
/// than storing every step of a hot signal).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64,
    started: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with an initial value.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: start,
            integral: 0.0,
            started: start,
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Updates the value at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.advance(now);
        self.value = value;
    }

    /// Adds `delta` to the value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        self.advance(now);
        self.value += delta;
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_change, "TimeWeighted moved backwards");
        self.integral += self.value * now.saturating_since(self.last_change).as_secs_f64();
        self.last_change = now;
    }

    /// Integral in value·seconds up to `now`.
    pub fn integral(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.integral
    }

    /// Time-weighted mean since tracking started, up to `now`.
    pub fn mean(&mut self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.started).as_secs_f64();
        if span == 0.0 {
            return self.value;
        }
        self.integral(now) / span
    }
}

impl Persist for SeriesPoint {
    fn persist(&self, w: &mut Writer) {
        self.at.persist(w);
        w.put_f64(self.value);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SeriesPoint {
            at: SimTime::restore(r)?,
            value: r.get_f64()?,
        })
    }
}

impl Persist for TimeSeries {
    fn persist(&self, w: &mut Writer) {
        self.points.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let points: Vec<SeriesPoint> = Vec::restore(r)?;
        let out_of_order = points
            .iter()
            .zip(points.iter().skip(1))
            .any(|(a, b)| b.at < a.at);
        if out_of_order {
            return Err(PersistError::Corrupt("time series out of order".into()));
        }
        Ok(TimeSeries { points })
    }
}

impl Persist for TimeWeighted {
    fn persist(&self, w: &mut Writer) {
        w.put_f64(self.value);
        self.last_change.persist(w);
        w.put_f64(self.integral);
        self.started.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(TimeWeighted {
            value: r.get_f64()?,
            last_change: SimTime::restore(r)?,
            integral: r.get_f64()?,
            started: SimTime::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn integral_of_step_function() {
        let mut s = TimeSeries::new();
        s.record(t(0), 2.0);
        s.record(t(10), 4.0);
        s.record(t(20), 0.0);
        // 10 s at 2 + 10 s at 4 = 60
        assert_eq!(s.integral(t(0), t(20)), 60.0);
        // Window entirely inside the 4.0 segment.
        assert_eq!(s.integral(t(12), t(15)), 12.0);
        // Window past the last point: 0.0 holds forever.
        assert_eq!(s.integral(t(0), t(100)), 60.0);
        // Mean over [0, 20): 3.
        assert_eq!(s.mean(t(0), t(20)), 3.0);
    }

    #[test]
    fn integral_before_first_point_is_zero() {
        let mut s = TimeSeries::new();
        s.record(t(10), 5.0);
        assert_eq!(s.integral(t(0), t(10)), 0.0);
        assert_eq!(s.integral(t(0), t(12)), 10.0);
    }

    #[test]
    fn value_at_lookup() {
        let mut s = TimeSeries::new();
        s.record(t(5), 1.0);
        s.record(t(15), 2.0);
        assert_eq!(s.value_at(t(0)), None);
        assert_eq!(s.value_at(t(5)), Some(1.0));
        assert_eq!(s.value_at(t(14)), Some(1.0));
        assert_eq!(s.value_at(t(15)), Some(2.0));
        assert_eq!(s.value_at(t(1000)), Some(2.0));
    }

    #[test]
    fn equal_time_overwrites_and_coalesces() {
        let mut s = TimeSeries::new();
        s.record(t(0), 1.0);
        s.record(t(10), 2.0);
        s.record(t(10), 3.0);
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.value_at(t(10)), Some(3.0));
        // Overwriting back to the previous value removes the step entirely.
        s.record(t(10), 1.0);
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn redundant_records_are_dropped() {
        let mut s = TimeSeries::new();
        s.record(t(0), 1.0);
        s.record(t(5), 1.0);
        s.record(t(9), 1.0);
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn out_of_order_record_panics() {
        let mut s = TimeSeries::new();
        s.record(t(10), 1.0);
        s.record(t(5), 2.0);
    }

    #[test]
    fn resample_produces_grid() {
        let mut s = TimeSeries::new();
        s.record(t(2), 10.0);
        let samples = s.resample(t(0), t(6), SimDuration::from_secs(2));
        // t = 0 precedes the first point: no fabricated 0.0 row.
        assert_eq!(samples, vec![(t(2), 10.0), (t(4), 10.0), (t(6), 10.0)]);
    }

    #[test]
    fn resample_skips_pre_start_instants() {
        let mut s = TimeSeries::new();
        s.record(t(5), 3.0);
        // Entirely before the first point: nothing to report.
        assert_eq!(s.resample(t(0), t(4), SimDuration::from_secs(1)), vec![]);
        // Straddling the first point: only defined instants appear.
        assert_eq!(
            s.resample(t(3), t(7), SimDuration::from_secs(2)),
            vec![(t(5), 3.0), (t(7), 3.0)]
        );
        // Empty series yields no samples at all.
        assert_eq!(
            TimeSeries::new().resample(t(0), t(10), SimDuration::from_secs(5)),
            vec![]
        );
    }

    #[test]
    fn time_weighted_matches_series() {
        let mut tw = TimeWeighted::new(t(0), 2.0);
        tw.set(t(10), 4.0);
        tw.set(t(20), 0.0);
        assert_eq!(tw.integral(t(20)), 60.0);
        assert_eq!(tw.mean(t(20)), 3.0);
        // add() is relative.
        tw.add(t(30), 5.0);
        assert_eq!(tw.value(), 5.0);
        assert_eq!(tw.integral(t(40)), 60.0 + 50.0);
    }

    #[test]
    fn time_weighted_mean_at_start_is_value() {
        let mut tw = TimeWeighted::new(t(5), 7.0);
        assert_eq!(tw.mean(t(5)), 7.0);
    }

    #[test]
    fn max_value() {
        let mut s = TimeSeries::new();
        assert_eq!(s.max_value(), None);
        s.record(t(0), 1.0);
        s.record(t(1), 9.0);
        s.record(t(2), 3.0);
        assert_eq!(s.max_value(), Some(9.0));
    }
}
