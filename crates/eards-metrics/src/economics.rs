//! Provider economics: revenue, SLA credits, energy cost, profit.
//!
//! The paper repeatedly names "global revenue" as a provider interest the
//! policy must serve (§I, §III) and lists "economical decision making" as
//! future work (§VI). This module prices a [`RunReport`]: jobs earn
//! revenue for the *work* delivered, violated SLAs refund part of it, and
//! the electricity bill is paid per kWh — turning the paper's
//! power-vs-satisfaction trade-off into one number a provider can rank
//! policies by.

use crate::report::RunReport;
use crate::table::{fnum, Table};

/// Prices used to evaluate a run.
///
/// ```
/// use eards_metrics::{PricingModel, RunReport};
///
/// let mut report = RunReport::empty("BF");
/// report.energy_kwh = 100.0;
/// let econ = PricingModel::default().evaluate(&report);
/// assert_eq!(econ.energy_cost, 12.0); // 100 kWh × 0.12
/// assert_eq!(econ.revenue, 0.0);      // no jobs recorded
/// ```
#[derive(Debug, Clone)]
pub struct PricingModel {
    /// Revenue per CPU·hour of *useful work* delivered (one CPU·hour =
    /// 100 cpu% of demand served for one hour), in currency units.
    pub revenue_per_cpu_hour: f64,
    /// Electricity price per kWh.
    pub energy_cost_per_kwh: f64,
    /// Fraction of a job's revenue refunded as its satisfaction falls:
    /// a job at S = 40% refunds `refund_rate × 60%` of its price. 1.0 is
    /// the full linear SLA credit.
    pub refund_rate: f64,
}

impl Default for PricingModel {
    fn default() -> Self {
        // Ballpark 2010 EU figures: ~0.10 €/CPU·h compute (EC2 m1.small
        // territory), ~0.12 €/kWh industrial electricity, full refunds.
        PricingModel {
            revenue_per_cpu_hour: 0.10,
            energy_cost_per_kwh: 0.12,
            refund_rate: 1.0,
        }
    }
}

/// The priced outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomicReport {
    /// Label copied from the run.
    pub label: String,
    /// Gross revenue for the work delivered.
    pub revenue: f64,
    /// SLA credits refunded for late jobs.
    pub sla_credits: f64,
    /// Electricity cost.
    pub energy_cost: f64,
    /// `revenue − sla_credits − energy_cost`.
    pub profit: f64,
}

impl PricingModel {
    /// Prices a run. Work is billed from each job's intrinsic demand
    /// (`dedicated × cpu`), *not* its VM residency — delaying a job must
    /// never increase what the client owes.
    pub fn evaluate(&self, report: &RunReport) -> EconomicReport {
        let mut revenue = 0.0;
        let mut credits = 0.0;
        for job in &report.jobs {
            if job.completed.is_none() {
                // Unfinished work earns nothing (and refunds nothing — it
                // was never billed).
                continue;
            }
            let price = job.work_cpu_hours * self.revenue_per_cpu_hour;
            revenue += price;
            credits += price * self.refund_rate * (1.0 - job.satisfaction / 100.0);
        }
        let energy_cost = report.energy_kwh * self.energy_cost_per_kwh;
        EconomicReport {
            label: report.label.clone(),
            revenue,
            sla_credits: credits,
            energy_cost,
            profit: revenue - credits - energy_cost,
        }
    }

    /// Prices several runs and renders them as a table, best profit last.
    pub fn table(&self, reports: &[RunReport]) -> Table {
        let mut t = Table::new(["Policy", "Revenue", "SLA credits", "Energy cost", "Profit"]);
        for r in reports {
            let e = self.evaluate(r);
            t.row([
                e.label,
                fnum(e.revenue, 2),
                fnum(e.sla_credits, 2),
                fnum(e.energy_cost, 2),
                fnum(e.profit, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::JobOutcome;
    use eards_sim::{SimDuration, SimTime};

    fn job(work_cpu_hours: f64, satisfaction: f64, done: bool) -> JobOutcome {
        JobOutcome {
            job_id: 0,
            submitted: SimTime::ZERO,
            completed: done.then(|| SimTime::from_secs(10)),
            deadline: SimDuration::from_secs(10),
            satisfaction,
            delay_pct: 0.0,
            cpu_hours: work_cpu_hours * 2.0, // residency is longer; must not be billed
            work_cpu_hours,
        }
    }

    fn pricing() -> PricingModel {
        PricingModel {
            revenue_per_cpu_hour: 1.0,
            energy_cost_per_kwh: 0.5,
            refund_rate: 1.0,
        }
    }

    #[test]
    fn prices_work_not_residency() {
        let mut r = RunReport::empty("x");
        r.jobs = vec![job(10.0, 100.0, true)];
        r.energy_kwh = 4.0;
        let e = pricing().evaluate(&r);
        assert_eq!(e.revenue, 10.0, "billed on work, not the 20 h residency");
        assert_eq!(e.sla_credits, 0.0);
        assert_eq!(e.energy_cost, 2.0);
        assert_eq!(e.profit, 8.0);
    }

    #[test]
    fn sla_credits_scale_with_violation() {
        let mut r = RunReport::empty("x");
        r.jobs = vec![job(10.0, 40.0, true)];
        let e = pricing().evaluate(&r);
        assert_eq!(e.revenue, 10.0);
        assert!((e.sla_credits - 6.0).abs() < 1e-12, "60% refunded");
    }

    #[test]
    fn unfinished_jobs_earn_and_refund_nothing() {
        let mut r = RunReport::empty("x");
        r.jobs = vec![job(10.0, 0.0, false)];
        let e = pricing().evaluate(&r);
        assert_eq!(e.revenue, 0.0);
        assert_eq!(e.sla_credits, 0.0);
    }

    #[test]
    fn partial_refund_rate() {
        let mut r = RunReport::empty("x");
        r.jobs = vec![job(10.0, 50.0, true)];
        let model = PricingModel {
            refund_rate: 0.5,
            ..pricing()
        };
        let e = model.evaluate(&r);
        assert!((e.sla_credits - 2.5).abs() < 1e-12);
    }

    #[test]
    fn table_has_one_row_per_run() {
        let a = RunReport::empty("A");
        let b = RunReport::empty("B");
        let t = pricing().table(&[a, b]);
        assert_eq!(t.len(), 2);
    }
}
