//! # eards-metrics — time-weighted statistics and experiment reporting
//!
//! Measurement layer of the EARDS reproduction of Goiri et al. (CLUSTER
//! 2010). The evaluation (§V) reports, per run: average working/online
//! nodes, CPU hours, power consumption (kWh), client satisfaction `S`,
//! relative delay, and migration counts. This crate provides:
//!
//! * [`TimeSeries`] / [`TimeWeighted`] — exact integrals and time-weighted
//!   means of piecewise-constant signals (power, node counts);
//! * [`satisfaction`] / [`delay_pct`] — the paper's deadline-based QoS
//!   metric;
//! * [`Summary`] — streaming mean/std with parallel merge;
//! * [`RunReport`] — one run's results in the paper's table shape;
//! * [`Table`] — Markdown/CSV rendering for the experiment binaries;
//! * [`PricingModel`] — provider economics (revenue, SLA credits, energy
//!   cost, profit) over a run, for the revenue extension.

#![warn(missing_docs)]

mod ascii;
mod economics;
mod report;
mod satisfaction;
mod series;
mod summary;
mod table;

pub use ascii::{bar_chart, heatmap, sparkline, sparkline_fit};
pub use economics::{EconomicReport, PricingModel};
pub use report::{pct_change, FaultStats, JobOutcome, RunReport};
pub use satisfaction::{delay_pct, satisfaction};
pub use series::{SeriesPoint, TimeSeries, TimeWeighted};
pub use summary::{percentile, Summary};
pub use table::{fnum, Table};
