//! The result record of one datacenter simulation run, with the same
//! columns the paper's evaluation tables report (Tables II–V):
//! average working/online nodes, CPU hours, power (kWh), client
//! satisfaction `S`, delay, and migration count.

use eards_sim::{Persist, PersistError, Reader, SimDuration, SimTime, Writer};

use crate::series::TimeSeries;
use crate::summary::Summary;
use crate::table::{fnum, Table};

/// Per-job result, recorded when the job leaves the system.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Raw job identifier (as assigned by the workload).
    pub job_id: u64,
    /// Submission instant.
    pub submitted: SimTime,
    /// Completion instant (`None` if still unfinished at the horizon).
    pub completed: Option<SimTime>,
    /// Agreed deadline (relative to submission).
    pub deadline: SimDuration,
    /// Client satisfaction in percent (0 for unfinished jobs).
    pub satisfaction: f64,
    /// Relative delay in percent.
    pub delay_pct: f64,
    /// Requested-CPU residency of the job's VM, in CPU·hours (one CPU·hour
    /// = 100 cpu% held for one hour). Delayed jobs hold their VM longer and
    /// therefore accrue more — this is the `CPU (h)` column of the tables.
    pub cpu_hours: f64,
    /// The job's intrinsic work (`dedicated × demand`), in CPU·hours —
    /// what a client is billed for (see [`crate::PricingModel`]).
    pub work_cpu_hours: f64,
}

/// Fault-injection and recovery counters of one run. All zero when the
/// run injects no faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Host boots that failed (host landed in the failed state).
    pub boot_failures: u64,
    /// VM creations that aborted partway through.
    pub creation_failures: u64,
    /// Live migrations that aborted partway through.
    pub migration_aborts: u64,
    /// Transient slowdown episodes started.
    pub slowdown_episodes: u64,
    /// Correlated rack outages fired.
    pub rack_outages: u64,
    /// Retries that were delayed by the exponential-backoff gate.
    pub retries_delayed: u64,
    /// Hosts blacklisted as flapping at least once.
    pub hosts_blacklisted: u64,
    /// Displaced or failed VMs that eventually restarted somewhere.
    pub recoveries: u64,
    /// Mean time from displacement to the successful restart, seconds.
    pub mean_recovery_secs: f64,
    /// Worst time from displacement to the successful restart, seconds.
    pub max_recovery_secs: f64,
    /// Invariant-auditor passes executed during the run.
    pub invariant_checks: u64,
    /// Invariant violations the auditor detected (must be 0).
    pub invariant_violations: u64,
}

impl Persist for JobOutcome {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.job_id);
        self.submitted.persist(w);
        w.put_opt(&self.completed);
        self.deadline.persist(w);
        w.put_f64(self.satisfaction);
        w.put_f64(self.delay_pct);
        w.put_f64(self.cpu_hours);
        w.put_f64(self.work_cpu_hours);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(JobOutcome {
            job_id: r.get_u64()?,
            submitted: SimTime::restore(r)?,
            completed: r.get_opt()?,
            deadline: SimDuration::restore(r)?,
            satisfaction: r.get_f64()?,
            delay_pct: r.get_f64()?,
            cpu_hours: r.get_f64()?,
            work_cpu_hours: r.get_f64()?,
        })
    }
}

impl Persist for FaultStats {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.boot_failures);
        w.put_u64(self.creation_failures);
        w.put_u64(self.migration_aborts);
        w.put_u64(self.slowdown_episodes);
        w.put_u64(self.rack_outages);
        w.put_u64(self.retries_delayed);
        w.put_u64(self.hosts_blacklisted);
        w.put_u64(self.recoveries);
        w.put_f64(self.mean_recovery_secs);
        w.put_f64(self.max_recovery_secs);
        w.put_u64(self.invariant_checks);
        w.put_u64(self.invariant_violations);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(FaultStats {
            boot_failures: r.get_u64()?,
            creation_failures: r.get_u64()?,
            migration_aborts: r.get_u64()?,
            slowdown_episodes: r.get_u64()?,
            rack_outages: r.get_u64()?,
            retries_delayed: r.get_u64()?,
            hosts_blacklisted: r.get_u64()?,
            recoveries: r.get_u64()?,
            mean_recovery_secs: r.get_f64()?,
            max_recovery_secs: r.get_f64()?,
            invariant_checks: r.get_u64()?,
            invariant_violations: r.get_u64()?,
        })
    }
}

/// Aggregated result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Label of the run (policy name / configuration).
    pub label: String,
    /// Time-averaged number of *working* nodes (hosting ≥ 1 VM).
    pub avg_working_nodes: f64,
    /// Time-averaged number of *online* nodes (powered on or booting).
    pub avg_online_nodes: f64,
    /// Total requested-CPU residency across jobs (CPU·hours).
    pub cpu_hours: f64,
    /// Total datacenter energy over the run, in kWh.
    pub energy_kwh: f64,
    /// Mean client satisfaction over all jobs, percent.
    pub satisfaction_pct: f64,
    /// Mean relative delay over all jobs, percent.
    pub delay_pct: f64,
    /// Number of VM migrations performed.
    pub migrations: u64,
    /// Number of VM creations performed.
    pub creations: u64,
    /// Number of host failures injected (0 unless the reliability extension
    /// is enabled).
    pub host_failures: u64,
    /// Number of VMs displaced by host failures (re-queued and restarted
    /// from their last checkpoint, or from scratch).
    pub vms_displaced: u64,
    /// Jobs submitted.
    pub jobs_total: u64,
    /// Jobs completed by the horizon.
    pub jobs_completed: u64,
    /// Fault-injection and recovery counters (all zero without faults).
    pub faults: FaultStats,
    /// Datacenter power draw over time (Watts), for plotting/validation.
    pub power_watts: TimeSeries,
    /// Per-job outcomes.
    pub jobs: Vec<JobOutcome>,
}

impl RunReport {
    /// Aggregates per-job outcomes into the summary fields. Called by the
    /// driver after the run; exposed for tests and custom drivers.
    pub fn finalize_jobs(&mut self) {
        let mut sat = Summary::new();
        let mut delay = Summary::new();
        let mut cpu = 0.0;
        let mut completed = 0u64;
        for j in &self.jobs {
            sat.push(j.satisfaction);
            delay.push(j.delay_pct);
            cpu += j.cpu_hours;
            if j.completed.is_some() {
                completed += 1;
            }
        }
        self.jobs_total = self.jobs.len() as u64;
        self.jobs_completed = completed;
        self.cpu_hours = cpu;
        self.satisfaction_pct = sat.mean();
        self.delay_pct = delay.mean();
    }

    /// Returns an empty report with the given label.
    pub fn empty(label: impl Into<String>) -> Self {
        RunReport {
            label: label.into(),
            avg_working_nodes: 0.0,
            avg_online_nodes: 0.0,
            cpu_hours: 0.0,
            energy_kwh: 0.0,
            satisfaction_pct: 0.0,
            delay_pct: 0.0,
            migrations: 0,
            creations: 0,
            host_failures: 0,
            vms_displaced: 0,
            jobs_total: 0,
            jobs_completed: 0,
            faults: FaultStats::default(),
            power_watts: TimeSeries::new(),
            jobs: Vec::new(),
        }
    }

    /// The row shape used by the paper's Tables II–V:
    /// `label, Work/ON, CPU (h), Pwr (kWh), S (%), delay (%), Mig`.
    pub fn paper_row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            format!(
                "{} / {}",
                fnum(self.avg_working_nodes, 1),
                fnum(self.avg_online_nodes, 1)
            ),
            fnum(self.cpu_hours, 1),
            fnum(self.energy_kwh, 1),
            fnum(self.satisfaction_pct, 1),
            fnum(self.delay_pct, 1),
            self.migrations.to_string(),
        ]
    }

    /// Header matching [`RunReport::paper_row`].
    pub fn paper_header() -> Vec<&'static str> {
        vec![
            "Policy",
            "Work/ON",
            "CPU (h)",
            "Pwr (kWh)",
            "S (%)",
            "delay (%)",
            "Mig",
        ]
    }

    /// Builds a table from several runs, in the paper's format.
    pub fn table(reports: &[RunReport]) -> Table {
        let mut t = Table::new(Self::paper_header());
        for r in reports {
            t.row(r.paper_row());
        }
        t
    }
}

/// Relative change of `new` vs `baseline` in percent (negative = reduction).
pub fn pct_change(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    100.0 * (new - baseline) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(sat: f64, delay: f64, cpu: f64, done: bool) -> JobOutcome {
        JobOutcome {
            job_id: 0,
            submitted: SimTime::ZERO,
            completed: done.then(|| SimTime::from_secs(100)),
            deadline: SimDuration::from_secs(100),
            satisfaction: sat,
            delay_pct: delay,
            cpu_hours: cpu,
            work_cpu_hours: cpu,
        }
    }

    #[test]
    fn finalize_aggregates_jobs() {
        let mut r = RunReport::empty("test");
        r.jobs = vec![
            outcome(100.0, 0.0, 2.0, true),
            outcome(50.0, 50.0, 3.0, true),
            outcome(0.0, 400.0, 1.0, false),
        ];
        r.finalize_jobs();
        assert_eq!(r.jobs_total, 3);
        assert_eq!(r.jobs_completed, 2);
        assert_eq!(r.cpu_hours, 6.0);
        assert!((r.satisfaction_pct - 50.0).abs() < 1e-12);
        assert!((r.delay_pct - 150.0).abs() < 1e-12);
    }

    #[test]
    fn paper_row_shape() {
        let mut r = RunReport::empty("SB");
        r.avg_working_nodes = 9.7;
        r.avg_online_nodes = 21.0;
        r.energy_kwh = 956.4;
        r.satisfaction_pct = 99.1;
        r.delay_pct = 9.0;
        r.migrations = 87;
        let row = r.paper_row();
        assert_eq!(row[0], "SB");
        assert_eq!(row[1], "9.7 / 21.0");
        assert_eq!(row[3], "956.4");
        assert_eq!(row[6], "87");
        assert_eq!(row.len(), RunReport::paper_header().len());
    }

    #[test]
    fn table_renders_multiple_runs() {
        let a = RunReport::empty("BF");
        let b = RunReport::empty("SB");
        let t = RunReport::table(&[a, b]);
        assert_eq!(t.len(), 2);
        assert!(t.to_markdown().contains("| BF"));
    }

    #[test]
    fn pct_change_math() {
        assert!((pct_change(1007.3, 850.2) - -15.597).abs() < 0.01);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
        assert_eq!(pct_change(100.0, 112.0), 12.0);
    }
}
