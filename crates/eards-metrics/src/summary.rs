//! Streaming summary statistics (Welford) and percentile helpers.

use eards_sim::{Persist, PersistError, Reader, Writer};

/// Streaming mean / variance accumulator (Welford's algorithm), plus
/// min/max. Numerically stable for long simulations.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d1 = x - self.mean;
        self.mean += d1 / self.n as f64;
        let d2 = x - self.mean;
        self.m2 += d1 * d2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Persist for Summary {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Summary {
            n: r.get_u64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }
}

/// Percentile of a sample set by linear interpolation (`q` in `[0, 1]`).
/// Returns `None` for an empty slice. Sorts a copy; fine for report-time use.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let mut s = Summary::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-12);
        assert_eq!(a.count(), all.count());

        // Merging an empty summary is a no-op in both directions.
        let mut e = Summary::new();
        e.merge(&all);
        assert_eq!(e.mean(), all.mean());
        all.clone().merge(&Summary::new());
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.9), Some(7.0));
    }
}
