//! Terminal visualization: sparklines, horizontal bars and heatmaps.
//!
//! The experiment binaries and the CLI render their series and surfaces
//! directly in the terminal — a week's power curve or the Figure 2/3
//! λ surface is legible at a glance without leaving the shell.

/// Unicode block ramp used by sparklines and heatmaps, light to dark.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a sparkline of `values` (one character per value). Empty input
/// yields an empty string; a constant series renders at mid-height.
pub fn sparkline(values: &[f64]) -> String {
    let (min, max) = bounds(values);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '·';
            }
            if max > min {
                let idx = ((v - min) / (max - min) * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx.min(RAMP.len() - 1)]
            } else {
                RAMP[RAMP.len() / 2]
            }
        })
        .collect()
}

/// Downsamples `values` to at most `width` points (by bucket means) and
/// renders a sparkline.
pub fn sparkline_fit(values: &[f64], width: usize) -> String {
    if width == 0 || values.is_empty() {
        return String::new();
    }
    if values.len() <= width {
        return sparkline(values);
    }
    let bucket = values.len() as f64 / width as f64;
    let compact: Vec<f64> = (0..width)
        .map(|i| {
            let lo = (i as f64 * bucket) as usize;
            let hi = (((i + 1) as f64 * bucket) as usize)
                .min(values.len())
                .max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    sparkline(&compact)
}

/// Renders labelled horizontal bars scaled to the largest value, e.g.
///
/// ```text
/// BF   ███████████████████▏ 948.6
/// SB   ███████████████▏ 761.3
/// ```
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round().max(0.0) as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} {}▏ {value:.1}\n",
            "█".repeat(filled.min(width)),
        ));
    }
    out
}

/// Renders a 2-D grid as a shaded heatmap with row/column labels; `None`
/// cells (invalid grid points) render as spaces. Values are normalized
/// over the whole grid.
pub fn heatmap(row_labels: &[String], col_labels: &[String], cells: &[Vec<Option<f64>>]) -> String {
    let flat: Vec<f64> = cells
        .iter()
        .flatten()
        .filter_map(|c| *c)
        .filter(|v| v.is_finite())
        .collect();
    let (min, max) = bounds(&flat);
    let label_w = row_labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0);
    let col_w = col_labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(1)
        + 1;

    let mut out = String::new();
    out.push_str(&" ".repeat(label_w + 1));
    for c in col_labels {
        out.push_str(&format!("{c:>col_w$}"));
    }
    out.push('\n');
    for (r, row) in cells.iter().enumerate() {
        let label = row_labels.get(r).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{label:>label_w$} "));
        for cell in row {
            let ch = match cell {
                Some(v) if v.is_finite() => {
                    if max > min {
                        let idx =
                            ((v - min) / (max - min) * (RAMP.len() - 1) as f64).round() as usize;
                        RAMP[idx.min(RAMP.len() - 1)]
                    } else {
                        RAMP[RAMP.len() / 2]
                    }
                }
                _ => ' ',
            };
            out.push_str(&format!("{:>col_w$}", ch));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{}(min {} = {:.1}, max {} = {:.1})\n",
        " ".repeat(label_w + 1),
        RAMP[0],
        min,
        RAMP[RAMP.len() - 1],
        max
    ));
    out
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if min > max {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
        // Monotone input → non-decreasing ramp indices.
        let idx = |c: char| RAMP.iter().position(|&r| r == c).unwrap();
        assert!(idx(chars[0]) <= idx(chars[1]) && idx(chars[1]) <= idx(chars[2]));
    }

    #[test]
    fn sparkline_degenerate_inputs() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.chars().count(), 3);
        assert!(flat.chars().all(|c| c == RAMP[RAMP.len() / 2]));
        assert_eq!(sparkline(&[f64::NAN]), "·");
    }

    #[test]
    fn sparkline_fit_downsamples() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = sparkline_fit(&values, 40);
        assert_eq!(s.chars().count(), 40);
        assert_eq!(sparkline_fit(&values, 0), "");
        // Short inputs pass through.
        assert_eq!(sparkline_fit(&[1.0, 2.0], 40).chars().count(), 2);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("A".to_string(), 100.0), ("BB".to_string(), 50.0)];
        let out = bar_chart(&rows, 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
        assert!(lines[0].contains("100.0"));
        // Labels aligned.
        assert!(lines[1].starts_with("BB"));
    }

    #[test]
    fn bar_chart_zero_max() {
        let out = bar_chart(&[("x".to_string(), 0.0)], 10);
        assert_eq!(out.lines().next().unwrap().matches('█').count(), 0);
    }

    #[test]
    fn heatmap_renders_grid_with_gaps() {
        let rows = vec!["10".to_string(), "50".to_string()];
        let cols = vec!["50".to_string(), "90".to_string()];
        let cells = vec![vec![Some(2000.0), Some(1300.0)], vec![None, Some(700.0)]];
        let out = heatmap(&rows, &cols, &cells);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains("50") && lines[0].contains("90"));
        // The invalid cell renders as whitespace; max cell is the darkest.
        assert!(lines[1].contains('█'));
        assert!(lines[2].contains('▁'));
        assert!(lines[3].contains("max"));
    }
}
