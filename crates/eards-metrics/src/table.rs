//! Plain-text table rendering for experiment output.
//!
//! The experiment binaries print the same rows the paper's tables report;
//! this module renders them as aligned ASCII/Markdown and as CSV without
//! pulling in a serialization stack.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// panic (a length mismatch is a bug in the experiment harness).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.header.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.header.len()
        );
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, " {:<width$} |", cell, width = w[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &w));
        out.push('\n');
        out.push('|');
        for width in &w {
            let _ = write!(out, "{}|", "-".repeat(width + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting for cells containing `,`, `"` or
    /// newlines).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.header);
        for row in &self.rows {
            push_row(row);
        }
        out
    }
}

/// Formats a float with `prec` decimals, trimming `-0.0` to `0.0`.
pub fn fnum(x: f64, prec: usize) -> String {
    let s = format!("{x:.prec$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new(["Policy", "Pwr (kWh)"]);
        t.row(["BF", "1007.3"]);
        t.row(["SB", "956.4"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| Policy |"));
        assert!(lines[1].starts_with("|--------"));
        // All rows render to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().lines().nth(1).unwrap().ends_with(",,"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn long_rows_panic() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["name", "note"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.25, 1), "3.2");
        assert_eq!(fnum(-0.0001, 2), "0.00");
        assert_eq!(fnum(-1.5, 1), "-1.5");
        assert_eq!(fnum(10.0, 0), "10");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["only", "header"]);
        assert!(t.is_empty());
        assert_eq!(t.to_markdown().lines().count(), 2);
        assert_eq!(t.to_csv().lines().count(), 1);
    }
}
