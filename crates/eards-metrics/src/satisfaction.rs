//! The paper's QoS metric (§V): deadline-based client satisfaction.
//!
//! > S = 100                                    if T_exec <  T_dead
//! > S = 100 · max{1 − (T_exec − T_dead)/T_dead, 0}   if T_exec ≥ T_dead
//!
//! A job finishing within its deadline scores 100%; one taking twice the
//! deadline (or longer) scores 0%. `delay` is the relative execution-time
//! overrun in percent, used alongside S in Tables II–V.

use eards_sim::SimDuration;

/// Client satisfaction in percent, per the paper's equation.
pub fn satisfaction(exec: SimDuration, deadline: SimDuration) -> f64 {
    if deadline.is_zero() {
        // Degenerate SLA: only instantaneous completion satisfies it.
        return if exec.is_zero() { 100.0 } else { 0.0 };
    }
    let texec = exec.as_secs_f64();
    let tdead = deadline.as_secs_f64();
    if texec < tdead {
        100.0
    } else {
        100.0 * (1.0 - (texec - tdead) / tdead).max(0.0)
    }
}

/// Relative execution delay in percent: how far past its deadline the job
/// ran, relative to the deadline. A job inside its deadline has 0% delay;
/// one taking `3 × T_dead` has 200% delay (the paper's example).
pub fn delay_pct(exec: SimDuration, deadline: SimDuration) -> f64 {
    if deadline.is_zero() {
        return if exec.is_zero() { 0.0 } else { f64::INFINITY };
    }
    let texec = exec.as_secs_f64();
    let tdead = deadline.as_secs_f64();
    (100.0 * (texec - tdead) / tdead).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn within_deadline_is_full_satisfaction() {
        assert_eq!(satisfaction(d(100), d(150)), 100.0);
        assert_eq!(delay_pct(d(100), d(150)), 0.0);
    }

    #[test]
    fn papers_worked_example() {
        // §V: deadline 150 min; taking ≥ 300 min ⇒ S = 0%, delay ... the
        // paper quotes "a delay of 200%" for 300 min vs a 100-min dedicated
        // time (factor 1.5): delay is measured against the deadline.
        let dead = d(150 * 60);
        let exec = d(300 * 60);
        assert_eq!(satisfaction(exec, dead), 0.0);
        assert_eq!(delay_pct(exec, dead), 100.0);
        // Halfway overrun: 225 min on a 150-min deadline ⇒ S = 50 %.
        assert_eq!(satisfaction(d(225 * 60), dead), 50.0);
    }

    #[test]
    fn exactly_at_deadline() {
        // T_exec == T_dead falls in the second branch: S = 100·(1 − 0) = 100.
        assert_eq!(satisfaction(d(150), d(150)), 100.0);
        assert_eq!(delay_pct(d(150), d(150)), 0.0);
    }

    #[test]
    fn beyond_double_deadline_clamps_to_zero() {
        assert_eq!(satisfaction(d(1000), d(100)), 0.0);
        assert_eq!(delay_pct(d(1000), d(100)), 900.0);
    }

    #[test]
    fn satisfaction_is_monotone_in_exec_time() {
        let dead = d(200);
        let mut last = 101.0;
        for secs in (100..800).step_by(25) {
            let s = satisfaction(d(secs), dead);
            assert!(s <= last, "satisfaction must not increase");
            assert!((0.0..=100.0).contains(&s));
            last = s;
        }
    }

    #[test]
    fn zero_deadline_degenerate() {
        assert_eq!(satisfaction(SimDuration::ZERO, SimDuration::ZERO), 100.0);
        assert_eq!(satisfaction(d(1), SimDuration::ZERO), 0.0);
        assert_eq!(delay_pct(d(1), SimDuration::ZERO), f64::INFINITY);
    }
}
