//! Run configuration and the paper's reference datacenter.

use eards_model::{FaultPlan, HostClass, HostId, HostSpec, ShardSpec};
use eards_obs::Obs;
use eards_sim::{Persist, PersistError, Reader, SimDuration, Writer};

/// How aggressively the invariant auditor runs (see
/// [`crate::InvariantAuditor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditorMode {
    /// No auditing (benchmarks that cannot afford the checks).
    Off,
    /// Always on (the default): a light conservation check after every
    /// event batch, a deep structural verification periodically.
    /// Violations are recorded in the report, never silently dropped.
    #[default]
    On,
    /// Deep verification after every event batch, and panic on the first
    /// violation — for CI smoke runs and debugging.
    Strict,
}

/// Configuration of the adaptive λ controller — the "dynamically adjust
/// these thresholds" future work of §V-A, implemented as a feedback loop:
/// periodically compare the recent client satisfaction against a target
/// and move λ_min toward more or less aggressive node turn-off.
#[derive(Debug, Clone)]
pub struct AdaptiveLambda {
    /// Satisfaction the provider wants to hold (percent).
    pub target_satisfaction: f64,
    /// How often the controller adjusts.
    pub adjust_period: SimDuration,
    /// λ_min change per adjustment.
    pub step: f64,
    /// Bounds on λ_min (λ_max stays fixed).
    pub lambda_min_bounds: (f64, f64),
    /// Minimum completed jobs in the window before adjusting (avoids
    /// reacting to noise in quiet periods).
    pub min_window_jobs: u64,
}

impl Default for AdaptiveLambda {
    fn default() -> Self {
        AdaptiveLambda {
            target_satisfaction: 99.0,
            adjust_period: SimDuration::from_mins(30),
            step: 0.05,
            lambda_min_bounds: (0.10, 0.80),
            min_window_jobs: 5,
        }
    }
}

/// Configuration of one datacenter simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// λ_min: below this working/online ratio, idle nodes are switched off
    /// (§III-C). The paper's balanced setting is 0.30.
    pub lambda_min: f64,
    /// λ_max: above this working/online ratio, off nodes are switched on.
    /// The paper's setting is 0.90.
    pub lambda_max: f64,
    /// Minimum number of online nodes kept at all times (`minexec`).
    pub min_exec: usize,
    /// Hosts switched on at t = 0.
    pub initial_on: usize,
    /// Standard deviation of the VM-creation duration jitter, seconds.
    /// §IV: "a normal distribution (µ 40, σ 2.5), as observed in the real
    /// environment, has been used in VM creations".
    pub creation_jitter_std: f64,
    /// Standard deviation of the migration duration jitter, seconds.
    pub migration_jitter_std: f64,
    /// Period of the SLA-projection check.
    pub sla_check_period: SimDuration,
    /// Period of the consolidation (migration re-evaluation) round for
    /// migrating policies (`None` disables periodic consolidation).
    pub consolidation_period: Option<SimDuration>,
    /// Escalate a violated VM's resource request so rescheduling can give
    /// it more room (§III-A.5 "dynamic SLA enforcement").
    pub dynamic_sla: bool,
    /// Adaptive λ_min feedback controller (`None` = static thresholds).
    pub adaptive_lambda: Option<AdaptiveLambda>,
    /// Checkpoint running VMs this often (`None` disables; used by the
    /// reliability experiments).
    pub checkpoint_period: Option<SimDuration>,
    /// Duration of one checkpoint write.
    pub checkpoint_duration: SimDuration,
    /// The fault-injection plan ([`FaultPlan::none`] by default). Set via
    /// [`RunConfig::with_faults`]. Reliability-driven host crashes — the
    /// behaviour of the removed legacy `failures: bool` flag — are
    /// [`FaultPlan::crashes`].
    pub faults: FaultPlan,
    /// Invariant-auditor mode (always on by default).
    pub auditor: AuditorMode,
    /// Time from failure to the host becoming bootable again.
    pub repair_time: SimDuration,
    /// Keep simulating after the last arrival until every job finishes,
    /// up to this long.
    pub drain_limit: SimDuration,
    /// Record the full power time series (needed by the validation and
    /// plotting experiments; aggregates are always recorded).
    pub record_power_series: bool,
    /// Record the audit log (every placement, migration, power transition
    /// and failure, timestamped) — see [`crate::AuditEvent`].
    pub audit: bool,
    /// RNG seed for the run's stochastic elements (operation jitter,
    /// failures). The workload has its own seed.
    pub seed: u64,
    /// Observability handle threaded through the runner (and, when the
    /// caller builds the policy with the same handle, the solver).
    /// Disabled by default: every hook is a no-op and the run is
    /// bit-identical to an unobserved one.
    pub obs: Obs,
    /// Per-round solver work budget in deterministic work units (cell
    /// rescores + argmin scans). `None` = unlimited: the run is
    /// bit-identical to one without the overload-control layer. This
    /// field documents the run; the budget itself is armed on the policy
    /// (see `eards_core::ScoreScheduler::with_overload`).
    pub solver_budget: Option<u64>,
    /// Shard count requested for the hierarchical solver (`None` or
    /// `Some(1)` = the dense single-matrix path). Like `solver_budget`
    /// this field documents the run — the spec itself is armed on the
    /// policy (see `eards_core::ScoreScheduler::with_shards`) — but the
    /// runner also reads it to arm the auditor's cross-shard
    /// conservation check, at construction and again after a restore.
    pub shards: Option<u32>,
    /// Enable runner backpressure: cap retry backoff growth at
    /// [`RunConfig::park_after`] attempts and park VMs past the cap in a
    /// deterministic queue that re-enters admission when the flapping
    /// blacklist clears. Off by default (legacy unbounded backoff).
    pub degrade: bool,
    /// Retry attempts after which a still-queued VM is parked rather than
    /// re-entering the backoff ladder (only when [`RunConfig::degrade`]).
    pub park_after: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            lambda_min: 0.30,
            lambda_max: 0.90,
            min_exec: 1,
            initial_on: 10,
            creation_jitter_std: 2.5,
            migration_jitter_std: 2.5,
            sla_check_period: SimDuration::from_secs(60),
            consolidation_period: Some(SimDuration::from_mins(10)),
            dynamic_sla: false,
            adaptive_lambda: None,
            checkpoint_period: None,
            checkpoint_duration: SimDuration::from_secs(10),
            faults: FaultPlan::none(),
            auditor: AuditorMode::On,
            repair_time: SimDuration::from_mins(30),
            drain_limit: SimDuration::from_days(2),
            record_power_series: false,
            audit: false,
            seed: 0x0EA2D5,
            obs: Obs::disabled(),
            solver_budget: None,
            shards: None,
            degrade: false,
            park_after: 6,
        }
    }
}

impl RunConfig {
    /// Sets the λ thresholds (given in percent, as the paper quotes them:
    /// e.g. `with_lambdas(30, 90)`).
    pub fn with_lambdas(mut self, lambda_min_pct: u32, lambda_max_pct: u32) -> Self {
        assert!(lambda_min_pct < lambda_max_pct, "λ_min must be below λ_max");
        self.lambda_min = f64::from(lambda_min_pct) / 100.0;
        self.lambda_max = f64::from(lambda_max_pct) / 100.0;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the invariant-auditor mode.
    pub fn with_auditor(mut self, mode: AuditorMode) -> Self {
        self.auditor = mode;
        self
    }

    /// Attaches an observability handle. Pass a clone of the same handle
    /// to [`eards_core::ScoreScheduler::with_obs`] to capture solver
    /// spans and score attributions in the same trace.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Enables overload control: records the per-round solver work budget
    /// and switches on runner backpressure (retry cap + parked queue).
    pub fn with_overload(mut self, budget: u64) -> Self {
        self.solver_budget = Some(budget);
        self.degrade = true;
        self
    }

    /// Records the sharding request for the hierarchical solver. Arm the
    /// matching spec on the policy with
    /// `eards_core::ScoreScheduler::with_shards` — the runner uses this
    /// field to keep the auditor's cross-shard check in step.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The shard spec this configuration implies: `Some` only when the
    /// requested count is ≥ 2, with the rack size taken from the fault
    /// plan's rack layout (default 8 when no racks are configured) so
    /// shard boundaries respect the same fault domains the injector
    /// correlates.
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        let count = self.shards.filter(|&n| n >= 2)?;
        let rack_size = self
            .faults
            .rack
            .as_ref()
            .map_or(8, |r| r.rack_size.max(1) as u32);
        Some(ShardSpec { count, rack_size })
    }
}

impl Persist for AuditorMode {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            AuditorMode::Off => 0,
            AuditorMode::On => 1,
            AuditorMode::Strict => 2,
        });
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(AuditorMode::Off),
            1 => Ok(AuditorMode::On),
            2 => Ok(AuditorMode::Strict),
            t => Err(PersistError::Corrupt(format!("bad AuditorMode tag {t}"))),
        }
    }
}

/// The paper's evaluation datacenter (§V): 100 nodes — 15 fast, 50 medium,
/// 35 slow (classes differ in creation/migration overheads).
pub fn paper_datacenter() -> Vec<HostSpec> {
    let mut specs = Vec::with_capacity(100);
    for i in 0..100u32 {
        let class = match i {
            0..=14 => HostClass::Fast,
            15..=64 => HostClass::Medium,
            _ => HostClass::Slow,
        };
        specs.push(HostSpec::standard(HostId(i), class));
    }
    specs
}

/// A small uniform datacenter for tests and examples.
pub fn small_datacenter(n: u32, class: HostClass) -> Vec<HostSpec> {
    (0..n)
        .map(|i| HostSpec::standard(HostId(i), class))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_datacenter_composition() {
        let dc = paper_datacenter();
        assert_eq!(dc.len(), 100);
        let count = |c: HostClass| dc.iter().filter(|h| h.class == c).count();
        assert_eq!(count(HostClass::Fast), 15);
        assert_eq!(count(HostClass::Medium), 50);
        assert_eq!(count(HostClass::Slow), 35);
        // Ids are dense and ordered (a Cluster precondition).
        for (i, h) in dc.iter().enumerate() {
            assert_eq!(h.id.raw() as usize, i);
        }
    }

    #[test]
    fn lambda_builder() {
        let cfg = RunConfig::default().with_lambdas(40, 90);
        assert_eq!(cfg.lambda_min, 0.40);
        assert_eq!(cfg.lambda_max, 0.90);
    }

    #[test]
    #[should_panic(expected = "below")]
    fn inverted_lambdas_rejected() {
        RunConfig::default().with_lambdas(90, 30);
    }

    #[test]
    fn defaults_match_paper() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.lambda_min, 0.30);
        assert_eq!(cfg.lambda_max, 0.90);
        assert_eq!(cfg.creation_jitter_std, 2.5);
        assert!(cfg.faults.is_none(), "no fault injection by default");
        assert_eq!(cfg.auditor, AuditorMode::On, "auditor always on");
    }

    #[test]
    fn with_faults_sets_the_plan() {
        let cfg = RunConfig::default().with_faults(FaultPlan::chaos(1.0));
        assert!(cfg.faults.host_crashes);
        assert_eq!(cfg.faults, FaultPlan::chaos(1.0));
    }

    #[test]
    fn crashes_plan_replaces_legacy_failures_flag() {
        // What `failures: true` used to mean: reliability-driven crashes
        // and nothing else.
        let cfg = RunConfig::default().with_faults(FaultPlan::crashes());
        assert!(cfg.faults.host_crashes);
        assert_eq!(cfg.faults.crash_mttf, None, "reliability-driven MTTF");
        assert_eq!(cfg.faults.creation_failure_prob, 0.0);
    }
}
