//! The fault engine: turns a [`FaultPlan`] into concrete, reproducible
//! fault decisions for the driver.
//!
//! Every fault class draws from its **own per-host RNG stream**, seeded
//! from the plan seed, the class, and the host id. Consequences:
//!
//! * classes are independent — enabling migration aborts does not shift
//!   the crash schedule;
//! * hosts are independent — the same host sees the same fault sequence
//!   regardless of what happens elsewhere;
//! * runs are reproducible — the same plan seed yields the same decisions
//!   across runs *and across policies*, as long as the host reaches the
//!   same decision points (the determinism tests pin this down).
//!
//! When a class is disabled its streams are never built and never drawn
//! from, which keeps the whole layer zero-cost under
//! [`FaultPlan::none`].

use eards_model::FaultPlan;
use eards_sim::{Persist, PersistError, Reader, SimDuration, SimRng, Writer};

/// Class-stream tags, XORed into the seed. The crash tag predates this
/// module and must stay `0xFA11`: legacy `failures: bool` runs derive
/// bit-identical crash schedules from it.
const CRASH_TAG: u64 = 0xFA11;
const BOOT_TAG: u64 = 0xB007;
const CREATE_TAG: u64 = 0xC7EA;
const MIGRATE_TAG: u64 = 0x316A;
const SLOWDOWN_TAG: u64 = 0x510E;
const RACK_TAG: u64 = 0x7ACC;

/// Fraction bounds of an operation's duration at which a doomed
/// creation/migration aborts: never instantly, never at the very end.
const ABORT_WINDOW: (f64, f64) = (0.15, 0.85);

fn streams(seed: u64, tag: u64, n: usize) -> Vec<SimRng> {
    (0..n)
        .map(|i| SimRng::seed_from_u64(seed ^ tag ^ ((i as u64) << 17)))
        .collect()
}

/// Samples fault decisions for one run according to a [`FaultPlan`].
///
/// Owned by the driver; exposed for custom drivers that want the same
/// reproducibility guarantees.
pub struct FaultEngine {
    plan: FaultPlan,
    crash: Vec<SimRng>,
    boot: Vec<SimRng>,
    create: Vec<SimRng>,
    migrate: Vec<SimRng>,
    slowdown: Vec<SimRng>,
    rack: Vec<SimRng>,
}

impl FaultEngine {
    /// Builds the engine for `num_hosts` hosts. `default_seed` is the
    /// run's driver seed, used when the plan carries no seed of its own.
    /// Streams of disabled classes are not built.
    pub fn new(plan: FaultPlan, num_hosts: usize, default_seed: u64) -> Self {
        let seed = plan.seed.unwrap_or(default_seed);
        let crash = if plan.host_crashes {
            streams(seed, CRASH_TAG, num_hosts)
        } else {
            Vec::new()
        };
        let boot = if plan.boot_failure_prob > 0.0 {
            streams(seed, BOOT_TAG, num_hosts)
        } else {
            Vec::new()
        };
        let create = if plan.creation_failure_prob > 0.0 {
            streams(seed, CREATE_TAG, num_hosts)
        } else {
            Vec::new()
        };
        let migrate = if plan.migration_abort_prob > 0.0 {
            streams(seed, MIGRATE_TAG, num_hosts)
        } else {
            Vec::new()
        };
        let slowdown = if plan.slowdown.is_some() {
            streams(seed, SLOWDOWN_TAG, num_hosts)
        } else {
            Vec::new()
        };
        let rack = match &plan.rack {
            Some(r) => streams(seed, RACK_TAG, num_hosts.div_ceil(r.rack_size.max(1))),
            None => Vec::new(),
        };
        FaultEngine {
            plan,
            crash,
            boot,
            create,
            migrate,
            slowdown,
            rack,
        }
    }

    /// The plan the engine samples from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of racks the plan partitions `num_hosts` hosts into
    /// (0 without a rack plan).
    pub fn num_racks(&self) -> usize {
        self.rack.len()
    }

    /// Time to the next crash of host `h` (spec reliability
    /// `reliability`), or `None` if crashes are disabled or the host
    /// never fails. Call when the host comes up; the returned delay is
    /// measured from that instant.
    pub fn time_to_crash(&mut self, h: usize, reliability: f64) -> Option<SimDuration> {
        if !self.plan.host_crashes {
            return None;
        }
        let mttf = match self.plan.crash_mttf {
            Some(d) => d.as_secs_f64(),
            None => {
                if reliability >= 1.0 {
                    return None;
                }
                // Availability = MTTF/(MTTF+MTTR) = reliability.
                self.plan.mttr.as_secs_f64() * reliability / (1.0 - reliability)
            }
        };
        let ttf = self.crash[h].exponential(1.0 / mttf.max(1.0));
        Some(SimDuration::from_secs_f64(ttf))
    }

    /// Decides whether the boot of host `h` that just completed its boot
    /// delay fails instead of coming up.
    pub fn boot_fails(&mut self, h: usize) -> bool {
        let p = self.plan.boot_failure_prob;
        p > 0.0 && self.boot[h].chance(p)
    }

    /// Decides whether a creation on host `h` is doomed; returns the
    /// fraction of the operation's duration at which it aborts.
    pub fn creation_fails(&mut self, h: usize) -> Option<f64> {
        let p = self.plan.creation_failure_prob;
        if p > 0.0 && self.create[h].chance(p) {
            Some(self.create[h].uniform_range(ABORT_WINDOW.0, ABORT_WINDOW.1))
        } else {
            None
        }
    }

    /// Decides whether a migration into host `h` (the destination, whose
    /// page-copy receive is the failing end) is doomed; returns the abort
    /// fraction.
    pub fn migration_aborts(&mut self, h: usize) -> Option<f64> {
        let p = self.plan.migration_abort_prob;
        if p > 0.0 && self.migrate[h].chance(p) {
            Some(self.migrate[h].uniform_range(ABORT_WINDOW.0, ABORT_WINDOW.1))
        } else {
            None
        }
    }

    /// Time to the next slowdown episode on host `h`, or `None` if
    /// slowdowns are disabled. Call when the host comes up or an episode
    /// ends.
    pub fn time_to_slowdown(&mut self, h: usize) -> Option<SimDuration> {
        let mtbe = self.plan.slowdown.as_ref()?.mtbe.as_secs_f64();
        let dt = self.slowdown[h].exponential(1.0 / mtbe.max(1.0));
        Some(SimDuration::from_secs_f64(dt))
    }

    /// Time to the next outage of rack `r`, or `None` if rack outages are
    /// disabled. Call at start-up and after each outage fires.
    pub fn time_to_rack_outage(&mut self, r: usize) -> Option<SimDuration> {
        let mtbf = self.plan.rack.as_ref()?.mtbf.as_secs_f64();
        let dt = self.rack[r].exponential(1.0 / mtbf.max(1.0));
        Some(SimDuration::from_secs_f64(dt))
    }
}

/// Canonical state: the plan plus the *positions* of every per-host
/// per-class RNG stream. Re-deriving the streams from the seed on restore
/// would rewind them to the start of the run and replay already-consumed
/// fault decisions; the stream states themselves must travel.
impl Persist for FaultEngine {
    fn persist(&self, w: &mut Writer) {
        self.plan.persist(w);
        self.crash.persist(w);
        self.boot.persist(w);
        self.create.persist(w);
        self.migrate.persist(w);
        self.slowdown.persist(w);
        self.rack.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let e = FaultEngine {
            plan: FaultPlan::restore(r)?,
            crash: Vec::restore(r)?,
            boot: Vec::restore(r)?,
            create: Vec::restore(r)?,
            migrate: Vec::restore(r)?,
            slowdown: Vec::restore(r)?,
            rack: Vec::restore(r)?,
        };
        // Enabled classes must carry streams; disabled ones must not.
        let want = |enabled: bool, v: &Vec<SimRng>, class: &str| {
            if enabled == v.is_empty() {
                Err(PersistError::Corrupt(format!(
                    "{class} streams inconsistent with plan (enabled={enabled}, n={})",
                    v.len()
                )))
            } else {
                Ok(())
            }
        };
        want(e.plan.host_crashes, &e.crash, "crash")?;
        want(e.plan.boot_failure_prob > 0.0, &e.boot, "boot")?;
        want(e.plan.creation_failure_prob > 0.0, &e.create, "create")?;
        want(e.plan.migration_abort_prob > 0.0, &e.migrate, "migrate")?;
        want(e.plan.slowdown.is_some(), &e.slowdown, "slowdown")?;
        want(e.plan.rack.is_some(), &e.rack, "rack")?;
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_classes_build_no_streams() {
        let e = FaultEngine::new(FaultPlan::none(), 10, 42);
        assert!(e.crash.is_empty() && e.boot.is_empty());
        assert!(e.create.is_empty() && e.migrate.is_empty());
        assert!(e.slowdown.is_empty() && e.rack.is_empty());
        assert_eq!(e.num_racks(), 0);
    }

    #[test]
    fn crash_stream_matches_legacy_formula() {
        // The legacy driver sampled host crashes from
        // `seed ^ 0xFA11 ^ (h << 17)` with MTTF = MTTR·rel/(1−rel); the
        // engine must reproduce it bit-for-bit so legacy runs replay.
        let seed = 3u64;
        let rel = 0.9;
        let mttr = SimDuration::from_mins(30);
        let mut plan = FaultPlan::crashes();
        plan.mttr = mttr;
        let mut e = FaultEngine::new(plan, 4, seed);
        for h in 0..4usize {
            let mut legacy = SimRng::seed_from_u64(seed ^ 0xFA11 ^ ((h as u64) << 17));
            let mttf = mttr.as_secs_f64() * rel / (1.0 - rel);
            let want = SimDuration::from_secs_f64(legacy.exponential(1.0 / mttf.max(1.0)));
            assert_eq!(e.time_to_crash(h, rel), Some(want));
        }
    }

    #[test]
    fn perfect_hosts_never_crash_without_override() {
        let mut e = FaultEngine::new(FaultPlan::crashes(), 2, 1);
        assert_eq!(e.time_to_crash(0, 1.0), None);
        assert!(e.time_to_crash(0, 0.99).is_some());
        // With a uniform MTTF override even perfect hosts crash.
        let mut plan = FaultPlan::crashes();
        plan.crash_mttf = Some(SimDuration::from_hours(1));
        let mut e = FaultEngine::new(plan, 2, 1);
        assert!(e.time_to_crash(0, 1.0).is_some());
    }

    #[test]
    fn classes_are_independent_streams() {
        // Enabling an extra class must not change another class's
        // decisions at the same decision points.
        let mut only_create = FaultPlan::none();
        only_create.creation_failure_prob = 0.3;
        let mut everything = FaultPlan::chaos(1.0);
        everything.creation_failure_prob = 0.3;
        let mut a = FaultEngine::new(only_create, 8, 99);
        let mut b = FaultEngine::new(everything, 8, 99);
        for h in 0..8 {
            for _ in 0..50 {
                assert_eq!(a.creation_fails(h), b.creation_fails(h));
            }
        }
    }

    #[test]
    fn abort_fraction_stays_inside_window() {
        let mut plan = FaultPlan::none();
        plan.migration_abort_prob = 0.9;
        let mut e = FaultEngine::new(plan, 1, 7);
        let mut seen = 0;
        for _ in 0..200 {
            if let Some(f) = e.migration_aborts(0) {
                assert!((ABORT_WINDOW.0..=ABORT_WINDOW.1).contains(&f));
                seen += 1;
            }
        }
        assert!(seen > 100, "p=0.9 should abort most attempts: {seen}");
    }

    #[test]
    fn plan_seed_overrides_driver_seed() {
        let mut plan = FaultPlan::crashes();
        plan.seed = Some(1234);
        let mut a = FaultEngine::new(plan.clone(), 2, 1);
        let mut b = FaultEngine::new(plan, 2, 999_999);
        assert_eq!(a.time_to_crash(0, 0.9), b.time_to_crash(0, 0.9));
    }

    #[test]
    fn persist_round_trip_resumes_streams_mid_draw() {
        let mut e = FaultEngine::new(FaultPlan::chaos(1.5), 6, 77);
        // Consume an uneven prefix of several streams.
        for h in 0..6 {
            e.time_to_crash(h, 0.9);
            for _ in 0..h {
                e.creation_fails(h);
                e.migration_aborts(h);
            }
        }
        e.boot_fails(2);
        e.time_to_slowdown(4);
        e.time_to_rack_outage(0);

        let mut w = Writer::new();
        e.persist(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        let mut restored = FaultEngine::restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.plan(), e.plan());
        for h in 0..6 {
            for _ in 0..20 {
                assert_eq!(restored.time_to_crash(h, 0.9), e.time_to_crash(h, 0.9));
                assert_eq!(restored.creation_fails(h), e.creation_fails(h));
                assert_eq!(restored.migration_aborts(h), e.migration_aborts(h));
                assert_eq!(restored.boot_fails(h), e.boot_fails(h));
                assert_eq!(restored.time_to_slowdown(h), e.time_to_slowdown(h));
            }
        }
        assert_eq!(restored.time_to_rack_outage(0), e.time_to_rack_outage(0));
    }

    #[test]
    fn restore_rejects_stream_plan_mismatch() {
        let e = FaultEngine::new(FaultPlan::crashes(), 3, 1);
        let mut w = Writer::new();
        // A crashes plan with the crash streams stripped out.
        e.plan.persist(&mut w);
        let empty: Vec<SimRng> = Vec::new();
        for _ in 0..6 {
            empty.persist(&mut w);
        }
        let bytes = w.into_bytes().unwrap();
        assert!(FaultEngine::restore(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn rack_count_rounds_up() {
        let mut plan = FaultPlan::none();
        plan.rack = Some(Default::default()); // rack_size 8
        let e = FaultEngine::new(plan, 20, 1);
        assert_eq!(e.num_racks(), 3);
    }
}
