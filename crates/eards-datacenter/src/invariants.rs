//! The always-on invariant auditor.
//!
//! Fault injection multiplies the state-transition paths through the
//! driver — crashes during migrations, aborts during repairs, shutdowns
//! racing armed timers. The auditor re-validates conservation properties
//! after **every** event batch so a bookkeeping bug surfaces at the event
//! that introduced it, not as a mysteriously wrong table three simulated
//! days later:
//!
//! * no VM is lost or duplicated (queued + placed + finished = admitted);
//! * only ready hosts carry VMs or operations;
//! * CPU allocations never exceed a host's effective capacity, and
//!   committed memory never exceeds its physical memory;
//! * power accounting agrees with host state (an unpowered host burns
//!   no CPU);
//! * fault timers only target hosts that are actually up (reported by the
//!   driver, which owns the timers).
//!
//! The light pass is `O(hosts + VMs)` per batch; a deep structural pass
//! ([`Cluster::verify`]) runs periodically — or after every batch in
//! [`AuditorMode::Strict`], which also panics on the first violation
//! (used by the CI chaos smoke run).

use std::collections::HashSet;

use eards_model::{Cluster, ShardMap, VmId};
use eards_sim::{Persist, PersistError, Reader, SimTime, Writer};

use crate::config::AuditorMode;

/// Batches between deep [`Cluster::verify`] passes in [`AuditorMode::On`].
const DEEP_PERIOD: u64 = 256;

/// Maximum violation messages retained (the counter keeps counting).
const MAX_MESSAGES: usize = 8;

/// Validates cluster-wide conservation invariants as the run progresses.
pub struct InvariantAuditor {
    mode: AuditorMode,
    checks: u64,
    violations: u64,
    messages: Vec<String>,
    // lint:allow(D001): duplicate-detection via insert() only, never iterated. lint:allow(SNAP001): per-pass scratch, cleared before every use
    seen: HashSet<VmId>,
    /// Rack-aligned partition to validate when the policy runs the
    /// sharded solver: the light pass additionally checks that the map
    /// still partitions the live cluster and that per-shard resident
    /// counts sum to the global placed count (no VM slips between
    /// shards). Not persisted — the runner re-derives it from the run
    /// configuration after a restore.
    // lint:allow(SNAP001): re-armed by the runner via set_shard_map after restore
    shard_map: Option<ShardMap>,
    /// Per-shard resident counters, recycled across light passes.
    // lint:allow(SNAP001): scratch buffer, resized on first use after restore
    shard_scratch: Vec<u64>,
}

impl InvariantAuditor {
    /// Builds an auditor in the given mode.
    pub fn new(mode: AuditorMode) -> Self {
        InvariantAuditor {
            mode,
            checks: 0,
            violations: 0,
            messages: Vec::new(),
            seen: HashSet::new(),
            shard_map: None,
            shard_scratch: Vec::new(),
        }
    }

    /// True unless the auditor is [`AuditorMode::Off`].
    pub fn enabled(&self) -> bool {
        self.mode != AuditorMode::Off
    }

    /// Arms (or disarms) the cross-shard conservation check. The runner
    /// calls this at construction and again after a snapshot restore,
    /// passing the same map the sharded solver partitions by.
    pub fn set_shard_map(&mut self, map: Option<ShardMap>) {
        self.shard_map = map;
    }

    /// Audit passes executed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violations detected so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first few violation messages, for reports and debugging.
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// Records a violation detected outside the cluster checks (e.g. the
    /// driver's own timer bookkeeping). Panics in strict mode.
    pub fn report(&mut self, at: SimTime, msg: String) {
        let msg = format!("[{at}] {msg}");
        if self.mode == AuditorMode::Strict {
            // lint:allow(P001): strict mode exists to abort on the first violation; counting mode is the panic-free path
            panic!("invariant violated: {msg}");
        }
        self.violations += 1;
        if self.messages.len() < MAX_MESSAGES {
            self.messages.push(msg);
        }
    }

    /// Runs one audit pass after an event batch. `finished` is the number
    /// of VMs the driver has completed (they stay in the cluster's VM
    /// table but reside nowhere).
    pub fn check(&mut self, cluster: &Cluster, finished: u64, at: SimTime) {
        if !self.enabled() {
            return;
        }
        self.checks += 1;
        if let Err(msg) = self.light_pass(cluster, finished) {
            self.report(at, msg);
        }
        let deep = self.mode == AuditorMode::Strict || self.checks.is_multiple_of(DEEP_PERIOD);
        if deep {
            if let Err(msg) = cluster.verify() {
                self.report(at, msg);
            }
        }
    }

    fn light_pass(&mut self, cluster: &Cluster, finished: u64) -> Result<(), String> {
        self.seen.clear();
        let mut placed = 0u64;
        for h in cluster.hosts() {
            let id = h.spec.id;
            for &vm in &h.resident {
                if !self.seen.insert(vm) {
                    return Err(format!("{vm} resident on two hosts"));
                }
                placed += 1;
            }
            if !h.power.is_ready() && !h.is_idle() {
                return Err(format!("{id} carries VMs/ops in state {:?}", h.power));
            }
            if !h.power.draws_power() && cluster.cpu_used(id) != 0.0 {
                return Err(format!("unpowered {id} accounts nonzero CPU"));
            }
            let alloc: f64 = h.resident.iter().map(|&vm| cluster.vm(vm).alloc).sum();
            let capacity = h.spec.cpu.as_f64() * h.cpu_factor;
            if alloc > capacity + 1e-6 {
                return Err(format!(
                    "{id} CPU oversubscribed: {alloc:.3} allocated on {capacity:.3}"
                ));
            }
            if cluster.committed(id).mem > h.spec.capacity().mem {
                return Err(format!("{id} memory oversubscribed"));
            }
        }
        if let Some(map) = &self.shard_map {
            map.verify(cluster.num_hosts())?;
            self.shard_scratch.clear();
            self.shard_scratch.resize(map.num_shards(), 0);
            for h in cluster.hosts() {
                let s = map.shard_of(h.spec.id.raw() as usize);
                self.shard_scratch[s] += h.resident.len() as u64;
            }
            let by_shard: u64 = self.shard_scratch.iter().sum();
            if by_shard != placed {
                return Err(format!(
                    "shard conservation broken: per-shard residents sum to {by_shard}, \
                     global placed is {placed}"
                ));
            }
        }
        let admitted = cluster.num_vms() as u64;
        let accounted = cluster.queue().len() as u64 + placed + finished;
        if accounted != admitted {
            return Err(format!(
                "VM conservation broken: {} queued + {placed} placed + {finished} finished \
                 != {admitted} admitted",
                cluster.queue().len()
            ));
        }
        Ok(())
    }
}

/// Canonical state: mode and counters. The `seen` set is per-pass scratch
/// (cleared at the top of every light pass) and is rebuilt empty.
impl Persist for InvariantAuditor {
    fn persist(&self, w: &mut Writer) {
        self.mode.persist(w);
        w.put_u64(self.checks);
        w.put_u64(self.violations);
        self.messages.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(InvariantAuditor {
            mode: AuditorMode::restore(r)?,
            checks: r.get_u64()?,
            violations: r.get_u64()?,
            messages: Vec::restore(r)?,
            seen: HashSet::new(),
            shard_map: None,
            shard_scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState};
    use eards_sim::SimDuration;

    fn cluster(n: u32) -> Cluster {
        let specs = (0..n)
            .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
            .collect();
        Cluster::new(specs, PowerState::On)
    }

    fn submit(c: &mut Cluster, id: u64) -> VmId {
        c.submit_job(Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(100),
            Mem::gib(1),
            SimDuration::from_secs(100),
            1.5,
        ))
    }

    #[test]
    fn clean_cluster_passes() {
        let mut c = cluster(2);
        let vm = submit(&mut c, 1);
        c.start_creation(vm, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        let mut a = InvariantAuditor::new(AuditorMode::On);
        a.check(&c, 0, SimTime::ZERO);
        assert_eq!(a.checks(), 1);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn off_mode_does_nothing() {
        let c = cluster(1);
        let mut a = InvariantAuditor::new(AuditorMode::Off);
        assert!(!a.enabled());
        a.check(&c, 5, SimTime::ZERO); // wrong `finished` would trip a check
        assert_eq!(a.checks(), 0);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn lost_vm_is_detected() {
        let mut c = cluster(1);
        submit(&mut c, 1);
        let mut a = InvariantAuditor::new(AuditorMode::On);
        // Claim one VM finished while it still sits in the queue: the
        // conservation count comes out wrong.
        a.check(&c, 1, SimTime::ZERO);
        assert_eq!(a.violations(), 1);
        assert!(
            a.messages()[0].contains("conservation"),
            "{:?}",
            a.messages()
        );
    }

    #[test]
    fn strict_mode_panics() {
        let c = cluster(1);
        let mut a = InvariantAuditor::new(AuditorMode::Strict);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.check(&c, 3, SimTime::ZERO)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn shard_conservation_checks_the_partition() {
        let mut c = cluster(4);
        let vm = submit(&mut c, 1);
        c.start_creation(vm, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        let mut a = InvariantAuditor::new(AuditorMode::On);
        a.set_shard_map(Some(ShardMap::build(4, 2, 2)));
        a.check(&c, 0, SimTime::ZERO);
        assert_eq!(a.violations(), 0, "{:?}", a.messages());
        // A map built for a different cluster size is not a partition of
        // this one: the light pass must flag it.
        a.set_shard_map(Some(ShardMap::build(3, 2, 2)));
        a.check(&c, 0, SimTime::ZERO);
        assert_eq!(a.violations(), 1);
    }

    #[test]
    fn message_cap_holds_while_counter_counts() {
        let c = cluster(1);
        let mut a = InvariantAuditor::new(AuditorMode::On);
        for _ in 0..20 {
            a.check(&c, 1, SimTime::ZERO);
        }
        assert_eq!(a.violations(), 20);
        assert_eq!(a.messages().len(), MAX_MESSAGES);
    }
}
