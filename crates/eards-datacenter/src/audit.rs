//! The audit log: a structured record of everything the datacenter did.
//!
//! Debugging a scheduling policy from aggregate numbers alone is
//! miserable; the audit log captures every consequential transition —
//! arrivals, placements, migrations, completions, power transitions,
//! failures, λ adjustments — with its timestamp, so a run can be replayed,
//! diffed, or rendered as a timeline (see the `datacenter_timeline`
//! example).

use eards_model::{HostId, VmId};
use eards_sim::{Persist, PersistError, Reader, SimTime, Writer};

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditKind {
    /// A job entered the virtual-host queue.
    JobArrived {
        /// The VM wrapping it.
        vm: VmId,
    },
    /// VM creation started on a host.
    CreationStarted {
        /// The VM.
        vm: VmId,
        /// Target host.
        host: HostId,
    },
    /// Creation finished; the job began executing.
    VmStarted {
        /// The VM.
        vm: VmId,
        /// Its host.
        host: HostId,
    },
    /// A live migration started.
    MigrationStarted {
        /// The VM.
        vm: VmId,
        /// Source host.
        from: HostId,
        /// Destination host.
        to: HostId,
    },
    /// A live migration completed.
    MigrationFinished {
        /// The VM.
        vm: VmId,
        /// The new host.
        to: HostId,
    },
    /// The job finished and its VM was destroyed.
    JobCompleted {
        /// The VM.
        vm: VmId,
        /// Client satisfaction earned.
        satisfaction: f64,
    },
    /// A checkpoint of the VM completed.
    CheckpointTaken {
        /// The VM.
        vm: VmId,
    },
    /// A host began booting.
    HostPoweringOn {
        /// The host.
        host: HostId,
    },
    /// A host finished booting.
    HostOn {
        /// The host.
        host: HostId,
    },
    /// A host began shutting down.
    HostPoweringOff {
        /// The host.
        host: HostId,
    },
    /// A VM creation aborted (dom0 failure); the VM returned to the queue.
    CreationFailed {
        /// The VM.
        vm: VmId,
        /// The host it was being created on.
        host: HostId,
    },
    /// A live migration aborted; the VM stayed on the source.
    MigrationAborted {
        /// The VM.
        vm: VmId,
        /// The host it stayed on.
        from: HostId,
        /// The destination whose reservation was released.
        to: HostId,
    },
    /// A host crashed.
    HostFailed {
        /// The host.
        host: HostId,
        /// VMs displaced back to the queue.
        displaced: usize,
    },
    /// A host boot failed; the host must be repaired before retrying.
    BootFailed {
        /// The host.
        host: HostId,
    },
    /// A transient slowdown episode began on a host.
    SlowdownStarted {
        /// The host.
        host: HostId,
        /// Effective-capacity multiplier during the episode.
        factor: f64,
    },
    /// A slowdown episode ended; the host is back to nominal capacity.
    SlowdownEnded {
        /// The host.
        host: HostId,
    },
    /// A correlated rack outage struck every powered host of one rack.
    RackOutage {
        /// The rack index (hosts `rack·size .. (rack+1)·size`).
        rack: usize,
        /// Hosts actually taken down (off hosts are unaffected).
        failed: usize,
    },
    /// A flapping host was blacklisted (reliability penalty applied).
    HostBlacklisted {
        /// The host.
        host: HostId,
        /// Crashes it has accumulated.
        crashes: u32,
    },
    /// A failed host became bootable again.
    HostRepaired {
        /// The host.
        host: HostId,
    },
    /// The adaptive controller moved λ_min.
    LambdaAdjusted {
        /// The new λ_min.
        lambda_min: f64,
    },
    /// Backpressure parked a flapping VM (retry attempts passed the cap).
    VmParked {
        /// The parked VM.
        vm: VmId,
        /// Retry attempts when parked.
        attempts: u32,
    },
    /// A parked VM re-entered admission (flapping blacklist cleared).
    VmUnparked {
        /// The released VM.
        vm: VmId,
    },
    /// Degrade mode lifted a repaired host's flapping blacklist.
    BlacklistCleared {
        /// The host.
        host: HostId,
    },
}

/// One timestamped audit entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: AuditKind,
}

impl AuditEvent {
    /// Renders the entry as one log line.
    pub fn to_line(&self) -> String {
        let body = match &self.kind {
            AuditKind::JobArrived { vm } => format!("{vm} arrived"),
            AuditKind::CreationStarted { vm, host } => format!("{vm} creating on {host}"),
            AuditKind::VmStarted { vm, host } => format!("{vm} running on {host}"),
            AuditKind::MigrationStarted { vm, from, to } => {
                format!("{vm} migrating {from} → {to}")
            }
            AuditKind::MigrationFinished { vm, to } => format!("{vm} now on {to}"),
            AuditKind::JobCompleted { vm, satisfaction } => {
                format!("{vm} completed (S = {satisfaction:.0}%)")
            }
            AuditKind::CheckpointTaken { vm } => format!("{vm} checkpointed"),
            AuditKind::HostPoweringOn { host } => format!("{host} booting"),
            AuditKind::HostOn { host } => format!("{host} online"),
            AuditKind::HostPoweringOff { host } => format!("{host} shutting down"),
            AuditKind::CreationFailed { vm, host } => {
                format!("{vm} creation FAILED on {host}")
            }
            AuditKind::MigrationAborted { vm, from, to } => {
                format!("{vm} migration {from} → {to} ABORTED")
            }
            AuditKind::HostFailed { host, displaced } => {
                format!("{host} FAILED ({displaced} VMs displaced)")
            }
            AuditKind::BootFailed { host } => format!("{host} boot FAILED"),
            AuditKind::SlowdownStarted { host, factor } => {
                format!("{host} slowed to {:.0}% capacity", factor * 100.0)
            }
            AuditKind::SlowdownEnded { host } => format!("{host} back to full speed"),
            AuditKind::RackOutage { rack, failed } => {
                format!("rack {rack} OUTAGE ({failed} hosts down)")
            }
            AuditKind::HostBlacklisted { host, crashes } => {
                format!("{host} blacklisted after {crashes} crashes")
            }
            AuditKind::HostRepaired { host } => format!("{host} repaired"),
            AuditKind::LambdaAdjusted { lambda_min } => {
                format!("λ_min adjusted to {lambda_min:.2}")
            }
            AuditKind::VmParked { vm, attempts } => {
                format!("{vm} PARKED after {attempts} retries")
            }
            AuditKind::VmUnparked { vm } => format!("{vm} unparked"),
            AuditKind::BlacklistCleared { host } => format!("{host} blacklist cleared"),
        };
        format!("[{}] {}", self.at, body)
    }
}

impl Persist for AuditKind {
    fn persist(&self, w: &mut Writer) {
        match self {
            AuditKind::JobArrived { vm } => {
                w.put_u8(0);
                vm.persist(w);
            }
            AuditKind::CreationStarted { vm, host } => {
                w.put_u8(1);
                vm.persist(w);
                host.persist(w);
            }
            AuditKind::VmStarted { vm, host } => {
                w.put_u8(2);
                vm.persist(w);
                host.persist(w);
            }
            AuditKind::MigrationStarted { vm, from, to } => {
                w.put_u8(3);
                vm.persist(w);
                from.persist(w);
                to.persist(w);
            }
            AuditKind::MigrationFinished { vm, to } => {
                w.put_u8(4);
                vm.persist(w);
                to.persist(w);
            }
            AuditKind::JobCompleted { vm, satisfaction } => {
                w.put_u8(5);
                vm.persist(w);
                w.put_f64(*satisfaction);
            }
            AuditKind::CheckpointTaken { vm } => {
                w.put_u8(6);
                vm.persist(w);
            }
            AuditKind::HostPoweringOn { host } => {
                w.put_u8(7);
                host.persist(w);
            }
            AuditKind::HostOn { host } => {
                w.put_u8(8);
                host.persist(w);
            }
            AuditKind::HostPoweringOff { host } => {
                w.put_u8(9);
                host.persist(w);
            }
            AuditKind::CreationFailed { vm, host } => {
                w.put_u8(10);
                vm.persist(w);
                host.persist(w);
            }
            AuditKind::MigrationAborted { vm, from, to } => {
                w.put_u8(11);
                vm.persist(w);
                from.persist(w);
                to.persist(w);
            }
            AuditKind::HostFailed { host, displaced } => {
                w.put_u8(12);
                host.persist(w);
                w.put_usize(*displaced);
            }
            AuditKind::BootFailed { host } => {
                w.put_u8(13);
                host.persist(w);
            }
            AuditKind::SlowdownStarted { host, factor } => {
                w.put_u8(14);
                host.persist(w);
                w.put_f64(*factor);
            }
            AuditKind::SlowdownEnded { host } => {
                w.put_u8(15);
                host.persist(w);
            }
            AuditKind::RackOutage { rack, failed } => {
                w.put_u8(16);
                w.put_usize(*rack);
                w.put_usize(*failed);
            }
            AuditKind::HostBlacklisted { host, crashes } => {
                w.put_u8(17);
                host.persist(w);
                w.put_u32(*crashes);
            }
            AuditKind::HostRepaired { host } => {
                w.put_u8(18);
                host.persist(w);
            }
            AuditKind::LambdaAdjusted { lambda_min } => {
                w.put_u8(19);
                w.put_f64(*lambda_min);
            }
            AuditKind::VmParked { vm, attempts } => {
                w.put_u8(20);
                vm.persist(w);
                w.put_u32(*attempts);
            }
            AuditKind::VmUnparked { vm } => {
                w.put_u8(21);
                vm.persist(w);
            }
            AuditKind::BlacklistCleared { host } => {
                w.put_u8(22);
                host.persist(w);
            }
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => AuditKind::JobArrived {
                vm: VmId::restore(r)?,
            },
            1 => AuditKind::CreationStarted {
                vm: VmId::restore(r)?,
                host: HostId::restore(r)?,
            },
            2 => AuditKind::VmStarted {
                vm: VmId::restore(r)?,
                host: HostId::restore(r)?,
            },
            3 => AuditKind::MigrationStarted {
                vm: VmId::restore(r)?,
                from: HostId::restore(r)?,
                to: HostId::restore(r)?,
            },
            4 => AuditKind::MigrationFinished {
                vm: VmId::restore(r)?,
                to: HostId::restore(r)?,
            },
            5 => AuditKind::JobCompleted {
                vm: VmId::restore(r)?,
                satisfaction: r.get_f64()?,
            },
            6 => AuditKind::CheckpointTaken {
                vm: VmId::restore(r)?,
            },
            7 => AuditKind::HostPoweringOn {
                host: HostId::restore(r)?,
            },
            8 => AuditKind::HostOn {
                host: HostId::restore(r)?,
            },
            9 => AuditKind::HostPoweringOff {
                host: HostId::restore(r)?,
            },
            10 => AuditKind::CreationFailed {
                vm: VmId::restore(r)?,
                host: HostId::restore(r)?,
            },
            11 => AuditKind::MigrationAborted {
                vm: VmId::restore(r)?,
                from: HostId::restore(r)?,
                to: HostId::restore(r)?,
            },
            12 => AuditKind::HostFailed {
                host: HostId::restore(r)?,
                displaced: r.get_usize()?,
            },
            13 => AuditKind::BootFailed {
                host: HostId::restore(r)?,
            },
            14 => AuditKind::SlowdownStarted {
                host: HostId::restore(r)?,
                factor: r.get_f64()?,
            },
            15 => AuditKind::SlowdownEnded {
                host: HostId::restore(r)?,
            },
            16 => AuditKind::RackOutage {
                rack: r.get_usize()?,
                failed: r.get_usize()?,
            },
            17 => AuditKind::HostBlacklisted {
                host: HostId::restore(r)?,
                crashes: r.get_u32()?,
            },
            18 => AuditKind::HostRepaired {
                host: HostId::restore(r)?,
            },
            19 => AuditKind::LambdaAdjusted {
                lambda_min: r.get_f64()?,
            },
            20 => AuditKind::VmParked {
                vm: VmId::restore(r)?,
                attempts: r.get_u32()?,
            },
            21 => AuditKind::VmUnparked {
                vm: VmId::restore(r)?,
            },
            22 => AuditKind::BlacklistCleared {
                host: HostId::restore(r)?,
            },
            t => return Err(PersistError::Corrupt(format!("bad AuditKind tag {t}"))),
        })
    }
}

impl Persist for AuditEvent {
    fn persist(&self, w: &mut Writer) {
        self.at.persist(w);
        self.kind.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(AuditEvent {
            at: SimTime::restore(r)?,
            kind: AuditKind::restore(r)?,
        })
    }
}

/// Renders a whole log, one line per event.
pub fn render_log(events: &[AuditEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_human_readable() {
        let e = AuditEvent {
            at: SimTime::from_secs(90),
            kind: AuditKind::MigrationStarted {
                vm: VmId(3),
                from: HostId(0),
                to: HostId(2),
            },
        };
        assert_eq!(e.to_line(), "[1:30.000] vm3 migrating h0 → h2");
        let log = render_log(&[e]);
        assert_eq!(log.lines().count(), 1);
    }

    #[test]
    fn fault_lines_are_human_readable() {
        let line = |kind| {
            AuditEvent {
                at: SimTime::ZERO,
                kind,
            }
            .to_line()
        };
        assert!(line(AuditKind::CreationFailed {
            vm: VmId(1),
            host: HostId(2),
        })
        .contains("vm1 creation FAILED on h2"));
        assert!(line(AuditKind::MigrationAborted {
            vm: VmId(1),
            from: HostId(0),
            to: HostId(3),
        })
        .contains("migration h0 → h3 ABORTED"));
        assert!(line(AuditKind::BootFailed { host: HostId(4) }).contains("h4 boot FAILED"));
        assert!(line(AuditKind::SlowdownStarted {
            host: HostId(5),
            factor: 0.5,
        })
        .contains("h5 slowed to 50% capacity"));
        assert!(line(AuditKind::RackOutage { rack: 2, failed: 6 }).contains("rack 2 OUTAGE"));
        assert!(line(AuditKind::HostBlacklisted {
            host: HostId(9),
            crashes: 3,
        })
        .contains("h9 blacklisted after 3 crashes"));
    }

    #[test]
    fn failure_line_counts_displaced() {
        let e = AuditEvent {
            at: SimTime::ZERO,
            kind: AuditKind::HostFailed {
                host: HostId(7),
                displaced: 3,
            },
        };
        assert!(e.to_line().contains("h7 FAILED (3 VMs displaced)"));
    }
}
