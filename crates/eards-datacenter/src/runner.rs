//! The datacenter simulation driver.
//!
//! Wires the DES engine (`eards-sim`), the datacenter model
//! (`eards-model`), a workload trace and a scheduling policy into one run,
//! and produces the metrics the paper's tables report. This is the
//! equivalent of the paper's OMNeT++ simulation harness (§IV): the
//! *Workload Generator* feeds arrivals, the *Scheduler* is real code (the
//! policy under test), and the *VHost* layer — execution, operation
//! overheads, power — is simulated here.
//!
//! Per-round state is recycled, not rebuilt: the runner owns its policy
//! for the whole simulation, so a [`ScoreScheduler`]'s incremental
//! score-matrix engine (`eards_core::EngineBuffers`) carries its `O(M·N)`
//! allocations from one consolidation tick to the next, and the
//! power-adjustment candidate sets reuse one scratch vector across
//! rounds.
//!
//! [`ScoreScheduler`]: eards_core::ScoreScheduler

use std::collections::HashMap;

use eards_metrics::{delay_pct, satisfaction, JobOutcome, RunReport, TimeSeries, TimeWeighted};
use eards_model::{
    Action, CalibratedPowerModel, Cluster, HostId, HostSpec, Job, Policy, PowerModel, PowerState,
    ScheduleContext, ScheduleReason, VmId, VmState,
};
use eards_sim::{EventHandle, SimDuration, SimRng, SimTime, Simulator};
use eards_workload::Trace;

use crate::audit::{AuditEvent, AuditKind};
use crate::config::RunConfig;

/// Events of the datacenter simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A job from the trace arrives (index into the job list).
    JobArrival(usize),
    /// A VM creation finishes.
    CreationDone(VmId),
    /// A live migration finishes.
    MigrationDone(VmId),
    /// A checkpoint write finishes.
    CheckpointDone(VmId),
    /// A VM's job is projected to complete now.
    JobCompletion(VmId),
    /// A host finished booting.
    BootDone(HostId),
    /// A host finished shutting down.
    ShutdownDone(HostId),
    /// A host crashes.
    HostFailure(HostId),
    /// A failed host becomes bootable again.
    HostRepaired(HostId),
    /// Periodic SLA-projection check.
    SlaCheck,
    /// Periodic consolidation round (migration re-evaluation).
    ConsolidationTick,
    /// Adaptive λ controller adjustment.
    LambdaAdjust,
    /// Periodic checkpoint trigger.
    CheckpointTick,
}

/// One configured simulation run.
pub struct Runner {
    cluster: Cluster,
    policy: Box<dyn Policy>,
    cfg: RunConfig,
    model: Box<dyn PowerModel>,
    jobs: Vec<Job>,
    label: String,

    sim: Simulator<Event>,
    rng: SimRng,
    completion: HashMap<VmId, EventHandle>,
    failure_timer: HashMap<HostId, EventHandle>,
    /// One RNG stream per host for failure sampling, independent of the
    /// main stream: two runs that keep a host up for the same intervals
    /// see the same failures regardless of what else they randomize.
    failure_rng: Vec<SimRng>,

    power_series: TimeSeries,
    power_tw: TimeWeighted,
    working_tw: TimeWeighted,
    online_tw: TimeWeighted,
    outcomes: Vec<JobOutcome>,
    jobs_done: usize,
    migrations: u64,
    creations: u64,
    host_failures: u64,
    vms_displaced: u64,
    /// Current λ_min (starts at the configured value; moved by the
    /// adaptive controller when enabled).
    lambda_min: f64,
    audit: Vec<AuditEvent>,
    /// Satisfaction of jobs completed since the last adjustment.
    sat_window: eards_metrics::Summary,
    /// Scratch for power-on/off candidate sets, reused across rounds
    /// (the set is rebuilt every `adjust_power` pass; the allocation
    /// is not).
    power_scratch: Vec<HostId>,
}

impl Runner {
    /// Builds a run over `hosts` executing `trace` under `policy`, with
    /// the paper's Table-I power model.
    pub fn new(
        hosts: Vec<HostSpec>,
        trace: Trace,
        policy: Box<dyn Policy>,
        cfg: RunConfig,
    ) -> Self {
        Self::with_power_model(
            hosts,
            trace,
            policy,
            cfg,
            Box::new(CalibratedPowerModel::paper_4way()),
        )
    }

    /// As [`Runner::new`] with an explicit power model (ablations).
    pub fn with_power_model(
        hosts: Vec<HostSpec>,
        trace: Trace,
        policy: Box<dyn Policy>,
        cfg: RunConfig,
        model: Box<dyn PowerModel>,
    ) -> Self {
        let label = policy.name();
        let rng = SimRng::seed_from_u64(cfg.seed);
        let failure_rng: Vec<SimRng> = (0..hosts.len())
            .map(|i| SimRng::seed_from_u64(cfg.seed ^ 0xFA11 ^ ((i as u64) << 17)))
            .collect();
        Runner {
            cluster: Cluster::new(hosts, PowerState::Off),
            policy,
            cfg,
            model,
            jobs: trace.into_jobs(),
            label,
            sim: Simulator::new(),
            rng,
            completion: HashMap::new(),
            failure_timer: HashMap::new(),
            failure_rng,
            power_series: TimeSeries::new(),
            power_tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            working_tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            online_tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            outcomes: Vec::new(),
            jobs_done: 0,
            migrations: 0,
            creations: 0,
            host_failures: 0,
            vms_displaced: 0,
            lambda_min: 0.0, // set from cfg in run()
            audit: Vec::new(),
            sat_window: eards_metrics::Summary::new(),
            power_scratch: Vec::new(),
        }
    }

    /// Overrides the report label (defaults to the policy name).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Records an audit entry (no-op unless `cfg.audit`).
    fn note(&mut self, at: SimTime, kind: AuditKind) {
        if self.cfg.audit {
            self.audit.push(AuditEvent { at, kind });
        }
    }

    /// Executes the simulation and returns the report together with the
    /// audit log (empty unless `cfg.audit` is set).
    pub fn run_audited(self) -> (RunReport, Vec<AuditEvent>) {
        self.execute()
    }

    /// Executes the simulation and returns its report.
    pub fn run(self) -> RunReport {
        self.run_audited().0
    }

    fn execute(mut self) -> (RunReport, Vec<AuditEvent>) {
        let last_arrival = self.jobs.last().map(|j| j.submit).unwrap_or(SimTime::ZERO);
        let hard_cap = last_arrival + self.cfg.drain_limit;

        // Bring up the initial node set instantaneously at t = 0 — the
        // datacenter does not cold-boot in front of the workload. The
        // policy picks which nodes (§III-C: by reliability, boot time, …).
        let initial = self.cfg.initial_on.min(self.cluster.num_hosts());
        let all: Vec<HostId> = (0..self.cluster.num_hosts())
            .map(|i| HostId(i as u32))
            .collect();
        let ranked = self.policy.rank_power_on(&self.cluster, &all);
        for &h in ranked.iter().take(initial) {
            self.cluster.begin_power_on(h, SimTime::ZERO);
            self.cluster.complete_power_on(h);
            self.arm_failure(h);
        }

        for (idx, job) in self.jobs.iter().enumerate() {
            self.sim.schedule_at(job.submit, Event::JobArrival(idx));
        }
        self.sim
            .schedule_after(self.cfg.sla_check_period, Event::SlaCheck);
        if let Some(p) = self.cfg.consolidation_period {
            self.sim.schedule_after(p, Event::ConsolidationTick);
        }
        self.lambda_min = self.cfg.lambda_min;
        if let Some(al) = &self.cfg.adaptive_lambda {
            self.lambda_min = self
                .lambda_min
                .clamp(al.lambda_min_bounds.0, al.lambda_min_bounds.1);
            self.sim
                .schedule_after(al.adjust_period, Event::LambdaAdjust);
        }
        if let Some(p) = self.cfg.checkpoint_period {
            self.sim.schedule_after(p, Event::CheckpointTick);
        }
        self.record_metrics();

        let mut dirty: Option<ScheduleReason> = None;
        while let Some((now, _, event)) = self.sim.step_before(hard_cap) {
            if let Some(reason) = self.handle(now, event) {
                // Keep the earliest reason of the batch.
                dirty = dirty.or(Some(reason));
            }
            // Batch all events of this instant before scheduling/metrics.
            if self.sim.peek_time() == Some(now) {
                continue;
            }
            if let Some(reason) = dirty.take() {
                self.schedule_round(now, reason);
                self.adjust_power(now);
            }
            self.record_metrics();
            if self.finished() {
                break;
            }
        }

        let end = self.sim.now();
        let audit = std::mem::take(&mut self.audit);
        (self.finalize(end), audit)
    }

    // ----- event handling --------------------------------------------------

    /// Handles one event; returns the scheduling-round reason it raises.
    fn handle(&mut self, now: SimTime, event: Event) -> Option<ScheduleReason> {
        match event {
            Event::JobArrival(idx) => {
                let job = self.jobs[idx].clone();
                let vm = self.cluster.submit_job(job);
                self.note(now, AuditKind::JobArrived { vm });
                Some(ScheduleReason::VmArrived)
            }
            Event::CreationDone(vm) => {
                if self.cluster.vm(vm).state != VmState::Creating {
                    return None; // host failed mid-creation; VM re-queued
                }
                // Guard against a *stale* event: if the original creation
                // was aborted by a host failure and the VM is now being
                // re-created elsewhere, only the event matching the live
                // operation's end time may complete it.
                let host = self.cluster.vm(vm).host.expect("creating VM has a host");
                let live =
                    self.cluster.host(host).ops.iter().any(|o| {
                        o.vm == vm && o.kind == eards_model::OpKind::Create && o.ends == now
                    });
                if !live {
                    return None;
                }
                self.cluster.finish_creation(vm, now);
                let host = self.cluster.vm(vm).host.expect("created VM has a host");
                self.note(now, AuditKind::VmStarted { vm, host });
                self.touch(host, now);
                self.complete_if_done(vm, now);
                Some(ScheduleReason::VmFinished)
            }
            Event::MigrationDone(vm) => {
                let (from, to) = match self.cluster.vm(vm).state {
                    VmState::Migrating { to } => (
                        self.cluster.vm(vm).host.expect("migrating VM has a host"),
                        to,
                    ),
                    _ => return None, // an endpoint failed mid-migration
                };
                // Stale-event guard (see CreationDone): only the event
                // matching the live migration operation may complete it.
                let live = self.cluster.host(to).ops.iter().any(|o| {
                    o.vm == vm
                        && matches!(o.kind, eards_model::OpKind::MigrateIn { .. })
                        && o.ends == now
                });
                if !live {
                    return None;
                }
                // Progress accrued on the source up to this instant.
                self.cluster.touch_host(from, now);
                self.cluster.finish_migration(vm, now);
                let to = self.cluster.vm(vm).host.expect("migrated VM has a host");
                self.note(now, AuditKind::MigrationFinished { vm, to });
                self.touch(from, now);
                self.touch(to, now);
                self.complete_if_done(vm, now);
                Some(ScheduleReason::HostStateChanged)
            }
            Event::CheckpointDone(vm) => {
                if self.cluster.vm(vm).state != VmState::Checkpointing {
                    return None;
                }
                let host = self
                    .cluster
                    .vm(vm)
                    .host
                    .expect("checkpointing VM has a host");
                let live = self.cluster.host(host).ops.iter().any(|o| {
                    o.vm == vm && o.kind == eards_model::OpKind::Checkpoint && o.ends == now
                });
                if !live {
                    return None;
                }
                self.cluster.finish_checkpoint(vm, now);
                self.note(now, AuditKind::CheckpointTaken { vm });
                let host = self
                    .cluster
                    .vm(vm)
                    .host
                    .expect("checkpointing VM has a host");
                self.touch(host, now);
                self.complete_if_done(vm, now);
                None
            }
            Event::JobCompletion(vm) => {
                self.completion.remove(&vm);
                if self.cluster.vm(vm).state != VmState::Running {
                    // Migrating/checkpointing: their completion handlers
                    // re-check; a queued VM (failure) restarts later.
                    return None;
                }
                let host = self.cluster.vm(vm).host.expect("running VM has a host");
                self.cluster.touch_host(host, now);
                if self.complete_if_done(vm, now) {
                    Some(ScheduleReason::VmFinished)
                } else {
                    // Allocation changed since this event was scheduled;
                    // refresh the projection.
                    self.refresh_completion(vm, now);
                    None
                }
            }
            Event::BootDone(h) => {
                if matches!(self.cluster.host(h).power, PowerState::Booting { .. }) {
                    self.cluster.complete_power_on(h);
                    self.note(now, AuditKind::HostOn { host: h });
                    self.arm_failure(h);
                    Some(ScheduleReason::HostStateChanged)
                } else {
                    None
                }
            }
            Event::ShutdownDone(h) => {
                if matches!(self.cluster.host(h).power, PowerState::ShuttingDown { .. }) {
                    self.cluster.complete_power_off(h);
                }
                None
            }
            Event::HostFailure(h) => {
                self.failure_timer.remove(&h);
                if self.cluster.host(h).power != PowerState::On {
                    return None;
                }
                let displaced = self.cluster.fail_host(h, now);
                self.note(
                    now,
                    AuditKind::HostFailed {
                        host: h,
                        displaced: displaced.len(),
                    },
                );
                self.vms_displaced += displaced.len() as u64;
                for vm in displaced {
                    if let Some(handle) = self.completion.remove(&vm) {
                        self.sim.cancel(handle);
                    }
                }
                self.host_failures += 1;
                self.sim
                    .schedule_after(self.cfg.repair_time, Event::HostRepaired(h));
                Some(ScheduleReason::HostStateChanged)
            }
            Event::HostRepaired(h) => {
                self.cluster.repair_host(h);
                self.note(now, AuditKind::HostRepaired { host: h });
                Some(ScheduleReason::HostStateChanged)
            }
            Event::SlaCheck => {
                let mut violated = false;
                let mut running: Vec<VmId> = self
                    .cluster
                    .vms()
                    .filter(|v| v.state == VmState::Running)
                    .map(|v| v.id)
                    .collect();
                running.sort_unstable(); // HashMap order is not deterministic
                for vm in running {
                    if let Some(host) = self.cluster.vm(vm).host {
                        self.cluster.touch_host(host, now);
                    }
                    let f = self.cluster.vm(vm).sla_fulfillment(now);
                    if f < 1.0 {
                        violated = true;
                        if self.cfg.dynamic_sla {
                            self.escalate_request(vm, now);
                        }
                    }
                }
                if !self.finished() {
                    self.sim
                        .schedule_after(self.cfg.sla_check_period, Event::SlaCheck);
                }
                violated.then_some(ScheduleReason::SlaViolation)
            }
            Event::ConsolidationTick => {
                if let (Some(p), false) = (self.cfg.consolidation_period, self.finished()) {
                    self.sim.schedule_after(p, Event::ConsolidationTick);
                }
                self.policy
                    .uses_migration()
                    .then_some(ScheduleReason::Periodic)
            }
            Event::LambdaAdjust => {
                let al = self
                    .cfg
                    .adaptive_lambda
                    .clone()
                    .expect("event only scheduled when configured");
                if self.sat_window.count() >= al.min_window_jobs {
                    let recent = self.sat_window.mean();
                    if recent < al.target_satisfaction {
                        // SLAs slipping: keep more nodes on (less eager off).
                        self.lambda_min -= al.step;
                    } else {
                        // Comfortably above target: turn off more eagerly.
                        self.lambda_min += al.step;
                    }
                    self.lambda_min = self
                        .lambda_min
                        .clamp(al.lambda_min_bounds.0, al.lambda_min_bounds.1)
                        .min(self.cfg.lambda_max - 0.05);
                    self.note(
                        now,
                        AuditKind::LambdaAdjusted {
                            lambda_min: self.lambda_min,
                        },
                    );
                    self.sat_window = eards_metrics::Summary::new();
                }
                if !self.finished() {
                    self.sim
                        .schedule_after(al.adjust_period, Event::LambdaAdjust);
                }
                None
            }
            Event::CheckpointTick => {
                let mut eligible: Vec<VmId> = self
                    .cluster
                    .vms()
                    .filter(|v| v.state == VmState::Running)
                    .map(|v| v.id)
                    .collect();
                eligible.sort_unstable(); // HashMap order is not deterministic
                for vm in eligible {
                    let ends = now + self.cfg.checkpoint_duration;
                    self.cluster.start_checkpoint(vm, now, ends);
                    self.sim.schedule_at(ends, Event::CheckpointDone(vm));
                    let host = self.cluster.vm(vm).host.expect("running VM has a host");
                    self.touch(host, now);
                }
                if let (Some(p), false) = (self.cfg.checkpoint_period, self.finished()) {
                    self.sim.schedule_after(p, Event::CheckpointTick);
                }
                None
            }
        }
    }

    // ----- scheduling ------------------------------------------------------

    fn schedule_round(&mut self, now: SimTime, reason: ScheduleReason) {
        let ctx = ScheduleContext { now, reason };
        let actions = self.policy.schedule(&self.cluster, &ctx);
        for action in actions {
            match action {
                Action::Create { vm, host } => {
                    if self.cluster.vm(vm).state != VmState::Queued
                        || !self.cluster.can_place_overcommitted(host, vm)
                    {
                        continue; // stale decision; the VM stays queued
                    }
                    let mean = self.cluster.host(host).spec.class.creation_cost();
                    let dur = self.op_duration(mean, self.cfg.creation_jitter_std);
                    let ends = now + dur;
                    self.cluster.start_creation(vm, host, now, ends);
                    self.note(now, AuditKind::CreationStarted { vm, host });
                    self.sim.schedule_at(ends, Event::CreationDone(vm));
                    self.touch(host, now);
                    self.creations += 1;
                }
                Action::Migrate { vm, to } => {
                    let v = self.cluster.vm(vm);
                    if !self.policy.uses_migration()
                        || v.state != VmState::Running
                        || v.host == Some(to)
                        || !self.cluster.can_place_overcommitted(to, vm)
                    {
                        continue;
                    }
                    let from = v.host.expect("running VM has a host");
                    // Migration cost is the destination's (§V: C_m by class).
                    let mean = self.cluster.host(to).spec.class.migration_cost();
                    let dur = self.op_duration(mean, self.cfg.migration_jitter_std);
                    let ends = now + dur;
                    self.cluster.start_migration(vm, to, now, ends);
                    self.note(now, AuditKind::MigrationStarted { vm, from, to });
                    self.sim.schedule_at(ends, Event::MigrationDone(vm));
                    self.touch(from, now);
                    self.touch(to, now);
                    self.migrations += 1;
                }
            }
        }
    }

    fn op_duration(&mut self, mean: SimDuration, std_dev: f64) -> SimDuration {
        let secs = self.rng.normal_at_least(mean.as_secs_f64(), std_dev, 1.0);
        SimDuration::from_secs_f64(secs)
    }

    /// §III-A.5: raise a violated VM's requested CPU so rescheduling can
    /// find it more room. Escalation only helps a VM that is actually
    /// being *starved* (allocation below demand, e.g. by dom0 operation
    /// overheads) — a VM already running at full demand cannot be sped up,
    /// and inflating its reservation would only block queued VMs. The
    /// escalation is also capped at 1.5× the demand: reserving a whole
    /// node for one late job starves the rest of the queue.
    fn escalate_request(&mut self, vm: VmId, now: SimTime) {
        let (needed, cap, starved) = {
            let v = self.cluster.vm(vm);
            let host = v.host.expect("running VM has a host");
            let cap = self.cluster.host(host).spec.cpu;
            let left = v
                .job
                .deadline_at()
                .saturating_since(now)
                .as_secs_f64()
                .max(1.0);
            (
                (v.remaining_work() / left).ceil(),
                cap,
                v.alloc + 1e-9 < v.job.cpu.as_f64(),
            )
        };
        if !starved {
            return;
        }
        let v = self.cluster.vm_mut(vm);
        let ceiling = (v.job.cpu.points() * 3 / 2).min(cap.points());
        let new_cpu = (needed as u32).clamp(v.job.cpu.points(), ceiling);
        v.requested.cpu = eards_model::Cpu(new_cpu.max(v.requested.cpu.points()));
    }

    // ----- power management (§III-C) ----------------------------------------

    fn adjust_power(&mut self, now: SimTime) {
        let mut candidates = std::mem::take(&mut self.power_scratch);
        // Turn on: working/online above λ_max, or unplaceable queue.
        loop {
            let online = self.cluster.online_count();
            let working = self.cluster.working_count();
            let ratio = if online == 0 {
                f64::INFINITY
            } else {
                working as f64 / online as f64
            };
            let queue_stuck = self.queue_stuck();
            if ratio <= self.cfg.lambda_max && !queue_stuck {
                break;
            }
            candidates.clear();
            candidates.extend(
                self.cluster
                    .hosts()
                    .iter()
                    .filter(|h| h.power == PowerState::Off)
                    .map(|h| h.spec.id),
            );
            if candidates.is_empty() {
                break;
            }
            let pick = self.policy.rank_power_on(&self.cluster, &candidates)[0];
            let ready_at = self.cluster.begin_power_on(pick, now);
            self.note(now, AuditKind::HostPoweringOn { host: pick });
            self.sim.schedule_at(ready_at, Event::BootDone(pick));
            // A booting host counts as online, so the ratio falls and the
            // loop converges; the stuck-queue rule boots at most one.
            if queue_stuck && ratio <= self.cfg.lambda_max {
                break;
            }
        }

        // Turn off: working/online below λ_min (never below minexec).
        loop {
            let online = self.cluster.online_count();
            if online <= self.cfg.min_exec {
                break;
            }
            let working = self.cluster.working_count();
            let ratio = if online == 0 {
                break;
            } else {
                working as f64 / online as f64
            };
            if ratio >= self.lambda_min {
                break;
            }
            candidates.clear();
            candidates.extend(
                self.cluster
                    .hosts()
                    .iter()
                    .filter(|h| h.power == PowerState::On && h.is_idle())
                    .map(|h| h.spec.id),
            );
            if candidates.is_empty() {
                break;
            }
            let pick = self.policy.rank_power_off(&self.cluster, now, &candidates)[0];
            if let Some(handle) = self.failure_timer.remove(&pick) {
                self.sim.cancel(handle);
            }
            let off_at = self.cluster.begin_power_off(pick, now);
            self.note(now, AuditKind::HostPoweringOff { host: pick });
            self.sim.schedule_at(off_at, Event::ShutdownDone(pick));
        }
        self.power_scratch = candidates;
    }

    /// True if a queued VM cannot be placed on any ready host and no help
    /// is on the way (nothing booting).
    fn queue_stuck(&self) -> bool {
        if self.cluster.queue().is_empty() {
            return false;
        }
        let booting = self
            .cluster
            .hosts()
            .iter()
            .any(|h| matches!(h.power, PowerState::Booting { .. }));
        if booting {
            return false;
        }
        self.cluster.queue().iter().any(|&vm| {
            !(0..self.cluster.num_hosts()).any(|i| self.cluster.can_place(HostId(i as u32), vm))
        })
    }

    /// Arms the failure timer for a freshly-up host.
    fn arm_failure(&mut self, h: HostId) {
        if !self.cfg.failures {
            return;
        }
        let rel = self.cluster.host(h).spec.reliability;
        if rel >= 1.0 {
            return;
        }
        // Availability = MTTF / (MTTF + MTTR) ⇒ MTTF = MTTR·rel/(1−rel).
        let mttf = self.cfg.repair_time.as_secs_f64() * rel / (1.0 - rel);
        let ttf = self.failure_rng[h.raw() as usize].exponential(1.0 / mttf.max(1.0));
        let handle = self
            .sim
            .schedule_after(SimDuration::from_secs_f64(ttf), Event::HostFailure(h));
        self.failure_timer.insert(h, handle);
    }

    // ----- execution bookkeeping --------------------------------------------

    /// Re-runs the credit scheduler on `host` and refreshes completion
    /// projections for its VMs.
    fn touch(&mut self, host: HostId, now: SimTime) {
        self.cluster.reallocate_host(host, now);
        let resident = self.cluster.host(host).resident.clone();
        for vm in resident {
            self.refresh_completion(vm, now);
        }
    }

    fn refresh_completion(&mut self, vm: VmId, now: SimTime) {
        if let Some(handle) = self.completion.remove(&vm) {
            self.sim.cancel(handle);
        }
        let v = self.cluster.vm(vm);
        if !v.state.is_executing() {
            return;
        }
        if let Some(eta) = v.eta_secs() {
            // +1 ms guards against the fixed-point floor leaving a sliver
            // of work at the projected instant.
            let at = now + SimDuration::from_secs_f64(eta) + SimDuration::from_millis(1);
            let handle = self.sim.schedule_at(at, Event::JobCompletion(vm));
            self.completion.insert(vm, handle);
        }
    }

    /// Completes the VM's job if its work is done. Returns true on
    /// completion.
    fn complete_if_done(&mut self, vm: VmId, now: SimTime) -> bool {
        if self.cluster.vm(vm).state != VmState::Running || !self.cluster.vm(vm).work_complete() {
            return false;
        }
        if let Some(handle) = self.completion.remove(&vm) {
            self.sim.cancel(handle);
        }
        let host = self.cluster.vm(vm).host.expect("running VM has a host");
        self.cluster.finish_vm(vm, now);
        let outcome = self.outcome_of(vm, Some(now));
        self.note(
            now,
            AuditKind::JobCompleted {
                vm,
                satisfaction: outcome.satisfaction,
            },
        );
        self.sat_window.push(outcome.satisfaction);
        self.outcomes.push(outcome);
        self.jobs_done += 1;
        self.touch(host, now);
        true
    }

    fn outcome_of(&self, vm: VmId, completed: Option<SimTime>) -> JobOutcome {
        let v = self.cluster.vm(vm);
        let deadline = v.job.deadline();
        let end = completed.unwrap_or(self.sim.now());
        let exec = end.saturating_since(v.job.submit);
        // Requested-CPU residency: how long the VM held its share.
        let residency_start = v.started_at.unwrap_or(end);
        let residency = end.saturating_since(residency_start);
        JobOutcome {
            job_id: v.job.id.raw(),
            submitted: v.job.submit,
            completed,
            deadline,
            satisfaction: if completed.is_some() {
                satisfaction(exec, deadline)
            } else {
                0.0
            },
            delay_pct: delay_pct(exec, deadline),
            cpu_hours: v.job.cpu.as_f64() / 100.0 * residency.as_hours_f64(),
            work_cpu_hours: v.job.total_work() / 100.0 / 3600.0,
        }
    }

    // ----- metrics -----------------------------------------------------------

    fn record_metrics(&mut self) {
        let now = self.sim.now();
        let power = self.cluster.total_power(self.model.as_ref());
        self.power_tw.set(now, power);
        if self.cfg.record_power_series {
            self.power_series.record(now, power);
        }
        self.working_tw
            .set(now, self.cluster.working_count() as f64);
        self.online_tw.set(now, self.cluster.online_count() as f64);
    }

    fn finished(&self) -> bool {
        self.jobs_done == self.jobs.len()
    }

    fn finalize(mut self, end: SimTime) -> RunReport {
        // Jobs still in flight at the horizon count as unfinished.
        let mut unfinished: Vec<VmId> = self
            .cluster
            .vms()
            .filter(|v| v.state != VmState::Finished)
            .map(|v| v.id)
            .collect();
        unfinished.sort_unstable(); // deterministic report order
        for vm in unfinished {
            if let Some(host) = self.cluster.vm(vm).host {
                self.cluster.touch_host(host, end);
            }
            let outcome = self.outcome_of(vm, None);
            self.outcomes.push(outcome);
        }

        let mut report = RunReport::empty(self.label.clone());
        report.avg_working_nodes = self.working_tw.mean(end);
        report.avg_online_nodes = self.online_tw.mean(end);
        report.energy_kwh = self.power_tw.integral(end) / 3600.0 / 1000.0;
        report.migrations = self.migrations;
        report.creations = self.creations;
        report.host_failures = self.host_failures;
        report.vms_displaced = self.vms_displaced;
        report.power_watts = self.power_series;
        report.jobs = self.outcomes;
        report.finalize_jobs();
        report
    }
}
