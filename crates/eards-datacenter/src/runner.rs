//! The datacenter simulation driver.
//!
//! Wires the DES engine (`eards-sim`), the datacenter model
//! (`eards-model`), a workload trace and a scheduling policy into one run,
//! and produces the metrics the paper's tables report. This is the
//! equivalent of the paper's OMNeT++ simulation harness (§IV): the
//! *Workload Generator* feeds arrivals, the *Scheduler* is real code (the
//! policy under test), and the *VHost* layer — execution, operation
//! overheads, power — is simulated here.
//!
//! Per-round state is recycled, not rebuilt: the runner owns its policy
//! for the whole simulation, so a [`ScoreScheduler`]'s incremental
//! score-matrix engine (`eards_core::EngineBuffers`) carries its `O(M·N)`
//! allocations from one consolidation tick to the next, and the
//! power-adjustment candidate sets reuse one scratch vector across
//! rounds.
//!
//! [`ScoreScheduler`]: eards_core::ScoreScheduler

use std::collections::{BTreeMap, HashMap};

use eards_metrics::{
    delay_pct, satisfaction, FaultStats, JobOutcome, RunReport, TimeSeries, TimeWeighted,
};
use eards_model::{
    Action, CalibratedPowerModel, Cluster, HostId, HostSpec, Job, Policy, PowerModel, PowerState,
    ScheduleContext, ScheduleReason, ShardMap, VmId, VmState,
};
use eards_obs::{FaultKind, HistId, Obs, ObsEvent, PowerFlipKind, RecoveryKind};
use eards_sim::{
    read_header, write_header, EventHandle, Persist, PersistError, Reader, SimDuration, SimRng,
    SimTime, Simulator, Writer,
};
use eards_workload::Trace;

use crate::audit::{AuditEvent, AuditKind};
use crate::config::RunConfig;
use crate::faults::FaultEngine;
use crate::invariants::InvariantAuditor;

/// Events of the datacenter simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A job from the trace arrives (index into the job list).
    JobArrival(usize),
    /// A VM creation finishes. The `u64` is the operation sequence number
    /// (see [`eards_model::InFlightOp::seq`]) proving the event belongs to
    /// the *live* operation — a completion timestamp cannot do that,
    /// because an abort or a re-started operation can land on the same
    /// tick.
    CreationDone(VmId, u64),
    /// A live migration finishes (`seq` as above).
    MigrationDone(VmId, u64),
    /// A checkpoint write finishes (`seq` as above).
    CheckpointDone(VmId, u64),
    /// A VM's job is projected to complete now.
    JobCompletion(VmId),
    /// A host finished booting.
    BootDone(HostId),
    /// A host finished shutting down.
    ShutdownDone(HostId),
    /// A host crashes.
    HostFailure(HostId),
    /// A failed host becomes bootable again.
    HostRepaired(HostId),
    /// A doomed VM creation aborts partway through, carrying the sequence
    /// number of the operation it kills. An earlier design used the
    /// operation's end time as the identity token, which collides when an
    /// abort lands on the same tick as a later operation's completion for
    /// the same VM (see `stale_abort_does_not_kill_reissued_creation` in
    /// the seq-guard tests).
    CreationAborted(VmId, u64),
    /// A doomed live migration aborts partway through (`seq` as above).
    MigrationAborted(VmId, u64),
    /// A transient slowdown episode starts on a host.
    SlowdownStart(HostId),
    /// The host's slowdown episode ends.
    SlowdownEnd(HostId),
    /// A correlated outage strikes one rack (index into the rack grid).
    RackOutage(usize),
    /// A failed VM's retry backoff expires; reschedule it.
    RetryRelease(VmId),
    /// Periodic SLA-projection check.
    SlaCheck,
    /// Periodic consolidation round (migration re-evaluation).
    ConsolidationTick,
    /// Adaptive λ controller adjustment.
    LambdaAdjust,
    /// Periodic checkpoint trigger.
    CheckpointTick,
}

/// Canonical state: the pending-event payloads of a mid-flight run. Every
/// variant gets a stable tag byte; adding a variant appends a tag (and
/// bumps [`eards_sim::SNAPSHOT_VERSION`] if an existing tag moves).
impl Persist for Event {
    fn persist(&self, w: &mut Writer) {
        match *self {
            Event::JobArrival(idx) => {
                w.put_u8(0);
                w.put_usize(idx);
            }
            Event::CreationDone(vm, seq) => {
                w.put_u8(1);
                vm.persist(w);
                w.put_u64(seq);
            }
            Event::MigrationDone(vm, seq) => {
                w.put_u8(2);
                vm.persist(w);
                w.put_u64(seq);
            }
            Event::CheckpointDone(vm, seq) => {
                w.put_u8(3);
                vm.persist(w);
                w.put_u64(seq);
            }
            Event::JobCompletion(vm) => {
                w.put_u8(4);
                vm.persist(w);
            }
            Event::BootDone(h) => {
                w.put_u8(5);
                h.persist(w);
            }
            Event::ShutdownDone(h) => {
                w.put_u8(6);
                h.persist(w);
            }
            Event::HostFailure(h) => {
                w.put_u8(7);
                h.persist(w);
            }
            Event::HostRepaired(h) => {
                w.put_u8(8);
                h.persist(w);
            }
            Event::CreationAborted(vm, seq) => {
                w.put_u8(9);
                vm.persist(w);
                w.put_u64(seq);
            }
            Event::MigrationAborted(vm, seq) => {
                w.put_u8(10);
                vm.persist(w);
                w.put_u64(seq);
            }
            Event::SlowdownStart(h) => {
                w.put_u8(11);
                h.persist(w);
            }
            Event::SlowdownEnd(h) => {
                w.put_u8(12);
                h.persist(w);
            }
            Event::RackOutage(r) => {
                w.put_u8(13);
                w.put_usize(r);
            }
            Event::RetryRelease(vm) => {
                w.put_u8(14);
                vm.persist(w);
            }
            Event::SlaCheck => w.put_u8(15),
            Event::ConsolidationTick => w.put_u8(16),
            Event::LambdaAdjust => w.put_u8(17),
            Event::CheckpointTick => w.put_u8(18),
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Event::JobArrival(r.get_usize()?),
            1 => Event::CreationDone(VmId::restore(r)?, r.get_u64()?),
            2 => Event::MigrationDone(VmId::restore(r)?, r.get_u64()?),
            3 => Event::CheckpointDone(VmId::restore(r)?, r.get_u64()?),
            4 => Event::JobCompletion(VmId::restore(r)?),
            5 => Event::BootDone(HostId::restore(r)?),
            6 => Event::ShutdownDone(HostId::restore(r)?),
            7 => Event::HostFailure(HostId::restore(r)?),
            8 => Event::HostRepaired(HostId::restore(r)?),
            9 => Event::CreationAborted(VmId::restore(r)?, r.get_u64()?),
            10 => Event::MigrationAborted(VmId::restore(r)?, r.get_u64()?),
            11 => Event::SlowdownStart(HostId::restore(r)?),
            12 => Event::SlowdownEnd(HostId::restore(r)?),
            13 => Event::RackOutage(r.get_usize()?),
            14 => Event::RetryRelease(VmId::restore(r)?),
            15 => Event::SlaCheck,
            16 => Event::ConsolidationTick,
            17 => Event::LambdaAdjust,
            18 => Event::CheckpointTick,
            t => return Err(PersistError::Corrupt(format!("bad Event tag {t}"))),
        })
    }
}

/// Snapshot of a run's progress, as reported by [`Runner::progress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Current simulated time (instant of the last processed batch).
    pub now: SimTime,
    /// The drain horizon the run cannot pass.
    pub horizon: SimTime,
    /// Jobs fully completed so far.
    pub jobs_done: usize,
    /// Jobs in the trace.
    pub jobs_total: usize,
}

/// One configured simulation run.
pub struct Runner {
    cluster: Cluster,
    policy: Box<dyn Policy>,
    cfg: RunConfig,
    model: Box<dyn PowerModel>,
    jobs: Vec<Job>,
    label: String,

    sim: Simulator<Event>,
    rng: SimRng,
    // lint:allow(D001): keyed removal/insertion only, never iterated
    completion: HashMap<VmId, EventHandle>,
    // BTreeMap, not HashMap: the invariant auditor iterates both timer
    // maps, and audit order must not depend on hasher state (lint D001).
    failure_timer: BTreeMap<HostId, EventHandle>,
    /// The pending slowdown-start *or* slowdown-end timer of each host.
    slowdown_timer: BTreeMap<HostId, EventHandle>,
    /// Per-host, per-class fault streams (see [`FaultEngine`]): two runs
    /// that keep a host up for the same intervals see the same faults on
    /// it regardless of what else they randomize.
    faults: FaultEngine,
    /// Retry backoff state of VMs whose creation/migration failed.
    /// BTreeMap, not HashMap: persisted wholesale and (in degrade mode)
    /// audited per-entry, so order must not depend on hasher state.
    retry: BTreeMap<VmId, RetryState>,
    /// Backpressure: VMs whose retry ladder passed `cfg.park_after`
    /// attempts, parked (still `Queued`) until the flapping blacklist
    /// clears. BTreeMap so release order is deterministic. Empty unless
    /// `cfg.degrade`.
    parked: BTreeMap<VmId, SimTime>,
    /// VMs ever parked by backpressure (monotone counter).
    vms_parked: u64,
    /// Crashes accumulated per host (feeds the flapping blacklist).
    crash_counts: Vec<u32>,
    /// When each currently-unrecovered VM was displaced or failed
    /// (cleared on successful restart; feeds time-to-recover).
    // lint:allow(D001): keyed lookup/removal only, never iterated
    displaced_at: HashMap<VmId, SimTime>,
    auditor: InvariantAuditor,
    fstats: FaultStats,
    recovery_total_secs: f64,

    power_series: TimeSeries,
    power_tw: TimeWeighted,
    working_tw: TimeWeighted,
    online_tw: TimeWeighted,
    outcomes: Vec<JobOutcome>,
    jobs_done: usize,
    migrations: u64,
    creations: u64,
    host_failures: u64,
    vms_displaced: u64,
    /// Current λ_min (starts at the configured value; moved by the
    /// adaptive controller when enabled).
    lambda_min: f64,
    audit: Vec<AuditEvent>,
    /// Satisfaction of jobs completed since the last adjustment.
    sat_window: eards_metrics::Summary,
    /// Scratch for power-on/off candidate sets, reused across rounds
    /// (the set is rebuilt every `adjust_power` pass; the allocation
    /// is not).
    power_scratch: Vec<HostId>,
    /// Observability handle (cloned from the config; disabled = no-ops).
    obs: Obs,
    /// Pre-registered histogram of queue length entering each round.
    queue_hist: HistId,
    /// Pre-registered histogram of retry-backoff depths (attempt counts).
    retry_hist: HistId,
    /// True once [`Runner::start`] has armed the t = 0 world (initial
    /// power-on, arrival schedule, periodic timers). Part of the snapshot:
    /// a resumed run must not re-run the setup.
    started: bool,
}

/// Exponential-backoff state of one VM whose creation or migration
/// failed.
#[derive(Clone, Copy)]
struct RetryState {
    /// Consecutive failures so far.
    attempts: u32,
    /// The VM may not be retried before this instant.
    eligible: SimTime,
}

impl Persist for RetryState {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.attempts);
        self.eligible.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RetryState {
            attempts: r.get_u32()?,
            eligible: SimTime::restore(r)?,
        })
    }
}

/// The shard map the run configuration implies for a cluster of
/// `num_hosts` — `None` unless the realized partition has at least two
/// shards (mirrors the policy-side arming in
/// `eards_core::ScoreScheduler`, so the auditor checks exactly the
/// partition the solver uses).
fn derived_shard_map(cfg: &RunConfig, num_hosts: usize) -> Option<ShardMap> {
    let spec = cfg.shard_spec()?;
    if num_hosts == 0 {
        return None;
    }
    let map = ShardMap::build(num_hosts, spec.rack_size, spec.count);
    (map.num_shards() >= 2).then_some(map)
}

impl Runner {
    /// Builds a run over `hosts` executing `trace` under `policy`, with
    /// the paper's Table-I power model.
    pub fn new(
        hosts: Vec<HostSpec>,
        trace: Trace,
        policy: Box<dyn Policy>,
        cfg: RunConfig,
    ) -> Self {
        Self::with_power_model(
            hosts,
            trace,
            policy,
            cfg,
            Box::new(CalibratedPowerModel::paper_4way()),
        )
    }

    /// As [`Runner::new`] with an explicit power model (ablations).
    pub fn with_power_model(
        hosts: Vec<HostSpec>,
        trace: Trace,
        policy: Box<dyn Policy>,
        cfg: RunConfig,
        model: Box<dyn PowerModel>,
    ) -> Self {
        let label = policy.name();
        let rng = SimRng::seed_from_u64(cfg.seed);
        let faults = FaultEngine::new(cfg.faults.clone(), hosts.len(), cfg.seed);
        let mut auditor = InvariantAuditor::new(cfg.auditor);
        auditor.set_shard_map(derived_shard_map(&cfg, hosts.len()));
        let crash_counts = vec![0; hosts.len()];
        let obs = cfg.obs.clone();
        let queue_hist = obs.histogram("queue_len", &[1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0]);
        let retry_hist = obs.histogram("retry_backoff_depth", &[1.0, 2.0, 3.0, 4.0, 6.0, 10.0]);
        Runner {
            cluster: Cluster::new(hosts, PowerState::Off),
            policy,
            cfg,
            model,
            jobs: trace.into_jobs(),
            label,
            sim: Simulator::new(),
            rng,
            completion: HashMap::new(),
            failure_timer: BTreeMap::new(),
            slowdown_timer: BTreeMap::new(),
            faults,
            retry: BTreeMap::new(),
            parked: BTreeMap::new(),
            vms_parked: 0,
            crash_counts,
            displaced_at: HashMap::new(),
            auditor,
            fstats: FaultStats::default(),
            recovery_total_secs: 0.0,
            power_series: TimeSeries::new(),
            power_tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            working_tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            online_tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            outcomes: Vec::new(),
            jobs_done: 0,
            migrations: 0,
            creations: 0,
            host_failures: 0,
            vms_displaced: 0,
            lambda_min: 0.0, // set from cfg in run()
            audit: Vec::new(),
            sat_window: eards_metrics::Summary::new(),
            power_scratch: Vec::new(),
            obs,
            queue_hist,
            retry_hist,
            started: false,
        }
    }

    /// Overrides the report label (defaults to the policy name).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Records an audit entry (no-op unless `cfg.audit`).
    fn note(&mut self, at: SimTime, kind: AuditKind) {
        if self.cfg.audit {
            self.audit.push(AuditEvent { at, kind });
        }
    }

    /// Executes the simulation and returns the report together with the
    /// audit log (empty unless `cfg.audit` is set).
    pub fn run_audited(mut self) -> (RunReport, Vec<AuditEvent>) {
        while self.step_batch() {}
        self.finish()
    }

    /// Executes the simulation and returns its report.
    pub fn run(self) -> RunReport {
        self.run_audited().0
    }

    /// Current simulated time (the instant of the last processed batch).
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Progress of the run so far — a cheap read a driver can poll
    /// between batches (e.g. a sweep worker heartbeating its
    /// supervisor).
    pub fn progress(&self) -> RunProgress {
        RunProgress {
            now: self.sim.now(),
            horizon: self.hard_cap(),
            jobs_done: self.jobs_done,
            jobs_total: self.jobs.len(),
        }
    }

    /// The policy driving this run (read-only) — lets callers inspect
    /// policy-side telemetry such as
    /// [`eards_model::Policy::degrade_stats`] after stepping a run.
    pub fn policy(&self) -> &dyn Policy {
        self.policy.as_ref()
    }

    /// VMs ever parked by runner backpressure (0 unless degrade mode).
    pub fn vms_parked(&self) -> u64 {
        self.vms_parked
    }

    /// The simulation horizon: the run drains for at most
    /// `cfg.drain_limit` past the last arrival. Derived state — recomputed
    /// from the trace on restore, never serialized.
    fn hard_cap(&self) -> SimTime {
        let last_arrival = self.jobs.last().map(|j| j.submit).unwrap_or(SimTime::ZERO);
        last_arrival + self.cfg.drain_limit
    }

    /// Arms the t = 0 world: initial power-on, the arrival schedule and
    /// the periodic timers. Idempotent — a restored runner skips it.
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;

        // Bring up the initial node set instantaneously at t = 0 — the
        // datacenter does not cold-boot in front of the workload. The
        // policy picks which nodes (§III-C: by reliability, boot time, …).
        let initial = self.cfg.initial_on.min(self.cluster.num_hosts());
        let all: Vec<HostId> = (0..self.cluster.num_hosts())
            .map(|i| HostId(i as u32))
            .collect();
        let ranked = self.policy.rank_power_on(&self.cluster, &all);
        for &h in ranked.iter().take(initial) {
            self.cluster.begin_power_on(h, SimTime::ZERO);
            self.cluster.complete_power_on(h);
            self.arm_failure(h);
            self.arm_slowdown(h);
        }
        // Rack-outage timers run for the whole simulation: an outage can
        // strike whatever happens to be powered when it fires.
        for r in 0..self.faults.num_racks() {
            if let Some(dt) = self.faults.time_to_rack_outage(r) {
                self.sim.schedule_after(dt, Event::RackOutage(r));
            }
        }

        for (idx, job) in self.jobs.iter().enumerate() {
            self.sim.schedule_at(job.submit, Event::JobArrival(idx));
        }
        self.sim
            .schedule_after(self.cfg.sla_check_period, Event::SlaCheck);
        if let Some(p) = self.cfg.consolidation_period {
            self.sim.schedule_after(p, Event::ConsolidationTick);
        }
        self.lambda_min = self.cfg.lambda_min;
        if let Some(al) = &self.cfg.adaptive_lambda {
            self.lambda_min = self
                .lambda_min
                .clamp(al.lambda_min_bounds.0, al.lambda_min_bounds.1);
            self.sim
                .schedule_after(al.adjust_period, Event::LambdaAdjust);
        }
        if let Some(p) = self.cfg.checkpoint_period {
            self.sim.schedule_after(p, Event::CheckpointTick);
        }
        self.record_metrics();
    }

    /// Processes one event *batch* — every event of the next occupied
    /// instant, then the scheduling round, power adjustment, metrics and
    /// audit that close it. Starts the run on first call. Returns `false`
    /// once the run is over (all jobs done, or the drain horizon passed);
    /// call [`Runner::finish`] then.
    ///
    /// Batch boundaries are the only coherent snapshot points: between
    /// them no event is half-applied and the metrics are up to date.
    pub fn step_batch(&mut self) -> bool {
        // A run that already completed (e.g. restored from a snapshot
        // taken at the final batch) must not drain leftover periodic
        // timers past its end.
        if self.started && self.finished() {
            return false;
        }
        self.start();
        let hard_cap = self.hard_cap();
        let Some((now, _, event)) = self.sim.step_before(hard_cap) else {
            return false;
        };
        // Keep the earliest scheduling reason of the batch.
        let mut dirty = self.handle(now, event);
        // Batch all events of this instant before scheduling/metrics.
        while self.sim.peek_time() == Some(now) {
            let (_, _, event) = self
                .sim
                .step_before(hard_cap)
                // lint:allow(P001): peek_time just proved an event exists here
                .expect("peeked event at the current instant");
            if let Some(reason) = self.handle(now, event) {
                dirty = dirty.or(Some(reason));
            }
        }
        if let Some(reason) = dirty {
            self.schedule_round(now, reason);
            self.adjust_power(now);
        }
        self.record_metrics();
        self.audit_invariants(now);
        !self.finished()
    }

    /// Closes the books after the last [`Runner::step_batch`] and returns
    /// the report plus the audit log.
    pub fn finish(mut self) -> (RunReport, Vec<AuditEvent>) {
        let end = self.sim.now();
        let audit = std::mem::take(&mut self.audit);
        (self.finalize(end), audit)
    }

    // ----- snapshot / restore ----------------------------------------------
    //
    // Canonical vs. rebuilt state. Serialized: the engine (clock, event
    // queue with live handles, RNG), the cluster, the fault engine's RNG
    // stream positions, the retry/backoff and blacklist bookkeeping, every
    // accumulated metric, and a policy-private block. Rebuilt on restore
    // from the constructor arguments: the power model, the job list (from
    // the trace), the obs handle and its histogram registrations, the
    // report label, and the `power_scratch` buffer. The drain horizon
    // (`hard_cap`) is derived from the trace and recomputed.

    /// Serializes the full mid-flight run state. Call at a batch boundary
    /// (between [`Runner::step_batch`] calls); the driver loop never
    /// exposes a half-applied batch.
    ///
    /// Fails only if some sequence outgrew the codec's `u32` length
    /// prefix ([`PersistError::SequenceTooLong`]) — the writer refuses to
    /// hand out a malformed snapshot rather than panicking mid-run.
    pub fn snapshot(&self) -> Result<Vec<u8>, PersistError> {
        let mut w = Writer::new();
        write_header(&mut w);
        self.persist_body(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a run from `bytes`, with the paper's Table-I power model.
    /// `hosts`, `trace`, `policy` and `cfg` must be the ones the
    /// snapshotted run was built with — the snapshot carries fingerprint
    /// fields (host count, job count, seed) and rejects mismatches.
    pub fn restore(
        hosts: Vec<HostSpec>,
        trace: Trace,
        policy: Box<dyn Policy>,
        cfg: RunConfig,
        bytes: &[u8],
    ) -> Result<Self, PersistError> {
        Self::restore_with_power_model(
            hosts,
            trace,
            policy,
            cfg,
            Box::new(CalibratedPowerModel::paper_4way()),
            bytes,
        )
    }

    /// As [`Runner::restore`] with an explicit power model.
    pub fn restore_with_power_model(
        hosts: Vec<HostSpec>,
        trace: Trace,
        policy: Box<dyn Policy>,
        cfg: RunConfig,
        model: Box<dyn PowerModel>,
        bytes: &[u8],
    ) -> Result<Self, PersistError> {
        let mut r = Reader::new(bytes);
        read_header(&mut r)?;
        let mut runner = Self::with_power_model(hosts, trace, policy, cfg, model);
        runner.restore_body(&mut r)?;
        r.finish()?;
        Ok(runner)
    }

    fn persist_body(&self, w: &mut Writer) {
        w.put_bool(self.started);
        // Fingerprint fields: restore validates these against the world it
        // was handed, catching a snapshot replayed onto the wrong run.
        w.put_u32(self.cluster.num_hosts() as u32);
        w.put_u64(self.jobs.len() as u64);
        w.put_u64(self.cfg.seed);

        self.sim.persist(w);
        self.rng.persist(w);
        // HashMaps are serialized as key-sorted pair lists so the byte
        // stream never depends on hasher state.
        let mut completion: Vec<(VmId, EventHandle)> =
            // lint:allow(D001): collected then key-sorted before serializing
            self.completion.iter().map(|(&k, &v)| (k, v)).collect();
        completion.sort_by_key(|&(vm, _)| vm);
        completion.persist(w);
        let failure: Vec<(HostId, EventHandle)> =
            self.failure_timer.iter().map(|(&k, &v)| (k, v)).collect();
        failure.persist(w);
        let slowdown: Vec<(HostId, EventHandle)> =
            self.slowdown_timer.iter().map(|(&k, &v)| (k, v)).collect();
        slowdown.persist(w);
        self.faults.persist(w);
        // BTreeMap: already key-sorted, serialize in iteration order.
        let retry: Vec<(VmId, RetryState)> = self.retry.iter().map(|(&k, &v)| (k, v)).collect();
        retry.persist(w);
        self.crash_counts.persist(w);
        let mut displaced: Vec<(VmId, SimTime)> =
            // lint:allow(D001): collected then key-sorted before serializing
            self.displaced_at.iter().map(|(&k, &v)| (k, v)).collect();
        displaced.sort_by_key(|&(vm, _)| vm);
        displaced.persist(w);
        self.auditor.persist(w);
        self.fstats.persist(w);
        w.put_f64(self.recovery_total_secs);

        self.power_series.persist(w);
        self.power_tw.persist(w);
        self.working_tw.persist(w);
        self.online_tw.persist(w);
        self.outcomes.persist(w);
        w.put_usize(self.jobs_done);
        w.put_u64(self.migrations);
        w.put_u64(self.creations);
        w.put_u64(self.host_failures);
        w.put_u64(self.vms_displaced);
        w.put_f64(self.lambda_min);
        self.audit.persist(w);
        self.sat_window.persist(w);
        let parked: Vec<(VmId, SimTime)> = self.parked.iter().map(|(&k, &v)| (k, v)).collect();
        parked.persist(w);
        w.put_u64(self.vms_parked);
        self.cluster.persist(w);
        // Policy-private state rides in a length-prefixed block so the
        // outer layout stays policy-agnostic.
        w.put_block(|w| self.policy.persist_state(w));
    }

    fn restore_body(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.started = r.get_bool()?;
        let hosts = r.get_u32()? as usize;
        if hosts != self.cluster.num_hosts() {
            return Err(PersistError::Corrupt(format!(
                "snapshot taken over {hosts} hosts, run built with {}",
                self.cluster.num_hosts()
            )));
        }
        let jobs = r.get_u64()? as usize;
        if jobs != self.jobs.len() {
            return Err(PersistError::Corrupt(format!(
                "snapshot taken over {jobs} jobs, trace carries {}",
                self.jobs.len()
            )));
        }
        let seed = r.get_u64()?;
        if seed != self.cfg.seed {
            return Err(PersistError::Corrupt(format!(
                "snapshot seed {seed:#x} does not match configured {:#x}",
                self.cfg.seed
            )));
        }

        self.sim = Simulator::restore(r)?;
        self.rng = SimRng::restore(r)?;
        self.completion = Vec::<(VmId, EventHandle)>::restore(r)?
            .into_iter()
            .collect();
        self.failure_timer = Vec::<(HostId, EventHandle)>::restore(r)?
            .into_iter()
            .collect();
        self.slowdown_timer = Vec::<(HostId, EventHandle)>::restore(r)?
            .into_iter()
            .collect();
        self.faults = FaultEngine::restore(r)?;
        self.retry = Vec::<(VmId, RetryState)>::restore(r)?.into_iter().collect();
        self.crash_counts = Vec::restore(r)?;
        if self.crash_counts.len() != self.cluster.num_hosts() {
            return Err(PersistError::Corrupt(format!(
                "crash-count table covers {} hosts, expected {}",
                self.crash_counts.len(),
                self.cluster.num_hosts()
            )));
        }
        self.displaced_at = Vec::<(VmId, SimTime)>::restore(r)?.into_iter().collect();
        self.auditor = InvariantAuditor::restore(r)?;
        self.fstats = FaultStats::restore(r)?;
        self.recovery_total_secs = r.get_f64()?;

        self.power_series = TimeSeries::restore(r)?;
        self.power_tw = TimeWeighted::restore(r)?;
        self.working_tw = TimeWeighted::restore(r)?;
        self.online_tw = TimeWeighted::restore(r)?;
        self.outcomes = Vec::restore(r)?;
        self.jobs_done = r.get_usize()?;
        self.migrations = r.get_u64()?;
        self.creations = r.get_u64()?;
        self.host_failures = r.get_u64()?;
        self.vms_displaced = r.get_u64()?;
        self.lambda_min = r.get_f64()?;
        self.audit = Vec::restore(r)?;
        self.sat_window = eards_metrics::Summary::restore(r)?;
        self.parked = Vec::<(VmId, SimTime)>::restore(r)?.into_iter().collect();
        self.vms_parked = r.get_u64()?;
        self.cluster = Cluster::restore(r)?;
        // The auditor's shard map is derived state, not snapshot payload:
        // re-arm it from the configuration so a restored run keeps the
        // cross-shard conservation check.
        self.auditor
            .set_shard_map(derived_shard_map(&self.cfg, self.cluster.num_hosts()));
        let mut block = r.get_block()?;
        self.policy.restore_state(&mut block)?;
        block.finish()?;
        Ok(())
    }

    // ----- event handling --------------------------------------------------

    /// Handles one event; returns the scheduling-round reason it raises.
    fn handle(&mut self, now: SimTime, event: Event) -> Option<ScheduleReason> {
        match event {
            Event::JobArrival(idx) => {
                let job = self.jobs[idx].clone();
                let vm = self.cluster.submit_job(job);
                self.note(now, AuditKind::JobArrived { vm });
                Some(ScheduleReason::VmArrived)
            }
            Event::CreationDone(vm, seq) => {
                if self.cluster.vm(vm).state != VmState::Creating {
                    return None; // host failed mid-creation; VM re-queued
                }
                // Guard against a *stale* event: if the original creation
                // was aborted by a host failure and the VM is now being
                // re-created elsewhere, only the event carrying the live
                // operation's sequence number may complete it.
                let host = self.cluster.vm(vm).host.expect("creating VM has a host");
                let live =
                    self.cluster.host(host).ops.iter().any(|o| {
                        o.vm == vm && o.kind == eards_model::OpKind::Create && o.seq == seq
                    });
                if !live {
                    return None;
                }
                self.cluster.finish_creation(vm, now);
                let host = self.cluster.vm(vm).host.expect("created VM has a host");
                self.note(now, AuditKind::VmStarted { vm, host });
                self.obs.record(
                    now,
                    ObsEvent::Creation {
                        vm: vm.raw(),
                        host: host.raw(),
                    },
                );
                self.retry.remove(&vm);
                self.record_recovery(vm, now);
                self.touch(host, now);
                self.complete_if_done(vm, now);
                Some(ScheduleReason::VmFinished)
            }
            Event::MigrationDone(vm, seq) => {
                let (from, to) = match self.cluster.vm(vm).state {
                    VmState::Migrating { to } => (
                        self.cluster.vm(vm).host.expect("migrating VM has a host"),
                        to,
                    ),
                    _ => return None, // an endpoint failed mid-migration
                };
                // Stale-event guard (see CreationDone): only the event
                // carrying the live migration's sequence number may
                // complete it.
                let live = self.cluster.host(to).ops.iter().any(|o| {
                    o.vm == vm
                        && matches!(o.kind, eards_model::OpKind::MigrateIn { .. })
                        && o.seq == seq
                });
                if !live {
                    return None;
                }
                // Progress accrued on the source up to this instant.
                self.cluster.touch_host(from, now);
                self.cluster.finish_migration(vm, now);
                let to = self.cluster.vm(vm).host.expect("migrated VM has a host");
                self.note(now, AuditKind::MigrationFinished { vm, to });
                self.obs.record(
                    now,
                    ObsEvent::Migration {
                        vm: vm.raw(),
                        from: from.raw(),
                        to: to.raw(),
                    },
                );
                self.retry.remove(&vm);
                self.touch(from, now);
                self.touch(to, now);
                self.complete_if_done(vm, now);
                Some(ScheduleReason::HostStateChanged)
            }
            Event::CheckpointDone(vm, seq) => {
                if self.cluster.vm(vm).state != VmState::Checkpointing {
                    return None;
                }
                let host = self
                    .cluster
                    .vm(vm)
                    .host
                    .expect("checkpointing VM has a host");
                let live = self.cluster.host(host).ops.iter().any(|o| {
                    o.vm == vm && o.kind == eards_model::OpKind::Checkpoint && o.seq == seq
                });
                if !live {
                    return None;
                }
                self.cluster.finish_checkpoint(vm, now);
                self.note(now, AuditKind::CheckpointTaken { vm });
                let host = self
                    .cluster
                    .vm(vm)
                    .host
                    .expect("checkpointing VM has a host");
                self.touch(host, now);
                self.complete_if_done(vm, now);
                None
            }
            Event::JobCompletion(vm) => {
                self.completion.remove(&vm);
                if self.cluster.vm(vm).state != VmState::Running {
                    // Migrating/checkpointing: their completion handlers
                    // re-check; a queued VM (failure) restarts later.
                    return None;
                }
                let host = self.cluster.vm(vm).host.expect("running VM has a host");
                self.cluster.touch_host(host, now);
                if self.complete_if_done(vm, now) {
                    Some(ScheduleReason::VmFinished)
                } else {
                    // Allocation changed since this event was scheduled;
                    // refresh the projection.
                    self.refresh_completion(vm, now);
                    None
                }
            }
            Event::BootDone(h) => {
                if matches!(self.cluster.host(h).power, PowerState::Booting { .. }) {
                    if self.faults.boot_fails(h.raw() as usize) {
                        self.cluster.fail_boot(h);
                        self.note(now, AuditKind::BootFailed { host: h });
                        self.obs.record(
                            now,
                            ObsEvent::Fault {
                                kind: FaultKind::BootFailure,
                                host: h.raw(),
                            },
                        );
                        self.fstats.boot_failures += 1;
                        let mttr = self.faults.plan().mttr;
                        self.sim.schedule_after(mttr, Event::HostRepaired(h));
                    } else {
                        self.cluster.complete_power_on(h);
                        self.note(now, AuditKind::HostOn { host: h });
                        self.obs.record(
                            now,
                            ObsEvent::PowerFlip {
                                host: h.raw(),
                                state: PowerFlipKind::On,
                            },
                        );
                        self.arm_failure(h);
                        self.arm_slowdown(h);
                    }
                    Some(ScheduleReason::HostStateChanged)
                } else {
                    None
                }
            }
            Event::ShutdownDone(h) => {
                if matches!(self.cluster.host(h).power, PowerState::ShuttingDown { .. }) {
                    self.cluster.complete_power_off(h);
                    self.obs.record(
                        now,
                        ObsEvent::PowerFlip {
                            host: h.raw(),
                            state: PowerFlipKind::Off,
                        },
                    );
                }
                None
            }
            Event::HostFailure(h) => {
                self.failure_timer.remove(&h);
                if self.cluster.host(h).power != PowerState::On {
                    return None;
                }
                let mttr = self.faults.plan().mttr;
                self.crash_host(h, now, mttr);
                Some(ScheduleReason::HostStateChanged)
            }
            Event::HostRepaired(h) => {
                self.cluster.repair_host(h);
                self.note(now, AuditKind::HostRepaired { host: h });
                self.obs.record(
                    now,
                    ObsEvent::Recovery {
                        kind: RecoveryKind::HostRepaired,
                        id: h.raw() as u64,
                    },
                );
                // In degrade mode a repair wipes the host's flapping
                // record: the blacklist lifts and the crash count resets
                // (so renewed flapping can re-blacklist it), which in turn
                // may let parked VMs back in.
                if self.cfg.degrade && self.cluster.is_blacklisted(h) {
                    self.cluster.blacklist(h, 0.0);
                    self.crash_counts[h.raw() as usize] = 0;
                    self.note(now, AuditKind::BlacklistCleared { host: h });
                }
                let _ = self.try_release_parked(now);
                Some(ScheduleReason::HostStateChanged)
            }
            Event::CreationAborted(vm, seq) => {
                if self.cluster.vm(vm).state != VmState::Creating {
                    return None; // the host failed first; already re-queued
                }
                // Stale-event guard: only the abort belonging to the live
                // operation (matching sequence number) may kill it.
                let host = self.cluster.vm(vm).host.expect("creating VM has a host");
                let live =
                    self.cluster.host(host).ops.iter().any(|o| {
                        o.vm == vm && o.kind == eards_model::OpKind::Create && o.seq == seq
                    });
                if !live {
                    return None;
                }
                self.cluster.abort_creation(vm, now);
                self.note(now, AuditKind::CreationFailed { vm, host });
                self.obs.record(
                    now,
                    ObsEvent::Fault {
                        kind: FaultKind::CreationAbort,
                        host: host.raw(),
                    },
                );
                self.fstats.creation_failures += 1;
                // The recovery clock starts at the first failure and runs
                // until the VM finally comes up somewhere.
                self.displaced_at.entry(vm).or_insert(now);
                self.apply_backoff(vm, now);
                self.touch(host, now);
                Some(ScheduleReason::VmArrived)
            }
            Event::MigrationAborted(vm, seq) => {
                let to = match self.cluster.vm(vm).state {
                    VmState::Migrating { to } => to,
                    _ => return None, // an endpoint failed first
                };
                let from = self.cluster.vm(vm).host.expect("migrating VM has a host");
                let live = self.cluster.host(to).ops.iter().any(|o| {
                    o.vm == vm
                        && matches!(o.kind, eards_model::OpKind::MigrateIn { .. })
                        && o.seq == seq
                });
                if !live {
                    return None;
                }
                self.cluster.abort_migration(vm, now);
                self.note(now, AuditKind::MigrationAborted { vm, from, to });
                self.obs.record(
                    now,
                    ObsEvent::Fault {
                        kind: FaultKind::MigrationAbort,
                        host: to.raw(),
                    },
                );
                self.fstats.migration_aborts += 1;
                self.apply_backoff(vm, now);
                self.touch(from, now);
                self.touch(to, now);
                Some(ScheduleReason::HostStateChanged)
            }
            Event::SlowdownStart(h) => {
                self.slowdown_timer.remove(&h);
                if self.cluster.host(h).power != PowerState::On {
                    return None; // episode cancelled with the host
                }
                let sp = self
                    .faults
                    .plan()
                    .slowdown
                    .clone()
                    .expect("event only scheduled with a slowdown plan");
                self.cluster.set_cpu_factor(h, sp.factor);
                self.note(
                    now,
                    AuditKind::SlowdownStarted {
                        host: h,
                        factor: sp.factor,
                    },
                );
                self.obs.record(
                    now,
                    ObsEvent::Fault {
                        kind: FaultKind::SlowdownStart,
                        host: h.raw(),
                    },
                );
                self.fstats.slowdown_episodes += 1;
                let handle = self.sim.schedule_after(sp.duration, Event::SlowdownEnd(h));
                self.slowdown_timer.insert(h, handle);
                self.touch(h, now);
                Some(ScheduleReason::HostStateChanged)
            }
            Event::SlowdownEnd(h) => {
                self.slowdown_timer.remove(&h);
                if self.cluster.host(h).power != PowerState::On {
                    return None;
                }
                self.cluster.set_cpu_factor(h, 1.0);
                self.note(now, AuditKind::SlowdownEnded { host: h });
                self.obs.record(
                    now,
                    ObsEvent::Fault {
                        kind: FaultKind::SlowdownEnd,
                        host: h.raw(),
                    },
                );
                self.touch(h, now);
                self.arm_slowdown(h);
                Some(ScheduleReason::HostStateChanged)
            }
            Event::RackOutage(r) => {
                let (size, outage) = {
                    let rp = self
                        .faults
                        .plan()
                        .rack
                        .as_ref()
                        .expect("event only scheduled with a rack plan");
                    (rp.rack_size, rp.outage)
                };
                let lo = r * size;
                let hi = (lo + size).min(self.cluster.num_hosts());
                let failed = (lo..hi)
                    .filter(|&i| self.cluster.host(HostId(i as u32)).power.is_online())
                    .count();
                self.fstats.rack_outages += 1;
                self.note(now, AuditKind::RackOutage { rack: r, failed });
                // For rack outages the `host` field carries the *rack*
                // index (the per-host crashes below record themselves).
                self.obs.record(
                    now,
                    ObsEvent::Fault {
                        kind: FaultKind::RackOutage,
                        host: r as u32,
                    },
                );
                for i in lo..hi {
                    let h = HostId(i as u32);
                    match self.cluster.host(h).power {
                        PowerState::On => self.crash_host(h, now, outage),
                        PowerState::Booting { .. } => {
                            // The boot is struck down with the rack.
                            self.cancel_fault_timers(h);
                            self.cluster.fail_boot(h);
                            self.note(now, AuditKind::BootFailed { host: h });
                            self.fstats.boot_failures += 1;
                            self.sim.schedule_after(outage, Event::HostRepaired(h));
                        }
                        _ => {} // unpowered hosts are unaffected
                    }
                }
                // Re-arm: the rack can fail again later.
                if let Some(dt) = self.faults.time_to_rack_outage(r) {
                    self.sim.schedule_after(dt, Event::RackOutage(r));
                }
                (failed > 0).then_some(ScheduleReason::HostStateChanged)
            }
            Event::RetryRelease(vm) => {
                // The backoff expired; if the VM is still waiting, give the
                // policy a chance to place it again.
                (self.cluster.vm(vm).state == VmState::Queued).then_some(ScheduleReason::VmArrived)
            }
            Event::SlaCheck => {
                let mut violated = false;
                let mut running: Vec<VmId> = self
                    .cluster
                    .vms()
                    .filter(|v| v.state == VmState::Running)
                    .map(|v| v.id)
                    .collect();
                running.sort_unstable(); // HashMap order is not deterministic
                for vm in running {
                    if let Some(host) = self.cluster.vm(vm).host {
                        self.cluster.touch_host(host, now);
                    }
                    let f = self.cluster.vm(vm).sla_fulfillment(now);
                    if f < 1.0 {
                        violated = true;
                        if self.cfg.dynamic_sla {
                            self.escalate_request(vm, now);
                        }
                    }
                }
                if !self.finished() {
                    self.sim
                        .schedule_after(self.cfg.sla_check_period, Event::SlaCheck);
                }
                // Periodic release guard: without this, a run whose
                // blacklist cleared between repairs could strand parked
                // VMs until the next repair/consolidation event.
                let released = self.try_release_parked(now);
                violated
                    .then_some(ScheduleReason::SlaViolation)
                    .or(released)
            }
            Event::ConsolidationTick => {
                if let (Some(p), false) = (self.cfg.consolidation_period, self.finished()) {
                    self.sim.schedule_after(p, Event::ConsolidationTick);
                }
                let released = self.try_release_parked(now);
                self.policy
                    .uses_migration()
                    .then_some(ScheduleReason::Periodic)
                    .or(released)
            }
            Event::LambdaAdjust => {
                let al = self
                    .cfg
                    .adaptive_lambda
                    .clone()
                    .expect("event only scheduled when configured");
                if self.sat_window.count() >= al.min_window_jobs {
                    let recent = self.sat_window.mean();
                    if recent < al.target_satisfaction {
                        // SLAs slipping: keep more nodes on (less eager off).
                        self.lambda_min -= al.step;
                    } else {
                        // Comfortably above target: turn off more eagerly.
                        self.lambda_min += al.step;
                    }
                    self.lambda_min = self
                        .lambda_min
                        .clamp(al.lambda_min_bounds.0, al.lambda_min_bounds.1)
                        .min(self.cfg.lambda_max - 0.05);
                    self.note(
                        now,
                        AuditKind::LambdaAdjusted {
                            lambda_min: self.lambda_min,
                        },
                    );
                    self.sat_window = eards_metrics::Summary::new();
                }
                if !self.finished() {
                    self.sim
                        .schedule_after(al.adjust_period, Event::LambdaAdjust);
                }
                None
            }
            Event::CheckpointTick => {
                let mut eligible: Vec<VmId> = self
                    .cluster
                    .vms()
                    .filter(|v| v.state == VmState::Running)
                    .map(|v| v.id)
                    .collect();
                eligible.sort_unstable(); // HashMap order is not deterministic
                for vm in eligible {
                    let ends = now + self.cfg.checkpoint_duration;
                    let seq = self.cluster.start_checkpoint(vm, now, ends);
                    self.sim.schedule_at(ends, Event::CheckpointDone(vm, seq));
                    let host = self.cluster.vm(vm).host.expect("running VM has a host");
                    self.touch(host, now);
                }
                if let (Some(p), false) = (self.cfg.checkpoint_period, self.finished()) {
                    self.sim.schedule_after(p, Event::CheckpointTick);
                }
                None
            }
        }
    }

    // ----- scheduling ------------------------------------------------------

    fn schedule_round(&mut self, now: SimTime, reason: ScheduleReason) {
        let _span = self.obs.span("schedule_round", now);
        self.obs
            .observe(self.queue_hist, self.cluster.queue().len() as f64);
        let ctx = ScheduleContext { now, reason };
        let actions = self.policy.schedule(&self.cluster, &ctx);
        for action in actions {
            match action {
                Action::Create { vm, host } => {
                    if self.cluster.vm(vm).state != VmState::Queued
                        || !self.cluster.can_place_overcommitted(host, vm)
                    {
                        continue; // stale decision; the VM stays queued
                    }
                    // Retry gate: a VM whose last attempt failed waits out
                    // its backoff in the queue.
                    if let Some(r) = self.retry.get(&vm) {
                        if r.eligible > now {
                            continue;
                        }
                    }
                    // Parked VMs sit out admission entirely until the
                    // flapping blacklist clears (backpressure).
                    if self.parked.contains_key(&vm) {
                        continue;
                    }
                    let mean = self.cluster.host(host).spec.class.creation_cost();
                    let dur = self.op_duration(mean, self.cfg.creation_jitter_std);
                    let ends = now + dur;
                    // Doomed operations are drawn at start: they schedule
                    // their abort instead of their completion.
                    let doomed = self.faults.creation_fails(host.raw() as usize);
                    let seq = self.cluster.start_creation(vm, host, now, ends);
                    self.note(now, AuditKind::CreationStarted { vm, host });
                    match doomed {
                        Some(frac) => {
                            let abort_at = now + dur.mul_f64(frac);
                            self.sim
                                .schedule_at(abort_at, Event::CreationAborted(vm, seq));
                        }
                        None => {
                            self.sim.schedule_at(ends, Event::CreationDone(vm, seq));
                        }
                    }
                    self.touch(host, now);
                    self.creations += 1;
                }
                Action::Migrate { vm, to } => {
                    let v = self.cluster.vm(vm);
                    if !self.policy.uses_migration()
                        || v.state != VmState::Running
                        || v.host == Some(to)
                        || !self.cluster.can_place_overcommitted(to, vm)
                    {
                        continue;
                    }
                    if let Some(r) = self.retry.get(&vm) {
                        if r.eligible > now {
                            continue; // backing off after an aborted attempt
                        }
                    }
                    let from = v.host.expect("running VM has a host");
                    // Migration cost is the destination's (§V: C_m by class).
                    let mean = self.cluster.host(to).spec.class.migration_cost();
                    let dur = self.op_duration(mean, self.cfg.migration_jitter_std);
                    let ends = now + dur;
                    let doomed = self.faults.migration_aborts(to.raw() as usize);
                    let seq = self.cluster.start_migration(vm, to, now, ends);
                    self.note(now, AuditKind::MigrationStarted { vm, from, to });
                    match doomed {
                        Some(frac) => {
                            let abort_at = now + dur.mul_f64(frac);
                            self.sim
                                .schedule_at(abort_at, Event::MigrationAborted(vm, seq));
                        }
                        None => {
                            self.sim.schedule_at(ends, Event::MigrationDone(vm, seq));
                        }
                    }
                    self.touch(from, now);
                    self.touch(to, now);
                    self.migrations += 1;
                }
            }
        }
    }

    fn op_duration(&mut self, mean: SimDuration, std_dev: f64) -> SimDuration {
        let secs = self.rng.normal_at_least(mean.as_secs_f64(), std_dev, 1.0);
        SimDuration::from_secs_f64(secs)
    }

    /// §III-A.5: raise a violated VM's requested CPU so rescheduling can
    /// find it more room. Escalation only helps a VM that is actually
    /// being *starved* (allocation below demand, e.g. by dom0 operation
    /// overheads) — a VM already running at full demand cannot be sped up,
    /// and inflating its reservation would only block queued VMs. The
    /// escalation is also capped at 1.5× the demand: reserving a whole
    /// node for one late job starves the rest of the queue.
    fn escalate_request(&mut self, vm: VmId, now: SimTime) {
        let (needed, cap, starved) = {
            let v = self.cluster.vm(vm);
            let host = v.host.expect("running VM has a host");
            let cap = self.cluster.host(host).spec.cpu;
            let left = v
                .job
                .deadline_at()
                .saturating_since(now)
                .as_secs_f64()
                .max(1.0);
            (
                (v.remaining_work() / left).ceil(),
                cap,
                v.alloc + 1e-9 < v.job.cpu.as_f64(),
            )
        };
        if !starved {
            return;
        }
        let v = self.cluster.vm_mut(vm);
        let ceiling = (v.job.cpu.points() * 3 / 2).min(cap.points());
        let new_cpu = (needed as u32).clamp(v.job.cpu.points(), ceiling);
        v.requested.cpu = eards_model::Cpu(new_cpu.max(v.requested.cpu.points()));
    }

    // ----- power management (§III-C) ----------------------------------------

    fn adjust_power(&mut self, now: SimTime) {
        let _span = self.obs.span("adjust_power", now);
        let mut candidates = std::mem::take(&mut self.power_scratch);
        // Turn on: working/online above λ_max, or unplaceable queue.
        loop {
            let online = self.cluster.online_count();
            let working = self.cluster.working_count();
            let ratio = if online == 0 {
                f64::INFINITY
            } else {
                working as f64 / online as f64
            };
            let queue_stuck = self.queue_stuck();
            if ratio <= self.cfg.lambda_max && !queue_stuck {
                break;
            }
            candidates.clear();
            candidates.extend(
                self.cluster
                    .hosts()
                    .iter()
                    .filter(|h| h.power == PowerState::Off)
                    .map(|h| h.spec.id),
            );
            if candidates.is_empty() {
                break;
            }
            let pick = self.policy.rank_power_on(&self.cluster, &candidates)[0];
            let ready_at = self.cluster.begin_power_on(pick, now);
            self.note(now, AuditKind::HostPoweringOn { host: pick });
            self.obs.record(
                now,
                ObsEvent::PowerFlip {
                    host: pick.raw(),
                    state: PowerFlipKind::Booting,
                },
            );
            self.sim.schedule_at(ready_at, Event::BootDone(pick));
            // A booting host counts as online, so the ratio falls and the
            // loop converges; the stuck-queue rule boots at most one.
            if queue_stuck && ratio <= self.cfg.lambda_max {
                break;
            }
        }

        // Turn off: working/online below λ_min (never below minexec).
        loop {
            let online = self.cluster.online_count();
            if online <= self.cfg.min_exec {
                break;
            }
            let working = self.cluster.working_count();
            let ratio = if online == 0 {
                break;
            } else {
                working as f64 / online as f64
            };
            if ratio >= self.lambda_min {
                break;
            }
            candidates.clear();
            candidates.extend(
                self.cluster
                    .hosts()
                    .iter()
                    .filter(|h| h.power == PowerState::On && h.is_idle())
                    .map(|h| h.spec.id),
            );
            if candidates.is_empty() {
                break;
            }
            let pick = self.policy.rank_power_off(&self.cluster, now, &candidates)[0];
            // Disarm crash/slowdown timers with the host: a failure must
            // never fire on a host that is no longer up.
            self.cancel_fault_timers(pick);
            let off_at = self.cluster.begin_power_off(pick, now);
            self.note(now, AuditKind::HostPoweringOff { host: pick });
            self.obs.record(
                now,
                ObsEvent::PowerFlip {
                    host: pick.raw(),
                    state: PowerFlipKind::ShuttingDown,
                },
            );
            self.sim.schedule_at(off_at, Event::ShutdownDone(pick));
        }
        self.power_scratch = candidates;
    }

    /// True if a queued VM cannot be placed on any ready host and no help
    /// is on the way (nothing booting).
    fn queue_stuck(&self) -> bool {
        if self.cluster.queue().is_empty() {
            return false;
        }
        let booting = self
            .cluster
            .hosts()
            .iter()
            .any(|h| matches!(h.power, PowerState::Booting { .. }));
        if booting {
            return false;
        }
        self.cluster.queue().iter().any(|&vm| {
            !(0..self.cluster.num_hosts()).any(|i| self.cluster.can_place(HostId(i as u32), vm))
        })
    }

    // ----- fault handling ---------------------------------------------------

    /// Arms the failure timer for a freshly-up host.
    fn arm_failure(&mut self, h: HostId) {
        let rel = self.cluster.host(h).spec.reliability;
        if let Some(ttf) = self.faults.time_to_crash(h.raw() as usize, rel) {
            let handle = self.sim.schedule_after(ttf, Event::HostFailure(h));
            self.failure_timer.insert(h, handle);
        }
    }

    /// Arms the next slowdown-episode timer for a freshly-up host (or one
    /// whose episode just ended).
    fn arm_slowdown(&mut self, h: HostId) {
        if let Some(dt) = self.faults.time_to_slowdown(h.raw() as usize) {
            let handle = self.sim.schedule_after(dt, Event::SlowdownStart(h));
            self.slowdown_timer.insert(h, handle);
        }
    }

    /// Cancels every armed fault timer of a host and lifts an active
    /// slowdown. Runs on **every** path that takes the host out of `On`
    /// (crash, rack outage, planned shutdown): a stale crash timer firing
    /// on an already-off host would corrupt the power accounting.
    fn cancel_fault_timers(&mut self, h: HostId) {
        if let Some(handle) = self.failure_timer.remove(&h) {
            self.sim.cancel(handle);
        }
        if let Some(handle) = self.slowdown_timer.remove(&h) {
            self.sim.cancel(handle);
        }
        if self.cluster.host(h).cpu_factor != 1.0 {
            self.cluster.set_cpu_factor(h, 1.0);
        }
    }

    /// Crashes an `On` host: displaces its VMs back to the queue, counts
    /// it toward the flapping blacklist, and schedules the repair.
    fn crash_host(&mut self, h: HostId, now: SimTime, repair_after: SimDuration) {
        let _span = self.obs.span("crash_host", now);
        self.obs.record(
            now,
            ObsEvent::Fault {
                kind: FaultKind::Crash,
                host: h.raw(),
            },
        );
        self.cancel_fault_timers(h);
        let displaced = self.cluster.fail_host(h, now);
        self.note(
            now,
            AuditKind::HostFailed {
                host: h,
                displaced: displaced.len(),
            },
        );
        self.vms_displaced += displaced.len() as u64;
        for vm in displaced {
            if let Some(handle) = self.completion.remove(&vm) {
                self.sim.cancel(handle);
            }
            // A crash resets the retry ladder — the VM did nothing wrong —
            // but starts (or keeps) its recovery clock.
            self.retry.remove(&vm);
            self.displaced_at.entry(vm).or_insert(now);
        }
        self.host_failures += 1;
        let idx = h.raw() as usize;
        self.crash_counts[idx] += 1;
        let (after, penalty) = {
            let r = &self.faults.plan().recovery;
            (r.blacklist_after, r.blacklist_penalty)
        };
        if after > 0 && self.crash_counts[idx] == after && !self.cluster.is_blacklisted(h) {
            self.cluster.blacklist(h, penalty);
            self.fstats.hosts_blacklisted += 1;
            self.note(
                now,
                AuditKind::HostBlacklisted {
                    host: h,
                    crashes: self.crash_counts[idx],
                },
            );
        }
        self.sim
            .schedule_after(repair_after, Event::HostRepaired(h));
    }

    /// Bumps a VM's retry ladder after a failed creation/migration and
    /// schedules its release. The VM stays in the queue (respectively on
    /// its source host); [`Runner::schedule_round`] refuses to act on it
    /// until the backoff expires.
    ///
    /// In degrade mode the ladder is bounded: backoff growth caps at
    /// `cfg.park_after` attempts, and a still-queued VM past the cap is
    /// *parked* — removed from the backoff ladder entirely and held (still
    /// `Queued`, never lost) until [`Runner::try_release_parked`] lets it
    /// back into admission.
    fn apply_backoff(&mut self, vm: VmId, now: SimTime) {
        let attempts = {
            let entry = self.retry.entry(vm).or_insert(RetryState {
                attempts: 0,
                eligible: now,
            });
            entry.attempts += 1;
            entry.attempts
        };
        if self.cfg.degrade
            && attempts > self.cfg.park_after
            && self.cluster.vm(vm).state == VmState::Queued
        {
            self.retry.remove(&vm);
            self.parked.insert(vm, now);
            self.vms_parked += 1;
            let ctr = self.obs.counter("vms_parked");
            self.obs.inc(ctr, 1);
            self.obs.record(
                now,
                ObsEvent::VmParked {
                    vm: vm.raw(),
                    attempts,
                },
            );
            self.note(now, AuditKind::VmParked { vm, attempts });
            return;
        }
        // Degrade mode caps backoff growth; legacy mode grows unbounded.
        let eff = if self.cfg.degrade {
            attempts.min(self.cfg.park_after)
        } else {
            attempts
        };
        let backoff = self.faults.plan().recovery.backoff(eff);
        self.retry.get_mut(&vm).expect("just inserted").eligible = now + backoff;
        self.fstats.retries_delayed += 1;
        self.obs.observe(self.retry_hist, f64::from(attempts));
        self.sim.schedule_after(backoff, Event::RetryRelease(vm));
    }

    /// Releases every parked VM back into admission once no host is
    /// blacklisted (the flapping that caused the pile-up has cleared).
    /// Deterministic: the parked map is a BTreeMap, so release order is
    /// VM-id order. No-op unless degrade mode parked anything.
    fn try_release_parked(&mut self, now: SimTime) -> Option<ScheduleReason> {
        if self.parked.is_empty() {
            return None;
        }
        let any_blacklisted =
            (0..self.cluster.num_hosts()).any(|i| self.cluster.is_blacklisted(HostId(i as u32)));
        if any_blacklisted {
            return None;
        }
        let released = std::mem::take(&mut self.parked);
        for &vm in released.keys() {
            self.note(now, AuditKind::VmUnparked { vm });
        }
        Some(ScheduleReason::VmArrived)
    }

    /// Closes a VM's recovery interval if one is open (it was displaced or
    /// its creation failed, and it just came up).
    fn record_recovery(&mut self, vm: VmId, now: SimTime) {
        if let Some(t0) = self.displaced_at.remove(&vm) {
            let dt = now.saturating_since(t0).as_secs_f64();
            self.obs.record(
                now,
                ObsEvent::Recovery {
                    kind: RecoveryKind::VmRecovered,
                    id: vm.raw(),
                },
            );
            self.fstats.recoveries += 1;
            self.recovery_total_secs += dt;
            if dt > self.fstats.max_recovery_secs {
                self.fstats.max_recovery_secs = dt;
            }
        }
    }

    /// Runs the invariant auditor after an event batch, including the
    /// driver-side check that fault timers only target hosts that are up.
    fn audit_invariants(&mut self, now: SimTime) {
        if !self.auditor.enabled() {
            return;
        }
        let mut timer_violation: Option<String> = None;
        for (&h, _) in self.failure_timer.iter().chain(self.slowdown_timer.iter()) {
            if self.cluster.host(h).power != PowerState::On {
                timer_violation = Some(format!(
                    "fault timer armed on {h} in state {:?}",
                    self.cluster.host(h).power
                ));
                break;
            }
        }
        if let Some(msg) = timer_violation {
            self.auditor.report(now, msg);
        }
        // No VM is ever lost to backpressure: every parked VM is still
        // queued (so conservation holds) and off the retry ladder.
        let mut parked_violation: Option<String> = None;
        for &vm in self.parked.keys() {
            if self.cluster.vm(vm).state != VmState::Queued {
                parked_violation = Some(format!(
                    "parked {vm} in state {:?}, expected Queued",
                    self.cluster.vm(vm).state
                ));
                break;
            }
            if self.retry.contains_key(&vm) {
                parked_violation = Some(format!("parked {vm} still on the retry ladder"));
                break;
            }
        }
        if let Some(msg) = parked_violation {
            self.auditor.report(now, msg);
        }
        self.auditor
            .check(&self.cluster, self.jobs_done as u64, now);
    }

    // ----- execution bookkeeping --------------------------------------------

    /// Re-runs the credit scheduler on `host` and refreshes completion
    /// projections for its VMs.
    fn touch(&mut self, host: HostId, now: SimTime) {
        self.cluster.reallocate_host(host, now);
        let resident = self.cluster.host(host).resident.clone();
        for vm in resident {
            self.refresh_completion(vm, now);
        }
    }

    fn refresh_completion(&mut self, vm: VmId, now: SimTime) {
        if let Some(handle) = self.completion.remove(&vm) {
            self.sim.cancel(handle);
        }
        let v = self.cluster.vm(vm);
        if !v.state.is_executing() {
            return;
        }
        if let Some(eta) = v.eta_secs() {
            // +1 ms guards against the fixed-point floor leaving a sliver
            // of work at the projected instant.
            let at = now + SimDuration::from_secs_f64(eta) + SimDuration::from_millis(1);
            let handle = self.sim.schedule_at(at, Event::JobCompletion(vm));
            self.completion.insert(vm, handle);
        }
    }

    /// Completes the VM's job if its work is done. Returns true on
    /// completion.
    fn complete_if_done(&mut self, vm: VmId, now: SimTime) -> bool {
        if self.cluster.vm(vm).state != VmState::Running || !self.cluster.vm(vm).work_complete() {
            return false;
        }
        if let Some(handle) = self.completion.remove(&vm) {
            self.sim.cancel(handle);
        }
        let host = self.cluster.vm(vm).host.expect("running VM has a host");
        self.cluster.finish_vm(vm, now);
        let outcome = self.outcome_of(vm, Some(now));
        self.note(
            now,
            AuditKind::JobCompleted {
                vm,
                satisfaction: outcome.satisfaction,
            },
        );
        self.sat_window.push(outcome.satisfaction);
        self.outcomes.push(outcome);
        self.jobs_done += 1;
        self.touch(host, now);
        true
    }

    fn outcome_of(&self, vm: VmId, completed: Option<SimTime>) -> JobOutcome {
        let v = self.cluster.vm(vm);
        let deadline = v.job.deadline();
        let end = completed.unwrap_or(self.sim.now());
        let exec = end.saturating_since(v.job.submit);
        // Requested-CPU residency: how long the VM held its share.
        let residency_start = v.started_at.unwrap_or(end);
        let residency = end.saturating_since(residency_start);
        JobOutcome {
            job_id: v.job.id.raw(),
            submitted: v.job.submit,
            completed,
            deadline,
            satisfaction: if completed.is_some() {
                satisfaction(exec, deadline)
            } else {
                0.0
            },
            delay_pct: delay_pct(exec, deadline),
            cpu_hours: v.job.cpu.as_f64() / 100.0 * residency.as_hours_f64(),
            work_cpu_hours: v.job.total_work() / 100.0 / 3600.0,
        }
    }

    // ----- metrics -----------------------------------------------------------

    fn record_metrics(&mut self) {
        let now = self.sim.now();
        let power = self.cluster.total_power(self.model.as_ref());
        self.power_tw.set(now, power);
        if self.cfg.record_power_series {
            self.power_series.record(now, power);
        }
        self.working_tw
            .set(now, self.cluster.working_count() as f64);
        self.online_tw.set(now, self.cluster.online_count() as f64);
    }

    fn finished(&self) -> bool {
        self.jobs_done == self.jobs.len()
    }

    fn finalize(mut self, end: SimTime) -> RunReport {
        // One last deep structural pass before the books close.
        if self.auditor.enabled() {
            if let Err(msg) = self.cluster.verify() {
                self.auditor.report(end, msg);
            }
        }
        // Jobs still in flight at the horizon count as unfinished.
        let mut unfinished: Vec<VmId> = self
            .cluster
            .vms()
            .filter(|v| v.state != VmState::Finished)
            .map(|v| v.id)
            .collect();
        unfinished.sort_unstable(); // deterministic report order
        for vm in unfinished {
            if let Some(host) = self.cluster.vm(vm).host {
                self.cluster.touch_host(host, end);
            }
            let outcome = self.outcome_of(vm, None);
            self.outcomes.push(outcome);
        }

        let mut report = RunReport::empty(self.label.clone());
        report.avg_working_nodes = self.working_tw.mean(end);
        report.avg_online_nodes = self.online_tw.mean(end);
        report.energy_kwh = self.power_tw.integral(end) / 3600.0 / 1000.0;
        report.migrations = self.migrations;
        report.creations = self.creations;
        report.host_failures = self.host_failures;
        report.vms_displaced = self.vms_displaced;
        self.fstats.mean_recovery_secs =
            self.recovery_total_secs / self.fstats.recoveries.max(1) as f64;
        self.fstats.invariant_checks = self.auditor.checks();
        self.fstats.invariant_violations = self.auditor.violations();
        report.faults = self.fstats;
        report.power_watts = self.power_series;
        report.jobs = self.outcomes;
        report.finalize_jobs();
        report
    }
}

#[cfg(test)]
mod seq_guard_tests {
    use super::*;
    use eards_model::{Cpu, HostClass, JobId, Mem};
    use eards_policies::RandomPolicy;
    use eards_workload::Trace;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn runner_with_two_hosts() -> Runner {
        let hosts = vec![
            HostSpec::standard(HostId(0), HostClass::Medium),
            HostSpec::standard(HostId(1), HostClass::Medium),
        ];
        let job = Job::new(
            JobId(0),
            SimTime::ZERO,
            Cpu(100),
            Mem::gib(1),
            SimDuration::from_secs(600),
            1.5,
        );
        let mut r = Runner::new(
            hosts,
            Trace::new(vec![job]),
            Box::new(RandomPolicy::new(1)),
            RunConfig::default(),
        );
        for h in [HostId(0), HostId(1)] {
            r.cluster.begin_power_on(h, SimTime::ZERO);
            r.cluster.complete_power_on(h);
        }
        r
    }

    /// The abort-and-done-same-tick collision: a creation on host 0 is
    /// killed by a host failure, the VM is re-created on host 1 with the
    /// *same* completion instant, and the stale abort of the first attempt
    /// then fires on the tick the second attempt completes. An end-time
    /// identity token cannot tell the two operations apart — the sequence
    /// number can.
    #[test]
    fn stale_abort_does_not_kill_reissued_creation() {
        let mut r = runner_with_two_hosts();
        let job = r.jobs[0].clone();
        let vm = r.cluster.submit_job(job);
        let seq1 = r.cluster.start_creation(vm, HostId(0), t(0), t(60));
        // Host 0 dies mid-creation; the VM is displaced back to the queue.
        r.cluster.fail_host(HostId(0), t(10));
        // Re-created on host 1 with an identical end time.
        let seq2 = r.cluster.start_creation(vm, HostId(1), t(10), t(60));
        assert_ne!(seq1, seq2);
        // The pre-seq identity token (vm, kind, ends) *does* collide with
        // the live operation — the exact ambiguity this guard closes:
        assert!(
            r.cluster
                .host(HostId(1))
                .ops
                .iter()
                .any(|o| o.vm == vm && o.kind == eards_model::OpKind::Create && o.ends == t(60)),
            "end-time token must collide for this regression to be meaningful"
        );
        // The stale abort lands on the live operation's completion tick
        // and must be ignored.
        assert!(r.handle(t(60), Event::CreationAborted(vm, seq1)).is_none());
        assert_eq!(r.cluster.vm(vm).state, VmState::Creating);
        assert_eq!(r.cluster.vm(vm).host, Some(HostId(1)));
        // A stale completion with the dead sequence number is equally inert.
        assert!(r.handle(t(60), Event::CreationDone(vm, seq1)).is_none());
        assert_eq!(r.cluster.vm(vm).state, VmState::Creating);
        // The live completion goes through.
        assert!(r.handle(t(60), Event::CreationDone(vm, seq2)).is_some());
        assert_eq!(r.cluster.vm(vm).state, VmState::Running);
    }

    /// Same collision for migrations: the stale abort of a dead migration
    /// attempt must not tear down a re-issued migration that shares its
    /// end time.
    #[test]
    fn stale_migration_abort_is_ignored() {
        let mut r = runner_with_two_hosts();
        let job = r.jobs[0].clone();
        let vm = r.cluster.submit_job(job);
        let cseq = r.cluster.start_creation(vm, HostId(0), t(0), t(40));
        assert!(r.handle(t(40), Event::CreationDone(vm, cseq)).is_some());
        // First migration attempt to host 1, aborted cleanly at t = 50.
        let mseq1 = r.cluster.start_migration(vm, HostId(1), t(41), t(101));
        assert!(r
            .handle(t(50), Event::MigrationAborted(vm, mseq1))
            .is_some());
        assert_eq!(r.cluster.vm(vm).host, Some(HostId(0)));
        // Second attempt with the same end time as the first.
        let mseq2 = r.cluster.start_migration(vm, HostId(1), t(51), t(101));
        assert_ne!(mseq1, mseq2);
        // The first attempt's completion event is still in flight under an
        // end-time token; with seq it is inert.
        assert!(r.handle(t(101), Event::MigrationDone(vm, mseq1)).is_none());
        assert!(matches!(r.cluster.vm(vm).state, VmState::Migrating { .. }));
        assert!(r.handle(t(101), Event::MigrationDone(vm, mseq2)).is_some());
        assert_eq!(r.cluster.vm(vm).host, Some(HostId(1)));
        assert_eq!(r.cluster.vm(vm).state, VmState::Running);
    }
}
