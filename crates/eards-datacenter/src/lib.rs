//! # eards-datacenter — the end-to-end simulation driver
//!
//! Ties the EARDS stack together: the DES engine (`eards-sim`), the
//! datacenter model (`eards-model`), a workload (`eards-workload`) and a
//! scheduling policy (`eards-policies` baselines or the `eards-core`
//! score-based scheduler) become one runnable experiment producing a
//! [`eards_metrics::RunReport`].
//!
//! * [`Runner`] — one simulation run: arrivals → scheduling rounds →
//!   creations/migrations with jittered overheads → Xen CPU sharing →
//!   completions, plus the λ_min/λ_max node power controller (§III-C),
//!   optional failure injection and dynamic SLA enforcement.
//! * [`RunConfig`] / [`paper_datacenter`] — the paper's §V setup (100
//!   nodes: 15 fast / 50 medium / 35 slow).
//! * [`FaultEngine`] / [`InvariantAuditor`] — the chaos layer: pluggable
//!   fault injection ([`eards_model::FaultPlan`]) with per-host, per-class
//!   RNG streams, and an always-on conservation auditor.
//! * [`run_sweep`] / [`lambda_grid`] — crossbeam-parallel parameter
//!   sweeps for the Figure 2/3 threshold surfaces.

#![warn(missing_docs)]

mod audit;
mod config;
mod faults;
mod invariants;
mod runner;
mod sweep;

pub use audit::{render_log, AuditEvent, AuditKind};
pub use config::{paper_datacenter, small_datacenter, AdaptiveLambda, AuditorMode, RunConfig};
pub use faults::FaultEngine;
pub use invariants::InvariantAuditor;
pub use runner::{RunProgress, Runner};
pub use sweep::{lambda_grid, run_sweep, SweepPoint};
