//! Parallel parameter sweeps.
//!
//! Figures 2 and 3 of the paper sweep the (λ_min, λ_max) threshold grid —
//! dozens of independent week-long simulations. Runs are embarrassingly
//! parallel, so they are fanned out over scoped `crossbeam` threads, one
//! queue of work items drained by `num_cpus` workers.

use eards_metrics::RunReport;
use eards_model::{HostSpec, Policy};
use eards_workload::Trace;
use parking_lot::Mutex;

use crate::config::RunConfig;
use crate::runner::Runner;

/// One point of a sweep: a labelled run configuration.
pub struct SweepPoint {
    /// Label attached to the resulting report.
    pub label: String,
    /// The run configuration of this point.
    pub config: RunConfig,
}

/// Runs every sweep point over the same datacenter and trace, each with a
/// fresh policy from `make_policy`, in parallel. Results come back in the
/// input order.
pub fn run_sweep<F>(
    hosts: &[HostSpec],
    trace: &Trace,
    make_policy: F,
    points: Vec<SweepPoint>,
) -> Vec<RunReport>
where
    F: Fn() -> Box<dyn Policy> + Sync,
{
    let n = points.len();
    let mut slots: Vec<Option<RunReport>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);
    let work = Mutex::new(points.into_iter().enumerate().collect::<Vec<_>>());

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let item = work.lock().pop();
                let Some((idx, point)) = item else { break };
                let runner =
                    Runner::new(hosts.to_vec(), trace.clone(), make_policy(), point.config)
                        .labeled(point.label);
                let report = runner.run();
                results.lock()[idx] = Some(report);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every sweep point produces a report"))
        .collect()
}

/// Builds the λ grid of Figures 2–3: `lambda_min` from `min_range`,
/// `lambda_max` from `max_range` (percent values, inclusive, stepped),
/// keeping only valid pairs (λ_min < λ_max).
pub fn lambda_grid(base: &RunConfig, min_values: &[u32], max_values: &[u32]) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &lo in min_values {
        for &hi in max_values {
            if lo >= hi {
                continue;
            }
            points.push(SweepPoint {
                label: format!("λ{lo}-{hi}"),
                config: base.clone().with_lambdas(lo, hi),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::small_datacenter;
    use eards_model::HostClass;
    use eards_policies::BackfillingPolicy;
    use eards_sim::SimDuration;
    use eards_workload::{generate, SynthConfig};

    #[test]
    fn lambda_grid_filters_invalid_pairs() {
        let base = RunConfig::default();
        let grid = lambda_grid(&base, &[30, 90], &[50, 90]);
        // (30,50), (30,90), (90,—): 90 ≥ 50 and 90 ≥ 90 are dropped.
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].label, "λ30-50");
        assert_eq!(grid[1].label, "λ30-90");
    }

    #[test]
    fn sweep_returns_reports_in_order() {
        let hosts = small_datacenter(4, HostClass::Fast);
        let cfg = SynthConfig {
            span: SimDuration::from_hours(2),
            events_per_hour: 6.0,
            ..SynthConfig::grid5000_week()
        };
        let trace = generate(&cfg, 3);
        let points = vec![
            SweepPoint {
                label: "a".into(),
                config: RunConfig::default(),
            },
            SweepPoint {
                label: "b".into(),
                config: RunConfig::default().with_lambdas(40, 95),
            },
        ];
        let reports = run_sweep(
            &hosts,
            &trace,
            || Box::new(BackfillingPolicy::new()),
            points,
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "a");
        assert_eq!(reports[1].label, "b");
        assert_eq!(reports[0].jobs_total, trace.len() as u64);
    }
}
