//! Adversarial decoding: `Runner::restore` (and the sweep/checkpoint
//! layers above it) must treat snapshot bytes as hostile input. A
//! truncated file (worker killed mid-write before `write_atomic`
//! existed), a bit-flipped byte (disk corruption), or outright garbage
//! must always produce a typed [`PersistError`] — never a panic, an
//! abort, or a pathological allocation. The property is simply that
//! `restore` *returns*: proptest turns any panic into a failure, and
//! the length-bounded readers in `eards-sim::persist` keep allocations
//! proportional to the input size.

use proptest::prelude::*;

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{small_datacenter, RunConfig, Runner};
use eards_model::{HostClass, HostSpec, Policy};
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig, Trace};

fn world() -> (Vec<HostSpec>, Trace) {
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_hours(2),
            ..SynthConfig::grid5000_week()
        },
        7,
    );
    (small_datacenter(4, HostClass::Medium), trace)
}

fn config() -> RunConfig {
    RunConfig {
        seed: 42,
        ..RunConfig::default()
    }
}

fn policy() -> Box<dyn Policy> {
    Box::new(ScoreScheduler::new(ScoreConfig::sb()))
}

/// A mid-flight snapshot to corrupt (computed once; proptest cases
/// mutate copies).
fn baseline_snapshot() -> Vec<u8> {
    let (h, t) = world();
    let mut run = Runner::new(h, t, policy(), config());
    for _ in 0..40 {
        if !run.step_batch() {
            break;
        }
    }
    run.snapshot().unwrap()
}

/// Restoring must return (Ok or Err), not panic. The world is rebuilt
/// per call because `restore` consumes it.
fn restore_must_not_panic(bytes: &[u8]) {
    let (h, t) = world();
    let _ = Runner::restore(h, t, policy(), config(), bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at every possible length yields an error, never a
    /// panic or a half-restored world.
    #[test]
    fn truncated_snapshots_error_cleanly(cut in 0.0f64..1.0) {
        let bytes = baseline_snapshot();
        let cut = (bytes.len() as f64 * cut) as usize;
        if cut < bytes.len() {
            let (h, t) = world();
            prop_assert!(Runner::restore(h, t, policy(), config(), &bytes[..cut]).is_err());
        }
    }

    /// Bit flips anywhere in the payload either restore (a flipped f64
    /// payload is still a valid f64) or fail with a typed error — no
    /// panics, no unbounded allocations.
    #[test]
    fn bit_flipped_snapshots_never_panic(
        flips in proptest::collection::vec((0.0f64..1.0, 0u8..8), 1..16),
    ) {
        let mut bytes = baseline_snapshot();
        let len = bytes.len();
        for (pos, bit) in flips {
            let idx = ((len as f64 * pos) as usize).min(len - 1);
            bytes[idx] ^= 1 << bit;
        }
        restore_must_not_panic(&bytes);
    }

    /// Arbitrary garbage — with and without a valid-looking magic
    /// prefix — is rejected without panicking.
    #[test]
    fn garbage_snapshots_never_panic(mut junk in proptest::collection::vec(any::<u8>(), 0..4096)) {
        restore_must_not_panic(&junk);
        // Same bytes behind the real preamble, so decoding gets past the
        // magic check and chews on the garbage itself.
        let mut prefixed = baseline_snapshot()[..9].to_vec();
        prefixed.append(&mut junk);
        restore_must_not_panic(&prefixed);
    }
}

#[test]
fn empty_and_tiny_inputs_error_cleanly() {
    for bytes in [&[][..], &[0x45][..], &baseline_snapshot()[..3]] {
        let (h, t) = world();
        assert!(Runner::restore(h, t, policy(), config(), bytes).is_err());
    }
}
