//! System-level tests of the overload-control layer: the hard identity
//! gate (an armed-but-unlimited budget is bit-identical to an unarmed
//! run), and runner backpressure (flapping VMs are parked — bounded
//! retry — and released without ever being lost).

use eards_core::{OverloadControl, ScoreConfig, ScoreScheduler};
use eards_datacenter::{render_log, small_datacenter, AuditorMode, RunConfig, Runner};
use eards_model::{FaultPlan, HostClass, Policy};
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig, Trace};

fn world(hosts: u32, hours: u64, trace_seed: u64) -> (Vec<eards_model::HostSpec>, Trace) {
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_hours(hours),
            ..SynthConfig::grid5000_week()
        },
        trace_seed,
    );
    (small_datacenter(hosts, HostClass::Medium), trace)
}

fn chaos_config(sim_seed: u64, intensity: f64) -> RunConfig {
    RunConfig {
        audit: true,
        seed: sim_seed,
        ..RunConfig::default()
    }
    .with_faults(FaultPlan::chaos(intensity))
}

/// The identity gate: arming overload control with an unlimited budget
/// must leave a chaos run bit-identical to an unarmed one — the work
/// meter is purely additive accounting, and an unlimited ladder never
/// leaves L0.
#[test]
fn unlimited_budget_run_is_bit_identical_to_unarmed() {
    let (h, t) = world(5, 2, 17);
    let plain: Box<dyn Policy> = Box::new(ScoreScheduler::new(ScoreConfig::full()));
    let (r0, a0) = Runner::new(h, t, plain, chaos_config(23, 1.5)).run_audited();

    let (h, t) = world(5, 2, 17);
    let armed: Box<dyn Policy> = Box::new(
        ScoreScheduler::new(ScoreConfig::full())
            .with_overload(OverloadControl::with_budget(u64::MAX)),
    );
    let (r1, a1) = Runner::new(h, t, armed, chaos_config(23, 1.5)).run_audited();

    assert_eq!(
        format!("{r0:?}\n{}", render_log(&a0)),
        format!("{r1:?}\n{}", render_log(&a1)),
    );
}

/// Backpressure under sustained flapping: with a retry cap of 0 and an
/// aggressive fault plan, the first failed creation parks its VM. The
/// Strict auditor (deep `Cluster::verify` every batch, plus the runner's
/// parked-VM checks) proves no VM is ever lost, and the run still
/// completes.
#[test]
fn flapping_vms_are_parked_and_never_lost() {
    let (h, t) = world(3, 2, 41);
    let policy: Box<dyn Policy> = Box::new(
        ScoreScheduler::new(ScoreConfig::full()).with_overload(OverloadControl::with_budget(1500)),
    );
    let mut cfg = chaos_config(7, 3.0);
    cfg.auditor = AuditorMode::Strict;
    cfg.degrade = true;
    cfg.park_after = 0;
    let mut runner = Runner::new(h, t, policy, cfg);
    while runner.step_batch() {}
    assert!(
        runner.vms_parked() > 0,
        "chaos(3.0) with park_after=0 must park at least one VM"
    );
    let stats = runner
        .policy()
        .degrade_stats()
        .expect("armed policy reports degrade stats");
    assert!(stats.rounds > 0);
    assert!(
        stats.max_round_work <= 1500 + slack(3, 64),
        "per-round work {} must respect budget + one move's slack",
        stats.max_round_work
    );
    let (report, audit) = runner.finish();
    // Parked VMs surface in the audit log, and their release too when the
    // blacklist cleared before the end of the run.
    let log = render_log(&audit);
    assert!(log.contains("PARKED"), "audit log records parking:\n{log}");
    // The run produced a coherent report (jobs either done or accounted).
    assert!(report.jobs_total > 0);
}

/// Legacy mode (degrade off) never parks, whatever the fault plan does.
#[test]
fn without_degrade_mode_nothing_is_parked() {
    let (h, t) = world(3, 1, 41);
    let policy: Box<dyn Policy> = Box::new(ScoreScheduler::new(ScoreConfig::full()));
    let mut runner = Runner::new(h, t, policy, chaos_config(7, 3.0));
    while runner.step_batch() {}
    assert_eq!(runner.vms_parked(), 0);
}

/// The one-sweep slack bound on budget overshoot: the solver checks the
/// meter between sweeps, so a round can overshoot by at most the initial
/// lazy fill (m·n) plus the first column-best scan (m·n), one argmin (n),
/// one challenge (n) and one column recompute (m).
fn slack(hosts: usize, vms: usize) -> u64 {
    (2 * hosts * vms + 2 * vms + hosts) as u64
}
