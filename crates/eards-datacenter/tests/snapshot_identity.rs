//! Property test for the snapshot subsystem's core guarantee:
//! checkpointing a run at an arbitrary batch boundary and resuming it in a
//! *fresh* process-equivalent world is bit-identical to never having
//! stopped — the full [`RunReport`] (aggregates, power series, per-job
//! outcomes), the audit trail, and the observability event stream all
//! match, across random workloads, fleet sizes, seeds and chaos
//! intensities.
//!
//! The fingerprint goes through `Debug` formatting, which round-trips
//! `f64` exactly, so even a 1-ulp divergence from a mis-restored RNG or a
//! serialized-when-it-should-rebuild cache would fail the property.

use proptest::prelude::*;

use eards_core::{OverloadControl, ScoreConfig, ScoreScheduler};
use eards_datacenter::{render_log, small_datacenter, AuditEvent, AuditorMode, RunConfig, Runner};
use eards_metrics::RunReport;
use eards_model::{FaultPlan, HostClass, HostSpec, Policy};
use eards_obs::Obs;
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig, Trace};

fn fingerprint(report: &RunReport, audit: &[AuditEvent]) -> String {
    format!("{report:?}\n{}", render_log(audit))
}

fn world(hosts: u32, hours: u64, trace_seed: u64) -> (Vec<HostSpec>, Trace) {
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_hours(hours),
            ..SynthConfig::grid5000_week()
        },
        trace_seed,
    );
    (small_datacenter(hosts, HostClass::Medium), trace)
}

fn config(sim_seed: u64, chaos: f64, obs: &Obs) -> RunConfig {
    let mut cfg = RunConfig {
        audit: true,
        record_power_series: true,
        seed: sim_seed,
        ..RunConfig::default()
    }
    .with_obs(obs.clone());
    if chaos > 0.0 {
        cfg = cfg.with_faults(FaultPlan::chaos(chaos));
    }
    cfg
}

fn policy(obs: &Obs) -> Box<dyn Policy> {
    Box::new(ScoreScheduler::with_obs(ScoreConfig::full(), obs.clone()))
}

/// An overload-controlled world: budgeted anytime solver + degradation
/// ladder on the policy, bounded retry/parking backpressure on the
/// runner, Strict auditing (deep `Cluster::verify` after every batch,
/// panic on the first violation) under heavy chaos.
fn degraded_config(sim_seed: u64, obs: &Obs) -> RunConfig {
    let mut cfg = config(sim_seed, 2.0, obs);
    cfg.auditor = AuditorMode::Strict;
    cfg.degrade = true;
    cfg.park_after = 3;
    cfg
}

fn degraded_policy(obs: &Obs, budget: u64) -> Box<dyn Policy> {
    Box::new(
        ScoreScheduler::with_obs(ScoreConfig::full(), obs.clone())
            .with_overload(OverloadControl::with_budget(budget)),
    )
}

/// Extracts the `t_ms` field every exported JSONL line starts with.
fn t_ms(line: &str) -> u64 {
    let rest = line
        .strip_prefix("{\"t_ms\":")
        .expect("jsonl line starts with t_ms");
    rest[..rest.find(',').expect("t_ms is not the only field")]
        .parse()
        .expect("t_ms is an integer")
}

proptest! {
    // Each case is two-plus full simulation runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint → restore → run == uninterrupted run, bit for bit.
    #[test]
    fn snapshot_resume_is_bit_identical(
        hosts in 3u32..8,
        hours in 1u64..4,
        trace_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        chaos in prop_oneof![Just(0.0), Just(1.0), Just(2.0)],
        ckpt_batches in 1usize..400,
    ) {
        // The uninterrupted reference run.
        let obs_base = Obs::enabled(1 << 16);
        let (h, t) = world(hosts, hours, trace_seed);
        let (r0, a0) = Runner::new(
            h,
            t,
            policy(&obs_base),
            config(sim_seed, chaos, &obs_base),
        )
        .run_audited();

        // The interrupted run: advance a random number of batches, then
        // checkpoint and abandon the process state.
        let obs_cut = Obs::enabled(1 << 16);
        let (h, t) = world(hosts, hours, trace_seed);
        let mut cut = Runner::new(h, t, policy(&obs_cut), config(sim_seed, chaos, &obs_cut));
        for _ in 0..ckpt_batches {
            if !cut.step_batch() {
                break;
            }
        }
        let ckpt_ms = cut.now().as_millis();
        let bytes = cut.snapshot().unwrap();
        drop(cut);

        // Resume from bytes alone in a fresh world and drive it to the end.
        let obs_res = Obs::enabled(1 << 16);
        let (h, t) = world(hosts, hours, trace_seed);
        let mut resumed = Runner::restore(
            h,
            t,
            policy(&obs_res),
            config(sim_seed, chaos, &obs_res),
            &bytes,
        )
        .expect("snapshot restores against its own world");
        while resumed.step_batch() {}
        let (r1, a1) = resumed.finish();

        prop_assert_eq!(fingerprint(&r0, &a0), fingerprint(&r1, &a1));

        // The resumed run re-emits exactly the post-checkpoint tail of the
        // reference observability stream (its pre-checkpoint events live
        // in the abandoned run's sink).
        let full = obs_base.export_jsonl();
        let tail: Vec<&str> = full.lines().filter(|l| t_ms(l) > ckpt_ms).collect();
        let resumed_full = obs_res.export_jsonl();
        let resumed_lines: Vec<&str> = resumed_full.lines().collect();
        prop_assert_eq!(resumed_lines, tail);
    }

    /// The overload-control variant of the property, across random
    /// workloads, seeds and budgets: Strict auditing proves every
    /// budget-exhausted round still yields placements passing
    /// `Cluster::verify` (and that backpressure never loses a VM), and
    /// the fingerprint + `round_degraded` tail equality prove a mid-run
    /// snapshot/restore replays the identical `DegradeLevel` sequence —
    /// the ladder driver state is part of the policy's snapshot block.
    #[test]
    fn degraded_snapshot_resume_is_bit_identical(
        hosts in 3u32..7,
        hours in 1u64..3,
        trace_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        budget in prop_oneof![Just(300u64), Just(2_000), Just(20_000)],
        ckpt_batches in 1usize..300,
    ) {
        let obs_base = Obs::enabled(1 << 16);
        let (h, t) = world(hosts, hours, trace_seed);
        let (r0, a0) = Runner::new(
            h,
            t,
            degraded_policy(&obs_base, budget),
            degraded_config(sim_seed, &obs_base),
        )
        .run_audited();

        let obs_cut = Obs::enabled(1 << 16);
        let (h, t) = world(hosts, hours, trace_seed);
        let mut cut = Runner::new(
            h,
            t,
            degraded_policy(&obs_cut, budget),
            degraded_config(sim_seed, &obs_cut),
        );
        for _ in 0..ckpt_batches {
            if !cut.step_batch() {
                break;
            }
        }
        let ckpt_ms = cut.now().as_millis();
        let bytes = cut.snapshot().unwrap();
        drop(cut);

        let obs_res = Obs::enabled(1 << 16);
        let (h, t) = world(hosts, hours, trace_seed);
        let mut resumed = Runner::restore(
            h,
            t,
            degraded_policy(&obs_res, budget),
            degraded_config(sim_seed, &obs_res),
            &bytes,
        )
        .expect("snapshot restores against its own world");
        while resumed.step_batch() {}
        let (r1, a1) = resumed.finish();

        prop_assert_eq!(fingerprint(&r0, &a0), fingerprint(&r1, &a1));

        // The resumed run replays the post-checkpoint event tail exactly,
        // including every `round_degraded` record: same rungs, same work
        // spend, same exhaustion flags.
        let full = obs_base.export_jsonl();
        let tail: Vec<&str> = full.lines().filter(|l| t_ms(l) > ckpt_ms).collect();
        let resumed_full = obs_res.export_jsonl();
        let resumed_lines: Vec<&str> = resumed_full.lines().collect();
        prop_assert_eq!(resumed_lines, tail);
    }
}

#[test]
fn restore_rejects_a_mismatched_world() {
    let (h, t) = world(4, 1, 7);
    let obs = Obs::disabled();
    let mut run = Runner::new(h, t, policy(&obs), config(42, 0.0, &obs));
    for _ in 0..5 {
        assert!(run.step_batch());
    }
    let bytes = run.snapshot().unwrap();

    // Runner carries trait objects, so no Debug: unwrap errors by hand.
    fn expect_err(r: Result<Runner, eards_sim::PersistError>) -> eards_sim::PersistError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("restore onto a mismatched world must fail"),
        }
    }

    // Wrong fleet size.
    let (_, t) = world(4, 1, 7);
    let err = expect_err(Runner::restore(
        small_datacenter(5, HostClass::Medium),
        t,
        policy(&obs),
        config(42, 0.0, &obs),
        &bytes,
    ));
    assert!(format!("{err}").contains("hosts"), "{err}");

    // Wrong seed.
    let (h, t) = world(4, 1, 7);
    let err = expect_err(Runner::restore(
        h,
        t,
        policy(&obs),
        config(43, 0.0, &obs),
        &bytes,
    ));
    assert!(format!("{err}").contains("seed"), "{err}");

    // Truncation anywhere is an error, never a mangled world.
    let (h, t) = world(4, 1, 7);
    assert!(Runner::restore(
        h,
        t,
        policy(&obs),
        config(42, 0.0, &obs),
        &bytes[..bytes.len() / 2]
    )
    .is_err());
}

#[test]
fn snapshot_after_completion_resumes_to_the_same_report() {
    let (h, t) = world(3, 1, 11);
    let obs = Obs::disabled();
    let mut run = Runner::new(h, t, policy(&obs), config(9, 0.0, &obs));
    while run.step_batch() {}
    let bytes = run.snapshot().unwrap();
    let (r0, a0) = run.finish();

    let (h, t) = world(3, 1, 11);
    let mut resumed =
        Runner::restore(h, t, policy(&obs), config(9, 0.0, &obs), &bytes).expect("restores");
    // A completed run must not drain leftover periodic timers.
    assert!(!resumed.step_batch());
    let (r1, a1) = resumed.finish();
    assert_eq!(fingerprint(&r0, &a0), fingerprint(&r1, &a1));
}
