//! System tests of the sharded hierarchical solver under fault injection:
//! chaos runs with `--shards` armed must keep every auditor invariant —
//! in particular the cross-shard light-conservation check, which catches
//! a balancer that teleports, duplicates, or drops a VM while re-homing
//! it across shard boundaries.

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{small_datacenter, RunConfig, Runner};
use eards_model::{FaultPlan, HostClass, Policy, ShardMap};
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig, Trace};

fn world(hosts: u32, hours: u64, trace_seed: u64) -> (Vec<eards_model::HostSpec>, Trace) {
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_hours(hours),
            ..SynthConfig::grid5000_week()
        },
        trace_seed,
    );
    (small_datacenter(hosts, HostClass::Medium), trace)
}

/// chaos(2.0) with the sharded solver armed: rack outages, crashes,
/// aborted migrations and the cross-shard balancer all running at once,
/// and the auditor's per-shard resident sums still reconcile with the
/// global placed count every light pass. Three trace/fault seeds so the
/// property is not an artifact of one schedule.
#[test]
fn chaos_runs_with_shards_keep_cross_shard_conservation() {
    for seed in [11u64, 29, 47] {
        let (h, t) = world(24, 2, seed);
        let num_hosts = h.len();
        let cfg = RunConfig {
            audit: true,
            seed,
            ..RunConfig::default()
        }
        .with_faults(FaultPlan::chaos(2.0))
        .with_shards(3);
        let spec = cfg.shard_spec().expect("--shards 3 arms the spec");
        let map = ShardMap::build(num_hosts, spec.rack_size, spec.count);
        assert!(
            map.num_shards() >= 2,
            "the case must realize a real partition, got {} shard(s)",
            map.num_shards()
        );
        let policy: Box<dyn Policy> =
            Box::new(ScoreScheduler::new(ScoreConfig::full()).with_shards(spec));
        let (report, _audit) = Runner::new(h, t, policy, cfg).run_audited();
        assert_eq!(
            report.faults.invariant_violations, 0,
            "seed {seed}: sharded chaos run broke an auditor invariant"
        );
        assert!(report.jobs_total > 0, "seed {seed}: run must do real work");
        assert!(
            report.creations > 0,
            "seed {seed}: sharded solver must place VMs"
        );
    }
}
