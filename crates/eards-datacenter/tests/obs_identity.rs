//! Property test for the observability layer's core guarantee: attaching
//! an enabled [`Obs`] handle to a run changes *nothing* about the
//! simulation — the full [`RunReport`] (aggregates, power series, per-job
//! outcomes) and the audit trail are bit-identical to an untraced run,
//! across random workloads, fleet sizes, seeds and fault intensities.
//!
//! The fingerprint goes through `Debug` formatting, which round-trips
//! `f64` exactly, so even a 1-ulp perturbation from a misplaced hook
//! would fail the property.

use proptest::prelude::*;

use eards_core::{ScoreConfig, ScoreScheduler};
use eards_datacenter::{render_log, small_datacenter, AuditEvent, RunConfig, Runner};
use eards_metrics::RunReport;
use eards_model::{FaultPlan, HostClass};
use eards_obs::Obs;
use eards_sim::SimDuration;
use eards_workload::{generate, SynthConfig};

fn fingerprint(report: &RunReport, audit: &[AuditEvent]) -> String {
    format!("{report:?}\n{}", render_log(audit))
}

fn run_with(
    obs: &Obs,
    hosts: u32,
    hours: u64,
    trace_seed: u64,
    sim_seed: u64,
    chaos: f64,
) -> (RunReport, Vec<AuditEvent>) {
    let trace = generate(
        &SynthConfig {
            span: SimDuration::from_hours(hours),
            ..SynthConfig::grid5000_week()
        },
        trace_seed,
    );
    let mut cfg = RunConfig {
        audit: true,
        record_power_series: true,
        seed: sim_seed,
        ..RunConfig::default()
    }
    .with_obs(obs.clone());
    if chaos > 0.0 {
        cfg = cfg.with_faults(FaultPlan::chaos(chaos));
    }
    let policy = Box::new(ScoreScheduler::with_obs(ScoreConfig::full(), obs.clone()));
    Runner::new(
        small_datacenter(hosts, HostClass::Medium),
        trace,
        policy,
        cfg,
    )
    .run_audited()
}

proptest! {
    // Each case is two full simulation runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing on vs off: bit-identical output, and the preallocated ring
    /// never grows past its construction-time capacity.
    #[test]
    fn traced_run_is_bit_identical(
        hosts in 3u32..10,
        hours in 1u64..5,
        trace_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        chaos in prop_oneof![Just(0.0), Just(1.0), Just(2.0)],
    ) {
        let (r0, a0) = run_with(&Obs::disabled(), hosts, hours, trace_seed, sim_seed, chaos);
        let obs = Obs::enabled(512); // small on purpose: overwrite path runs too
        let (r1, a1) = run_with(&obs, hosts, hours, trace_seed, sim_seed, chaos);

        prop_assert_eq!(fingerprint(&r0, &a0), fingerprint(&r1, &a1));
        prop_assert!(obs.events_recorded() > 0, "the run produced no events");
        let (len, allocated, dropped) = obs.ring_stats().unwrap();
        prop_assert!(len <= 512, "ring holds at most its capacity");
        prop_assert_eq!(allocated, 512, "ring never reallocated");
        prop_assert_eq!(
            obs.events_recorded(),
            len as u64 + dropped,
            "every recorded event is either retained or counted as dropped"
        );
    }
}
