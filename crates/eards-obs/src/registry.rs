//! Named counters and fixed-bucket histograms.
//!
//! The registry is deliberately minimal: metrics are registered by
//! `&'static str` name (find-or-create, so call sites can re-register
//! idempotently), ids are plain indices, and histograms have their bucket
//! bounds fixed at registration — observation is a linear scan over a
//! handful of bounds, no allocation.

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

impl CounterId {
    /// The id handed out by a disabled [`crate::Obs`]; operations on it
    /// are no-ops.
    pub const INERT: CounterId = CounterId(usize::MAX);
}

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

impl HistId {
    /// The id handed out by a disabled [`crate::Obs`].
    pub const INERT: HistId = HistId(usize::MAX);
}

/// A fixed-bucket histogram: counts per `(…, bound]` bucket plus an
/// implicit overflow bucket, with total count and sum for mean queries.
#[derive(Debug, Clone)]
pub struct Histogram {
    name: &'static str,
    /// Ascending upper bucket bounds.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(name: &'static str, bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            name,
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Histogram name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The upper bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (one per bound, plus the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// The metrics store of one recorder.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    hists: Vec<Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Finds or creates the counter `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Adds `by` to a counter (inert ids are ignored).
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if let Some(c) = self.counters.get_mut(id.0) {
            c.1 += by;
        }
    }

    /// Finds or creates the histogram `name`. Bounds are fixed by the
    /// first registration; later calls with the same name reuse it.
    pub fn histogram(&mut self, name: &'static str, bounds: &[f64]) -> HistId {
        if let Some(i) = self.hists.iter().position(|h| h.name == name) {
            return HistId(i);
        }
        self.hists.push(Histogram::new(name, bounds));
        HistId(self.hists.len() - 1)
    }

    /// Records one observation (inert ids are ignored).
    pub fn observe(&mut self, id: HistId, value: f64) {
        if let Some(h) = self.hists.get_mut(id.0) {
            h.observe(value);
        }
    }

    /// All counters as `(name, value)`, registration order.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| (n.to_string(), *v))
            .collect()
    }

    /// All counters, registration order.
    pub(crate) fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All histograms, registration order.
    pub fn histograms(&self) -> &[Histogram] {
        &self.hists
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_find_or_create() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        assert_ne!(a, b);
        assert_eq!(r.counter("a"), a);
        r.inc(a, 2);
        r.inc(a, 3);
        r.inc(CounterId::INERT, 100);
        assert_eq!(
            r.counters_snapshot(),
            vec![("a".to_string(), 5), ("b".to_string(), 0)]
        );
    }

    #[test]
    fn histogram_bucketing() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 99.0, 1000.0] {
            r.observe(h, v);
        }
        let hist = &r.histograms()[0];
        // (…,1], (1,10], (10,100], overflow
        assert_eq!(hist.counts(), &[2, 1, 1, 1]);
        assert_eq!(hist.count(), 5);
        assert!((hist.sum() - 1105.5).abs() < 1e-9);
        r.observe(HistId::INERT, 1.0);
        assert_eq!(r.histograms()[0].count(), 5);
    }
}
