//! The typed event taxonomy of the simulation trace.
//!
//! Events are small `Copy` values built from ids and numbers — recording
//! one is a struct copy into the preallocated ring, no formatting and no
//! allocation. Formatting happens only at export time.

/// What kind of fault transition an [`ObsEvent::Fault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A host crashed while `On`.
    Crash,
    /// A boot attempt failed.
    BootFailure,
    /// An in-flight VM creation aborted.
    CreationAbort,
    /// An in-flight live migration aborted.
    MigrationAbort,
    /// A transient slowdown episode started.
    SlowdownStart,
    /// A slowdown episode ended.
    SlowdownEnd,
    /// A correlated rack outage struck.
    RackOutage,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::BootFailure => "boot_failure",
            FaultKind::CreationAbort => "creation_abort",
            FaultKind::MigrationAbort => "migration_abort",
            FaultKind::SlowdownStart => "slowdown_start",
            FaultKind::SlowdownEnd => "slowdown_end",
            FaultKind::RackOutage => "rack_outage",
        }
    }
}

/// What kind of recovery an [`ObsEvent::Recovery`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A failed host became bootable again.
    HostRepaired,
    /// A displaced/failed VM finally came up somewhere.
    VmRecovered,
}

impl RecoveryKind {
    fn as_str(self) -> &'static str {
        match self {
            RecoveryKind::HostRepaired => "host_repaired",
            RecoveryKind::VmRecovered => "vm_recovered",
        }
    }
}

/// Power-state transition recorded by an [`ObsEvent::PowerFlip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerFlipKind {
    /// Boot initiated.
    Booting,
    /// Boot completed; host is up.
    On,
    /// Graceful shutdown initiated.
    ShuttingDown,
    /// Shutdown completed; host is off.
    Off,
}

impl PowerFlipKind {
    fn as_str(self) -> &'static str {
        match self {
            PowerFlipKind::Booting => "booting",
            PowerFlipKind::On => "on",
            PowerFlipKind::ShuttingDown => "shutting_down",
            PowerFlipKind::Off => "off",
        }
    }
}

/// One typed simulation event.
///
/// Host and VM identities are raw ids (`u32`/`u64`) rather than the model
/// crate's newtypes so this crate sits below `eards-model` in the
/// dependency graph and every layer can record into it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent {
    /// One scheduling round ran.
    ScheduleRound {
        /// Why the round ran (`ScheduleReason` as a static string).
        reason: &'static str,
        /// Actions the policy emitted.
        actions: u32,
        /// Queue length entering the round.
        queued: u32,
    },
    /// Per-penalty attribution of one chosen move's score (§III-A of the
    /// paper: the score is a sum of penalties; this records each term).
    ScoreAttribution {
        /// The VM being placed or migrated.
        vm: u64,
        /// Destination host.
        host: u32,
        /// `true` for a migration, `false` for a creation.
        migration: bool,
        /// `P_virt + P_conc` (the static move-in penalties).
        movein: f64,
        /// `P_pwr` (power-state penalty/credit).
        pwr: f64,
        /// `P_SLA` projection penalty.
        sla: f64,
        /// `P_fault` reliability penalty.
        fault: f64,
        /// The full score (sum of all terms).
        total: f64,
    },
    /// A VM creation completed.
    Creation {
        /// The created VM.
        vm: u64,
        /// The host it runs on.
        host: u32,
    },
    /// A live migration completed.
    Migration {
        /// The migrated VM.
        vm: u64,
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
    },
    /// A fault transition.
    Fault {
        /// What failed.
        kind: FaultKind,
        /// The host involved.
        host: u32,
    },
    /// A recovery transition.
    Recovery {
        /// What recovered.
        kind: RecoveryKind,
        /// The host (or the recovered VM's id for `VmRecovered`).
        id: u64,
    },
    /// A host power-state flip.
    PowerFlip {
        /// The host flipping state.
        host: u32,
        /// The state it entered.
        state: PowerFlipKind,
    },
    /// A scheduling round ran degraded: at a ladder rung above L0, or
    /// with its solver work budget exhausted mid-climb (see the
    /// overload-control layer, DESIGN.md §14).
    RoundDegraded {
        /// The degradation rung's stable label (`l0_full` … `l3_defer`).
        level: &'static str,
        /// Deterministic solver work units spent this round.
        work_spent: u64,
        /// The configured per-round work budget.
        budget: u64,
        /// Whether the budget ran out mid-climb (best-so-far placement).
        exhausted: bool,
    },
    /// A flapping VM was parked by runner backpressure: its retry
    /// attempts passed the cap, so it leaves the backoff ladder and
    /// waits (still queued) until the flapping blacklist clears.
    VmParked {
        /// The parked VM.
        vm: u64,
        /// Retry attempts when parked.
        attempts: u32,
    },
}

impl ObsEvent {
    /// Stable event-kind tag used by the JSONL/Chrome exports.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::ScheduleRound { .. } => "schedule_round",
            ObsEvent::ScoreAttribution { .. } => "score_attribution",
            ObsEvent::Creation { .. } => "creation",
            ObsEvent::Migration { .. } => "migration",
            ObsEvent::Fault { .. } => "fault",
            ObsEvent::Recovery { .. } => "recovery",
            ObsEvent::PowerFlip { .. } => "power_flip",
            ObsEvent::RoundDegraded { .. } => "round_degraded",
            ObsEvent::VmParked { .. } => "vm_parked",
        }
    }

    /// Appends the event's fields as JSON object members (no braces, no
    /// leading comma) to `out`.
    pub(crate) fn append_fields(&self, out: &mut String) {
        use crate::export::push_f64;
        use std::fmt::Write;
        match *self {
            ObsEvent::ScheduleRound {
                reason,
                actions,
                queued,
            } => {
                let _ = write!(
                    out,
                    "\"reason\":\"{reason}\",\"actions\":{actions},\"queued\":{queued}"
                );
            }
            ObsEvent::ScoreAttribution {
                vm,
                host,
                migration,
                movein,
                pwr,
                sla,
                fault,
                total,
            } => {
                let _ = write!(out, "\"vm\":{vm},\"host\":{host},\"migration\":{migration}");
                out.push_str(",\"movein\":");
                push_f64(out, movein);
                out.push_str(",\"pwr\":");
                push_f64(out, pwr);
                out.push_str(",\"sla\":");
                push_f64(out, sla);
                out.push_str(",\"fault\":");
                push_f64(out, fault);
                out.push_str(",\"total\":");
                push_f64(out, total);
            }
            ObsEvent::Creation { vm, host } => {
                let _ = write!(out, "\"vm\":{vm},\"host\":{host}");
            }
            ObsEvent::Migration { vm, from, to } => {
                let _ = write!(out, "\"vm\":{vm},\"from\":{from},\"to\":{to}");
            }
            ObsEvent::Fault { kind, host } => {
                let _ = write!(out, "\"fault\":\"{}\",\"host\":{host}", kind.as_str());
            }
            ObsEvent::Recovery { kind, id } => {
                let _ = write!(out, "\"recovery\":\"{}\",\"id\":{id}", kind.as_str());
            }
            ObsEvent::PowerFlip { host, state } => {
                let _ = write!(out, "\"host\":{host},\"state\":\"{}\"", state.as_str());
            }
            ObsEvent::RoundDegraded {
                level,
                work_spent,
                budget,
                exhausted,
            } => {
                let _ = write!(
                    out,
                    "\"level\":\"{level}\",\"work_spent\":{work_spent},\"budget\":{budget},\"exhausted\":{exhausted}"
                );
            }
            ObsEvent::VmParked { vm, attempts } => {
                let _ = write!(out, "\"vm\":{vm},\"attempts\":{attempts}");
            }
        }
    }
}
