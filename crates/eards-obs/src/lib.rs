//! # eards-obs — zero-cost-when-disabled observability
//!
//! Tracing, metrics, and profiling for the EARDS stack. The simulation
//! layers (driver, solver, fault engine) call into an [`Obs`] handle at
//! their interesting moments; when the handle is disabled — the default —
//! every call is a branch on a `None` and returns immediately, so an
//! instrumented run is bit-identical to an uninstrumented one. When
//! enabled, the handle owns:
//!
//! * an [`EventRing`]-backed recorder of typed [`ObsEvent`]s with
//!   [`SimTime`] stamps (schedule rounds, per-penalty score attributions,
//!   migrations, fault/recovery transitions, power-state flips) —
//!   preallocated at construction, never allocating afterwards;
//! * a [`MetricsRegistry`] of named counters and fixed-bucket histograms
//!   (solver sweep latency, dirty-row rescore counts, retry backoff
//!   depths, queue lengths);
//! * span-style wall-clock profiling ([`Obs::span`]) for `solve`,
//!   `schedule_round`, `adjust_power`, and fault handling.
//!
//! Exports: a JSONL event log ([`Obs::export_jsonl`]), the Chrome
//! `trace_event` format ([`Obs::export_chrome`], load via
//! `chrome://tracing` or <https://ui.perfetto.dev>), and a metrics JSON
//! dump ([`Obs::export_metrics`]). The [`validate`] module holds the
//! schema checks CI runs against emitted traces.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Instant;

use eards_sim::SimTime;
use parking_lot::Mutex;

mod event;
mod export;
mod registry;
mod ring;
pub mod rollup;
pub mod validate;

pub use event::{FaultKind, ObsEvent, PowerFlipKind, RecoveryKind};
pub use registry::{CounterId, HistId, Histogram, MetricsRegistry};
pub use ring::EventRing;

/// One completed profiling span: a named wall-clock interval annotated
/// with the simulated instant it served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Span name (e.g. `"solve"`, `"schedule_round"`).
    pub name: &'static str,
    /// Simulated time the span worked on, in ms.
    pub sim_ms: u64,
    /// Wall-clock start, µs since the recorder's construction.
    pub start_us: u64,
    /// Wall-clock duration, µs.
    pub dur_us: u64,
}

/// The recorder behind an enabled [`Obs`] handle.
struct Inner {
    /// Wall-clock anchor for span timestamps.
    epoch: Instant,
    events: EventRing<(SimTime, ObsEvent)>,
    spans: EventRing<ProfileSpan>,
    registry: MetricsRegistry,
}

/// A cheaply-cloneable observability handle.
///
/// Disabled (the default) it is a `None` — every operation is a branch
/// and a return, no locks, no allocation, no clock reads. Enabled, all
/// clones share one recorder behind a mutex (the simulator is
/// single-threaded per run; the mutex makes the handle shareable across
/// the policy/runner split without threading lifetimes through every
/// layer).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Obs {
    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled handle whose event and span rings each hold `capacity`
    /// entries (oldest entries are overwritten beyond that; the drop
    /// count is kept). All memory is allocated here, up front.
    // Wall-clock epoch for span timing: the one place real time enters.
    #[allow(clippy::disallowed_methods)]
    pub fn enabled(capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(Mutex::new(Inner {
                epoch: Instant::now(),
                events: EventRing::new(capacity),
                spans: EventRing::new(capacity),
                registry: MetricsRegistry::new(),
            }))),
        }
    }

    /// True if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a typed event at simulated time `at`.
    pub fn record(&self, at: SimTime, event: ObsEvent) {
        if let Some(inner) = &self.inner {
            inner.lock().events.push((at, event));
        }
    }

    /// Registers (or looks up) a counter by name.
    ///
    /// On a disabled handle this returns an inert id; [`Obs::inc`] on it
    /// is a no-op, so call sites can register unconditionally.
    pub fn counter(&self, name: &'static str) -> CounterId {
        match &self.inner {
            Some(inner) => inner.lock().registry.counter(name),
            None => CounterId::INERT,
        }
    }

    /// Adds `by` to a counter.
    pub fn inc(&self, id: CounterId, by: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().registry.inc(id, by);
        }
    }

    /// Registers (or looks up) a fixed-bucket histogram. `bounds` are the
    /// ascending upper bucket bounds; an overflow bucket is implicit.
    pub fn histogram(&self, name: &'static str, bounds: &[f64]) -> HistId {
        match &self.inner {
            Some(inner) => inner.lock().registry.histogram(name, bounds),
            None => HistId::INERT,
        }
    }

    /// Records one observation into a histogram.
    pub fn observe(&self, id: HistId, value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().registry.observe(id, value);
        }
    }

    /// Opens a profiling span; it records itself when dropped. On a
    /// disabled handle the guard is inert and the clock is never read.
    #[allow(clippy::disallowed_methods)] // span durations are wall-clock by design
    pub fn span(&self, name: &'static str, sim: SimTime) -> SpanGuard {
        SpanGuard {
            inner: self.inner.clone(),
            name,
            sim,
            started: self.inner.as_ref().map(|_| Instant::now()),
            hist: None,
        }
    }

    /// Total events offered to the recorder (retained + overwritten).
    pub fn events_recorded(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                let g = inner.lock();
                g.events.len() as u64 + g.events.dropped()
            }
            None => 0,
        }
    }

    /// `(len, allocated_capacity, dropped)` of the event ring, or `None`
    /// when disabled. The allocated capacity is the ring's *actual* Vec
    /// capacity, exposed so tests can prove it never grows.
    pub fn ring_stats(&self) -> Option<(usize, usize, u64)> {
        self.inner.as_ref().map(|inner| {
            let g = inner.lock();
            (g.events.len(), g.events.allocated(), g.events.dropped())
        })
    }

    /// Snapshot of all counters as `(name, value)`, registration order.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        match &self.inner {
            Some(inner) => inner.lock().registry.counters_snapshot(),
            None => Vec::new(),
        }
    }

    /// Number of completed profiling spans retained.
    pub fn spans_recorded(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                let g = inner.lock();
                g.spans.len() as u64 + g.spans.dropped()
            }
            None => 0,
        }
    }

    /// The event log as JSONL: one JSON object per line, oldest first.
    /// Empty string when disabled.
    pub fn export_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => export::jsonl(&inner.lock()),
            None => String::new(),
        }
    }

    /// The event log and profiling spans in Chrome `trace_event` format.
    /// Simulated-time events are instants on pid 1 (µs = sim ms × 1000);
    /// wall-clock spans are complete events on pid 2. Empty JSON document
    /// when disabled.
    pub fn export_chrome(&self) -> String {
        match &self.inner {
            Some(inner) => export::chrome(&inner.lock()),
            None => String::from("{\"traceEvents\":[]}\n"),
        }
    }

    /// Counters and histograms as a JSON document.
    pub fn export_metrics(&self) -> String {
        match &self.inner {
            Some(inner) => export::metrics(&inner.lock().registry),
            None => String::from("{\"counters\":{},\"histograms\":{}}\n"),
        }
    }
}

/// RAII guard returned by [`Obs::span`]; records the span on drop.
///
/// Optionally feeds the span's duration (µs) into a histogram via
/// [`SpanGuard::with_hist`].
pub struct SpanGuard {
    inner: Option<Arc<Mutex<Inner>>>,
    name: &'static str,
    sim: SimTime,
    started: Option<Instant>,
    hist: Option<HistId>,
}

impl SpanGuard {
    /// Also record the span's duration into histogram `id` on drop.
    pub fn with_hist(mut self, id: HistId) -> Self {
        self.hist = Some(id);
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(inner), Some(started)) = (self.inner.take(), self.started) {
            let dur_us = started.elapsed().as_micros() as u64;
            let mut g = inner.lock();
            let start_us = started.duration_since(g.epoch).as_micros() as u64;
            g.spans.push(ProfileSpan {
                name: self.name,
                sim_ms: self.sim.as_millis(),
                start_us,
                dur_us,
            });
            if let Some(h) = self.hist {
                g.registry.observe(h, dur_us as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.record(
            t(1),
            ObsEvent::ScheduleRound {
                reason: "VmArrived",
                actions: 1,
                queued: 0,
            },
        );
        let c = obs.counter("x");
        obs.inc(c, 5);
        let h = obs.histogram("y", &[1.0, 2.0]);
        obs.observe(h, 1.5);
        drop(obs.span("solve", t(1)));
        assert_eq!(obs.events_recorded(), 0);
        assert_eq!(obs.spans_recorded(), 0);
        assert_eq!(obs.export_jsonl(), "");
        assert!(obs.counters_snapshot().is_empty());
        assert!(obs.ring_stats().is_none());
    }

    #[test]
    fn clones_share_one_recorder() {
        let obs = Obs::enabled(16);
        let other = obs.clone();
        other.record(t(3), ObsEvent::Creation { vm: 1, host: 0 });
        assert_eq!(obs.events_recorded(), 1);
        let c = obs.counter("n");
        let c2 = other.counter("n");
        assert_eq!(c, c2, "same name resolves to the same counter");
        obs.inc(c, 2);
        other.inc(c2, 3);
        assert_eq!(obs.counters_snapshot(), vec![("n".to_string(), 5)]);
    }

    #[test]
    fn spans_record_duration_and_histogram() {
        let obs = Obs::enabled(16);
        let h = obs.histogram("lat_us", &[10.0, 1_000_000.0]);
        {
            let _g = obs.span("solve", t(42)).with_hist(h);
            std::hint::black_box(0u64);
        }
        assert_eq!(obs.spans_recorded(), 1);
        let chrome = obs.export_chrome();
        assert!(chrome.contains("\"ph\":\"X\""), "complete event present");
        assert!(chrome.contains("\"solve\""));
        let metrics = obs.export_metrics();
        assert!(metrics.contains("\"lat_us\""));
    }

    #[test]
    fn ring_never_allocates_after_construction() {
        let obs = Obs::enabled(64);
        let before = obs.ring_stats().unwrap().1;
        for i in 0..1000u64 {
            obs.record(
                t(i),
                ObsEvent::Creation {
                    vm: i,
                    host: (i % 4) as u32,
                },
            );
        }
        let (len, after, dropped) = obs.ring_stats().unwrap();
        assert_eq!(before, after, "ring capacity must not grow");
        assert_eq!(len, 64);
        assert_eq!(dropped, 1000 - 64);
        assert_eq!(obs.events_recorded(), 1000);
    }
}
