//! Cross-run metrics rollup.
//!
//! A sweep farm produces one metrics snapshot per shard (the
//! `export_metrics` schema: counters + histograms). This module merges
//! them into a single fleet-wide snapshot: counters are summed,
//! histograms are merged bucket-wise (their bounds must agree — they
//! come from the same binary, so a mismatch means the inputs belong to
//! different builds and the merge refuses rather than fabricating a
//! distribution). Output keys are sorted, so the merged snapshot is
//! deterministic regardless of input order, and the result round-trips
//! [`crate::validate::validate_metrics`].

use std::collections::BTreeMap;

use crate::export::push_f64;
use crate::validate::{parse, Json};

struct Hist {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

fn get_u64(v: &Json) -> Option<u64> {
    v.as_f64().map(|n| n as u64)
}

fn parse_hist(name: &str, v: &Json) -> Result<Hist, String> {
    let bounds = v
        .get("bounds")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("histogram {name:?}: missing bounds"))?
        .iter()
        .map(|b| {
            b.as_f64()
                .ok_or_else(|| format!("histogram {name:?}: non-numeric bound"))
        })
        .collect::<Result<Vec<f64>, String>>()?;
    let counts = v
        .get("counts")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("histogram {name:?}: missing counts"))?
        .iter()
        .map(|c| get_u64(c).ok_or_else(|| format!("histogram {name:?}: non-numeric count")))
        .collect::<Result<Vec<u64>, String>>()?;
    let count = v
        .get("count")
        .and_then(get_u64)
        .ok_or_else(|| format!("histogram {name:?}: missing count"))?;
    let sum = v
        .get("sum")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("histogram {name:?}: missing sum"))?;
    Ok(Hist {
        bounds,
        counts,
        count,
        sum,
    })
}

/// Merges per-shard metrics snapshots (as produced by
/// `Obs::export_metrics`) into one. `inputs` pairs a label for error
/// messages (e.g. the shard key) with the snapshot text.
pub fn merge_metrics(inputs: &[(String, String)]) -> Result<String, String> {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut hists: BTreeMap<String, Hist> = BTreeMap::new();
    for (label, text) in inputs {
        let root = parse(text).map_err(|e| format!("{label}: {e}"))?;
        let cs = root
            .get("counters")
            .ok_or_else(|| format!("{label}: missing counters object"))?;
        if let Json::Obj(members) = cs {
            for (name, v) in members {
                let v =
                    get_u64(v).ok_or_else(|| format!("{label}: counter {name:?} not a number"))?;
                *counters.entry(name.clone()).or_insert(0) += v;
            }
        } else {
            return Err(format!("{label}: counters is not an object"));
        }
        let hs = root
            .get("histograms")
            .ok_or_else(|| format!("{label}: missing histograms object"))?;
        if let Json::Obj(members) = hs {
            for (name, v) in members {
                let h = parse_hist(name, v).map_err(|e| format!("{label}: {e}"))?;
                match hists.get_mut(name) {
                    None => {
                        hists.insert(name.clone(), h);
                    }
                    Some(acc) => {
                        if acc.bounds != h.bounds || acc.counts.len() != h.counts.len() {
                            return Err(format!(
                                "{label}: histogram {name:?} bounds differ from an earlier \
                                 shard's; refusing to merge snapshots from different builds"
                            ));
                        }
                        for (a, c) in acc.counts.iter_mut().zip(&h.counts) {
                            *a += c;
                        }
                        acc.count += h.count;
                        acc.sum += h.sum;
                    }
                }
            }
        } else {
            return Err(format!("{label}: histograms is not an object"));
        }
    }

    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{{\"bounds\":["));
        for (j, b) in h.bounds.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(&mut out, *b);
        }
        out.push_str("],\"counts\":[");
        for (j, c) in h.counts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str(&format!("],\"count\":{},\"sum\":", h.count));
        push_f64(&mut out, h.sum);
        out.push('}');
    }
    out.push_str("}}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_metrics;

    const A: &str = "{\"counters\":{\"vm_created\":3,\"migrations\":1},\"histograms\":{\
        \"solve_us\":{\"bounds\":[10,100],\"counts\":[2,1,0],\"count\":3,\"sum\":55.5}}}\n";
    const B: &str = "{\"counters\":{\"vm_created\":4},\"histograms\":{\
        \"solve_us\":{\"bounds\":[10,100],\"counts\":[0,2,1],\"count\":3,\"sum\":301.5}}}\n";

    #[test]
    fn counters_sum_and_histograms_merge_bucketwise() {
        let merged = merge_metrics(&[
            ("a".to_string(), A.to_string()),
            ("b".to_string(), B.to_string()),
        ])
        .unwrap();
        assert!(merged.contains("\"vm_created\":7"), "{merged}");
        assert!(merged.contains("\"migrations\":1"));
        assert!(merged.contains("\"counts\":[2,3,1]"));
        assert!(merged.contains("\"count\":6,\"sum\":357"));
        validate_metrics(&merged).expect("merged snapshot passes the schema check");
    }

    #[test]
    fn merge_is_order_independent() {
        let ab = merge_metrics(&[
            ("a".to_string(), A.to_string()),
            ("b".to_string(), B.to_string()),
        ])
        .unwrap();
        let ba = merge_metrics(&[
            ("b".to_string(), B.to_string()),
            ("a".to_string(), A.to_string()),
        ])
        .unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn mismatched_bounds_are_refused() {
        let c = "{\"counters\":{},\"histograms\":{\
            \"solve_us\":{\"bounds\":[1],\"counts\":[0,0],\"count\":0,\"sum\":0}}}\n";
        let err = merge_metrics(&[
            ("a".to_string(), A.to_string()),
            ("c".to_string(), c.to_string()),
        ])
        .unwrap_err();
        assert!(err.contains("bounds differ"), "{err}");
    }

    #[test]
    fn garbage_input_is_an_error_with_the_shard_label() {
        let err = merge_metrics(&[("s7-sb-x0".to_string(), "not json".to_string())]).unwrap_err();
        assert!(err.contains("s7-sb-x0"), "{err}");
    }
}
