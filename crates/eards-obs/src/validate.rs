//! Schema checks for the emitted trace formats.
//!
//! CI (and the CLI `trace-check` command) run these against exported
//! files to prove the traces round-trip: the JSONL event log is one
//! object per line with a numeric `t_ms` and string `kind`; the Chrome
//! trace is an object with a `traceEvents` array of well-formed entries.
//! The parser is a small recursive-descent JSON reader — the workspace
//! carries no serialization dependency, and the subset we emit is tiny.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our exporters;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(Json::Num(_)) => Ok(()),
        Some(_) => Err(format!("{ctx}: \"{key}\" is not a number")),
        None => Err(format!("{ctx}: missing \"{key}\"")),
    }
}

fn require_str(obj: &Json, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(Json::Str(_)) => Ok(()),
        Some(_) => Err(format!("{ctx}: \"{key}\" is not a string")),
        None => Err(format!("{ctx}: missing \"{key}\"")),
    }
}

/// Validates a JSONL event log: every non-empty line must be a JSON
/// object carrying a numeric `t_ms` and a string `kind`. Returns the
/// number of event records.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = format!("line {}", i + 1);
        let v = parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        if !matches!(v, Json::Obj(_)) {
            return Err(format!("{ctx}: not a JSON object"));
        }
        require_num(&v, "t_ms", &ctx)?;
        require_str(&v, "kind", &ctx)?;
        n += 1;
    }
    Ok(n)
}

/// Validates a Chrome `trace_event` document: a JSON object whose
/// `traceEvents` member is an array of objects each carrying string
/// `name`/`ph` and numeric `ts`/`pid`/`tid` (and numeric `dur` for
/// complete events, `ph:"X"`). Returns the number of trace entries.
pub fn validate_chrome(text: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\"")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    for (i, entry) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        if !matches!(entry, Json::Obj(_)) {
            return Err(format!("{ctx}: not a JSON object"));
        }
        require_str(entry, "name", &ctx)?;
        require_str(entry, "ph", &ctx)?;
        require_num(entry, "ts", &ctx)?;
        require_num(entry, "pid", &ctx)?;
        require_num(entry, "tid", &ctx)?;
        if entry.get("ph").and_then(Json::as_str) == Some("X") {
            require_num(entry, "dur", &ctx)?;
        }
    }
    Ok(events.len())
}

/// Validates a metrics dump: a JSON object with a `counters` object of
/// numeric values and a `histograms` object whose members each carry
/// `bounds`/`counts` arrays and numeric `count`.
pub fn validate_metrics(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    let counters = doc.get("counters").ok_or("missing \"counters\"")?;
    match counters {
        Json::Obj(members) => {
            for (name, v) in members {
                if !matches!(v, Json::Num(_)) {
                    return Err(format!("counter \"{name}\" is not a number"));
                }
            }
        }
        _ => return Err("\"counters\" is not an object".to_string()),
    }
    let hists = doc.get("histograms").ok_or("missing \"histograms\"")?;
    match hists {
        Json::Obj(members) => {
            for (name, h) in members {
                let ctx = format!("histogram \"{name}\"");
                if h.get("bounds").and_then(Json::as_arr).is_none() {
                    return Err(format!("{ctx}: missing \"bounds\" array"));
                }
                if h.get("counts").and_then(Json::as_arr).is_none() {
                    return Err(format!("{ctx}: missing \"counts\" array"));
                }
                require_num(h, "count", &ctx)?;
            }
        }
        _ => return Err("\"histograms\" is not an object".to_string()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".to_string())
        );
        let doc = parse("{\"a\":[1,{\"b\":null}],\"c\":\"x\"}").unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn jsonl_checks_each_line() {
        let good = "{\"t_ms\":1,\"kind\":\"creation\",\"vm\":1}\n\
                    {\"t_ms\":2,\"kind\":\"fault\"}\n";
        assert_eq!(validate_jsonl(good).unwrap(), 2);
        assert_eq!(validate_jsonl("").unwrap(), 0);
        assert!(
            validate_jsonl("{\"kind\":\"x\"}\n").is_err(),
            "missing t_ms"
        );
        assert!(
            validate_jsonl("{\"t_ms\":\"1\",\"kind\":\"x\"}\n").is_err(),
            "t_ms must be numeric"
        );
        assert!(validate_jsonl("[1,2]\n").is_err(), "line must be an object");
    }

    #[test]
    fn chrome_checks_entries() {
        let good = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{}},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":2,\"pid\":2,\"tid\":1}]}";
        assert_eq!(validate_chrome(good).unwrap(), 2);
        assert_eq!(validate_chrome("{\"traceEvents\":[]}").unwrap(), 0);
        assert!(validate_chrome("{}").is_err());
        let no_dur =
            "{\"traceEvents\":[{\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"pid\":2,\"tid\":1}]}";
        assert!(validate_chrome(no_dur).is_err(), "X events need dur");
    }

    #[test]
    fn metrics_checks_shape() {
        let good = "{\"counters\":{\"a\":1},\"histograms\":{\
            \"h\":{\"bounds\":[1.0],\"counts\":[0,1],\"count\":1,\"sum\":2.0}}}";
        validate_metrics(good).unwrap();
        assert!(validate_metrics("{\"counters\":{}}").is_err());
        assert!(validate_metrics("{\"counters\":{\"a\":\"x\"},\"histograms\":{}}").is_err());
    }
}
