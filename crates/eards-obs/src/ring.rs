//! A fixed-capacity overwriting ring buffer.
//!
//! All storage is allocated at construction; pushing beyond capacity
//! overwrites the oldest entry and bumps a drop counter. This is the
//! no-allocation guarantee behind the recorder's "zero surprise on the
//! hot path" contract: recording an event is an index write, never a
//! `Vec` growth.

/// Fixed-capacity ring holding the most recent `capacity` entries.
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest entry once the ring is full.
    head: usize,
    dropped: u64,
}

impl<T> EventRing<T> {
    /// Creates a ring with all storage preallocated. A zero capacity is
    /// clamped to one (a recorder that can hold nothing records nothing
    /// useful, but must stay well-defined).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends `entry`, overwriting the oldest entry when full.
    pub fn push(&mut self, entry: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(entry);
        } else {
            self.buf[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of entries overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing vector's *actual* allocated capacity — exposed so
    /// tests can prove the ring never reallocates after construction.
    pub fn allocated(&self) -> usize {
        self.buf.capacity()
    }

    /// Iterates retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_in_order() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = EventRing::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn allocation_is_fixed() {
        let mut r = EventRing::new(10);
        let cap0 = r.allocated();
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.allocated(), cap0);
    }
}
