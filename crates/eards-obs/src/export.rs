//! Trace and metrics serialization.
//!
//! All JSON here is hand-rolled: the shapes are flat and fixed, the
//! strings are static identifiers (no escaping needed), and the workspace
//! deliberately carries no serialization dependency. The inverse side —
//! parsing and schema checks — lives in [`crate::validate`].

use std::fmt::Write;

use crate::registry::MetricsRegistry;
use crate::Inner;

/// Appends `v` as a JSON number, or `null` when it is not finite (JSON
/// has no `Infinity`/`NaN`; penalty scores can legitimately be `+inf`).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// One JSON object per line: `{"t_ms":…,"kind":"…",…fields}`.
pub(crate) fn jsonl(inner: &Inner) -> String {
    let mut out = String::new();
    for (at, ev) in inner.events.iter() {
        let _ = write!(
            out,
            "{{\"t_ms\":{},\"kind\":\"{}\",",
            at.as_millis(),
            ev.kind()
        );
        ev.append_fields(&mut out);
        out.push_str("}\n");
    }
    out
}

/// Chrome `trace_event` JSON (the object form with a `traceEvents`
/// array). Two timelines:
///
/// * **pid 1** — simulated time: every recorded event as an instant
///   (`ph:"i"`), `ts` = simulated ms × 1000 (the format counts µs);
/// * **pid 2** — wall-clock profiling: every span as a complete event
///   (`ph:"X"`) with its simulated instant in `args.sim_ms`.
pub(crate) fn chrome(inner: &Inner) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (at, ev) in inner.events.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{{",
            ev.kind(),
            at.as_millis() * 1000
        );
        ev.append_fields(&mut out);
        out.push_str("}}");
    }
    for s in inner.spans.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":2,\"tid\":1,\
             \"args\":{{\"sim_ms\":{}}}}}",
            s.name, s.start_us, s.dur_us, s.sim_ms
        );
    }
    out.push_str("]}\n");
    out
}

/// Counters and histograms as one JSON document.
pub(crate) fn metrics(registry: &MetricsRegistry) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in registry.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in registry.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{{\"bounds\":[", h.name());
        for (j, b) in h.bounds().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(&mut out, *b);
        }
        out.push_str("],\"counts\":[");
        for (j, c) in h.counts().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"count\":{},\"sum\":", h.count());
        push_f64(&mut out, h.sum());
        out.push('}');
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::validate;
    use crate::{FaultKind, Obs, ObsEvent, PowerFlipKind, RecoveryKind};
    use eards_sim::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample_obs() -> Obs {
        let obs = Obs::enabled(64);
        obs.record(
            t(0),
            ObsEvent::ScheduleRound {
                reason: "VmArrived",
                actions: 2,
                queued: 1,
            },
        );
        obs.record(
            t(5),
            ObsEvent::ScoreAttribution {
                vm: 3,
                host: 1,
                migration: false,
                movein: 0.25,
                pwr: -0.5,
                sla: 0.0,
                fault: f64::INFINITY, // must serialize as null, not break JSON
                total: 1.5,
            },
        );
        obs.record(t(10), ObsEvent::Creation { vm: 3, host: 1 });
        obs.record(
            t(20),
            ObsEvent::Migration {
                vm: 3,
                from: 1,
                to: 2,
            },
        );
        obs.record(
            t(30),
            ObsEvent::Fault {
                kind: FaultKind::Crash,
                host: 2,
            },
        );
        obs.record(
            t(40),
            ObsEvent::Recovery {
                kind: RecoveryKind::HostRepaired,
                id: 2,
            },
        );
        obs.record(
            t(50),
            ObsEvent::PowerFlip {
                host: 0,
                state: PowerFlipKind::ShuttingDown,
            },
        );
        drop(obs.span("solve", t(5)));
        obs
    }

    #[test]
    fn jsonl_round_trips_the_schema_check() {
        let obs = sample_obs();
        let text = obs.export_jsonl();
        assert_eq!(text.lines().count(), 7);
        let n = validate::validate_jsonl(&text).expect("valid JSONL");
        assert_eq!(n, 7);
        assert!(text.contains("\"fault\":null"), "infinite score → null");
    }

    #[test]
    fn chrome_round_trips_the_schema_check() {
        let obs = sample_obs();
        let text = obs.export_chrome();
        let n = validate::validate_chrome(&text).expect("valid trace");
        assert_eq!(n, 8, "7 instants + 1 span");
    }

    #[test]
    fn metrics_round_trip_the_schema_check() {
        let obs = sample_obs();
        let c = obs.counter("rounds");
        obs.inc(c, 3);
        let h = obs.histogram("queue_len", &[1.0, 4.0, 16.0]);
        obs.observe(h, 2.0);
        obs.observe(h, 100.0);
        let text = obs.export_metrics();
        validate::validate_metrics(&text).expect("valid metrics");
        assert!(text.contains("\"rounds\":3"));
        assert!(text.contains("\"queue_len\""));
    }

    #[test]
    fn disabled_exports_are_valid_and_empty() {
        let obs = Obs::disabled();
        assert_eq!(obs.export_jsonl(), "");
        assert_eq!(validate::validate_jsonl(&obs.export_jsonl()).unwrap(), 0);
        assert_eq!(validate::validate_chrome(&obs.export_chrome()).unwrap(), 0);
        validate::validate_metrics(&obs.export_metrics()).unwrap();
    }
}
