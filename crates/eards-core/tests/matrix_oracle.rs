//! Differential oracle for the incremental score-matrix engine.
//!
//! The refactor from "stateless recompute" ([`solve_reference`]) to the
//! cached [`ScoreMatrix`] engine ([`solve`]) must not change a single
//! score: every SB0/SB1/SB2/SB table in EXPERIMENTS.md depends on the
//! solver's exact move sequences. These properties pin that down:
//!
//! * after an **arbitrary** move sequence, every cached cell is
//!   bit-identical (`f64::to_bits`) to a from-scratch [`Eval`] recompute
//!   of the same overlay state, and
//! * the incremental hill climb returns a [`Solution`] whose `moves` are
//!   **identical** to the reference full-rescan implementation, for every
//!   penalty set.

use proptest::prelude::*;

use eards_core::{solve, solve_reference, Eval, ScoreConfig, ScoreMatrix};
use eards_model::{Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState, VmId};
use eards_sim::{SimDuration, SimTime};

/// A randomized cluster: `n_hosts` nodes of mixed Fast/Medium/Slow
/// classes, some powered off, some VMs already placed, some queued.
fn build(
    n_hosts: u32,
    class_seed: u8,
    off: &[u8],
    placed: &[(u8, u8)],
    queued: &[u8],
) -> (Cluster, Vec<VmId>) {
    let classes = [HostClass::Fast, HostClass::Medium, HostClass::Slow];
    let specs = (0..n_hosts)
        .map(|i| {
            HostSpec::standard(
                HostId(i),
                classes[usize::from(class_seed.wrapping_add(i as u8)) % 3],
            )
        })
        .collect();
    let mut cluster = Cluster::new(specs, PowerState::On);
    // Power some nodes off before anything lands on them: their rows must
    // stay all-infinite through every overlay state.
    for &o in off {
        let h = HostId(u32::from(o) % n_hosts);
        if cluster.host(h).power == PowerState::On {
            cluster.begin_power_off(h, SimTime::ZERO);
        }
    }
    let mut cols = Vec::new();
    let mut next = 0u64;
    let t0 = SimTime::ZERO;
    let t1 = SimTime::from_secs(40);
    for &(cpu_idx, host_bias) in placed {
        let cpu = Cpu(100 * (1 + u32::from(cpu_idx % 4)));
        let vm = cluster.submit_job(Job::new(
            JobId(next),
            t0,
            cpu,
            Mem::gib(1),
            SimDuration::from_secs(3600),
            1.5,
        ));
        next += 1;
        let mut done = false;
        for k in 0..n_hosts {
            let h = HostId((u32::from(host_bias) + k) % n_hosts);
            if cluster.host(h).power == PowerState::On && cluster.can_place(h, vm) {
                cluster.start_creation(vm, h, t0, t1);
                cluster.finish_creation(vm, t1);
                done = true;
                break;
            }
        }
        if done {
            cols.push(vm);
        }
    }
    for &cpu_idx in queued {
        let cpu = Cpu(100 * (1 + u32::from(cpu_idx % 4)));
        let vm = cluster.submit_job(Job::new(
            JobId(next),
            t1,
            cpu,
            Mem::gib(1),
            SimDuration::from_secs(1800),
            1.5,
        ));
        next += 1;
        cols.push(vm);
    }
    (cluster, cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After every prefix of an arbitrary move sequence, each cached cell
    /// equals a from-scratch recompute of the same overlay — bitwise.
    #[test]
    fn incremental_cells_match_recompute(
        n_hosts in 5u32..50,
        class_seed in any::<u8>(),
        off in proptest::collection::vec(any::<u8>(), 0..4),
        placed in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..8),
        queued in proptest::collection::vec(any::<u8>(), 0..6),
        moves in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..10),
    ) {
        let (cluster, cols) = build(n_hosts, class_seed, &off, &placed, &queued);
        if cols.is_empty() {
            return;
        }
        let m = cluster.num_hosts();
        let n = cols.len();
        let now = SimTime::from_secs(120);
        for cfg in [ScoreConfig::sb0(), ScoreConfig::sb(), ScoreConfig::full()] {
            // The engine under test, fed moves incrementally …
            let mut eval = Eval::new(&cluster, &cfg, now, cols.clone());
            let mut matrix = ScoreMatrix::new(&mut eval);
            // … and a shadow evaluator replaying the same moves, scored
            // from scratch at every step.
            let mut shadow = Eval::new(&cluster, &cfg, now, cols.clone());
            for &(vs, hs) in &moves {
                let v = usize::from(vs) % n;
                let h = usize::from(hs) % m;
                if matrix.eval().placement_of(v) == Some(h) {
                    continue; // the solver never emits a self-move
                }
                matrix.apply_move(v, h);
                shadow.apply_move(v, h);
                for h in 0..m {
                    for v in 0..n {
                        let cached = matrix.score(h, v);
                        let fresh = shadow.score(h, v);
                        prop_assert_eq!(
                            cached.value().to_bits(),
                            fresh.value().to_bits(),
                            "cfg {}: cell ({}, {}) diverged: cached {} fresh {}",
                            &cfg.name, h, v, cached, fresh
                        );
                    }
                }
            }
        }
    }

    /// The incremental hill climb and the reference full-rescan climb
    /// produce identical solutions (move-for-move, same sweep count, same
    /// limit flag) and identical final placements.
    #[test]
    fn solve_matches_reference_solver(
        n_hosts in 5u32..50,
        class_seed in any::<u8>(),
        off in proptest::collection::vec(any::<u8>(), 0..4),
        placed in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..8),
        queued in proptest::collection::vec(any::<u8>(), 0..6),
        cap in 1usize..24,
    ) {
        let (cluster, cols) = build(n_hosts, class_seed, &off, &placed, &queued);
        let now = SimTime::from_secs(120);
        for cfg in [ScoreConfig::sb0(), ScoreConfig::sb(), ScoreConfig::full()] {
            let mut inc = Eval::new(&cluster, &cfg, now, cols.clone());
            let fast = solve(&mut inc, cap);
            let mut refr = Eval::new(&cluster, &cfg, now, cols.clone());
            let slow = solve_reference(&mut refr, cap);
            prop_assert_eq!(
                &fast.moves, &slow.moves,
                "cfg {}: move sequences diverged", &cfg.name
            );
            prop_assert_eq!(fast.hit_move_limit, slow.hit_move_limit);
            for v in 0..cols.len() {
                prop_assert_eq!(inc.placement_of(v), refr.placement_of(v));
            }
        }
    }
}
