//! Differential oracle for the sharded hierarchical solver.
//!
//! Two contracts from DESIGN.md §15:
//!
//! * **Single-shard identity** — on any instance whose shard map realizes
//!   one shard, `solve_sharded` is bit-identical to the dense `solve`
//!   climb (same moves, same order). Pinned here over randomized
//!   instances, so turning `--shards` on over a small cluster can never
//!   change a run.
//! * **Bounded quality loss** — with a real partition the solver trades
//!   global optimality for locality: it may place a queue column on a
//!   worse host than the dense climb, but it must still place *as many*
//!   columns, and the total placement cost must stay within a modest
//!   factor of the dense solution.

use eards_core::{solve, solve_sharded, DegradeLevel, Eval, ScoreConfig};
use eards_model::{
    Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState, ShardMap,
};
use eards_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

fn cluster(n: u32) -> Cluster {
    Cluster::new(
        (0..n)
            .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
            .collect(),
        PowerState::On,
    )
}

fn job(id: u64, cpu: u32) -> Job {
    Job::new(
        JobId(id),
        SimTime::ZERO,
        Cpu(cpu),
        Mem::gib(1),
        SimDuration::from_secs(7200),
        1.5,
    )
}

/// Builds a cluster with a mix of running and queued VMs from the
/// generated op list; returns the evaluator columns (running first, then
/// queued — the scheduler's own column order).
fn build_instance(hosts: u32, ops: &[(u8, bool)]) -> (Cluster, Vec<eards_model::VmId>) {
    let mut c = cluster(hosts);
    let mut running = Vec::new();
    let mut queued = Vec::new();
    for (i, &(byte, place)) in ops.iter().enumerate() {
        let cpu = 100 * (1 + u32::from(byte % 3));
        let vm = c.submit_job(job(i as u64, cpu));
        if place {
            let mut placed = false;
            for k in 0..hosts {
                let h = HostId((u32::from(byte) + k) % hosts);
                if c.can_place(h, vm) {
                    c.start_creation(vm, h, t(0), t(40));
                    c.finish_creation(vm, t(40));
                    placed = true;
                    break;
                }
            }
            if placed {
                running.push(vm);
            } else {
                queued.push(vm);
            }
        } else {
            queued.push(vm);
        }
    }
    running.extend(queued);
    (c, running)
}

fn config_for(pick: u8) -> ScoreConfig {
    match pick % 4 {
        0 => ScoreConfig::sb0(),
        1 => ScoreConfig::sb(),
        2 => ScoreConfig::sb2(),
        _ => ScoreConfig::full(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// The single-shard oracle: `solve_sharded` over the trivial map is
    /// move-for-move identical to the dense climb, whatever the instance
    /// and penalty set.
    #[test]
    fn single_shard_is_bit_identical_to_dense_solve(
        hosts in 2u32..9,
        ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..14),
        cfg_pick in any::<u8>(),
        cap in 1usize..40,
    ) {
        let (c, ids) = build_instance(hosts, &ops);
        let cfg = config_for(cfg_pick);
        let expected = {
            let mut eval = Eval::new(&c, &cfg, t(100), ids.clone());
            solve(&mut eval, cap)
        };
        let mut eval = Eval::new(&c, &cfg, t(100), ids);
        let queued = (0..eval.num_vms())
            .filter(|&v| eval.original_of(v).is_none())
            .count() as u64;
        let map = ShardMap::single(hosts as usize);
        let out = solve_sharded(&mut eval, &map, 0, cap, u64::MAX, DegradeLevel::L0Full);
        prop_assert_eq!(&out.solution.moves, &expected.moves,
            "sharded(1) diverged from dense");
        prop_assert_eq!(out.solution.hit_move_limit, expected.hit_move_limit);
        prop_assert!(!out.solution.budget_exhausted);
        // The cursor advance equals the queue columns dealt, placed or not.
        prop_assert_eq!(out.creations_assigned, queued);
    }
}

/// Bounded quality loss on a real partition: the sharded solver places
/// exactly as many queue columns as the dense climb on a uniform
/// cluster with ample capacity, and the total cost of its placements
/// stays within 25% of the dense solution's.
#[test]
fn multi_shard_quality_loss_is_bounded() {
    let hosts = 32u32;
    let mut c = cluster(hosts);
    let ids: Vec<_> = (0..60).map(|i| c.submit_job(job(i, 100))).collect();
    let cfg = ScoreConfig::sb();

    let mut dense_eval = Eval::new(&c, &cfg, t(0), ids.clone());
    let dense = solve(&mut dense_eval, 256);

    let mut sharded_eval = Eval::new(&c, &cfg, t(0), ids.clone());
    let map = ShardMap::build(hosts as usize, 4, 4);
    assert_eq!(map.num_shards(), 4);
    let out = solve_sharded(
        &mut sharded_eval,
        &map,
        0,
        256,
        u64::MAX,
        DegradeLevel::L0Full,
    );

    let placed = |eval: &Eval<'_>| -> (usize, f64) {
        let mut count = 0;
        let mut total = 0.0;
        for v in 0..ids.len() {
            if eval.placement_of(v).is_some() {
                count += 1;
                total += eval.current_cost(v).value();
            }
        }
        (count, total)
    };
    let (dense_placed, dense_cost) = placed(&dense_eval);
    let (sharded_placed, sharded_cost) = placed(&sharded_eval);

    assert_eq!(dense_placed, ids.len(), "dense must place everything");
    assert_eq!(
        sharded_placed, dense_placed,
        "sharded solver dropped columns the dense climb placed"
    );
    // Lower is better (cell scores are minimized; good placements go
    // negative), so the loss is how far sharded sits ABOVE dense,
    // relative to the dense solution's magnitude. Measured ~5% here;
    // 25% leaves room for score-model drift without letting a broken
    // balancer through.
    let loss = sharded_cost - dense_cost;
    assert!(
        loss <= 0.25 * dense_cost.abs() + 1e-9,
        "quality loss beyond bound: sharded {sharded_cost} vs dense {dense_cost}"
    );
    assert!(!out.solution.budget_exhausted);
    assert_eq!(dense.moves.len(), out.solution.moves.len());
}
