//! Property tests for the score-based scheduler: solver invariants over
//! randomized clusters and matrix configurations.

use proptest::prelude::*;

use eards_core::{solve, Eval, ScoreConfig, ScoreScheduler};
use eards_model::{
    Action, Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, Policy, PowerState,
    ScheduleContext, ScheduleReason, VmId,
};
use eards_sim::{SimDuration, SimTime};

/// A randomized cluster: `n_hosts` nodes of mixed classes, some running
/// VMs, some queued VMs.
fn build(n_hosts: u32, class_seed: u8, placed: &[(u8, u8)], queued: &[u8]) -> (Cluster, Vec<VmId>) {
    let classes = [HostClass::Fast, HostClass::Medium, HostClass::Slow];
    let specs = (0..n_hosts)
        .map(|i| {
            HostSpec::standard(
                HostId(i),
                classes[usize::from(class_seed.wrapping_add(i as u8)) % 3],
            )
        })
        .collect();
    let mut cluster = Cluster::new(specs, PowerState::On);
    let mut cols = Vec::new();
    let mut next = 0u64;
    let t0 = SimTime::ZERO;
    let t1 = SimTime::from_secs(40);
    for &(cpu_idx, host_bias) in placed {
        let cpu = Cpu(100 * (1 + u32::from(cpu_idx % 4)));
        let vm = cluster.submit_job(Job::new(
            JobId(next),
            t0,
            cpu,
            Mem::gib(1),
            SimDuration::from_secs(3600),
            1.5,
        ));
        next += 1;
        let mut done = false;
        for k in 0..n_hosts {
            let h = HostId((u32::from(host_bias) + k) % n_hosts);
            if cluster.can_place(h, vm) {
                cluster.start_creation(vm, h, t0, t1);
                cluster.finish_creation(vm, t1);
                done = true;
                break;
            }
        }
        if done {
            cols.push(vm);
        }
    }
    for &cpu_idx in queued {
        let cpu = Cpu(100 * (1 + u32::from(cpu_idx % 4)));
        let vm = cluster.submit_job(Job::new(
            JobId(next),
            t1,
            cpu,
            Mem::gib(1),
            SimDuration::from_secs(1800),
            1.5,
        ));
        next += 1;
        cols.push(vm);
    }
    (cluster, cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Solver safety: respects the move cap, moves each column at most
    /// once, never targets an infeasible cell, and every *applied* move
    /// was an improvement at application time (for creations: any finite
    /// cell beats the virtual host).
    #[test]
    fn solver_invariants(
        n_hosts in 2u32..8,
        class_seed in any::<u8>(),
        placed in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        queued in proptest::collection::vec(any::<u8>(), 0..6),
        cap in 1usize..16,
    ) {
        let (cluster, cols) = build(n_hosts, class_seed, &placed, &queued);
        let cfg = ScoreConfig::sb();
        let mut eval = Eval::new(&cluster, &cfg, SimTime::from_secs(120), cols.clone());
        let sol = solve(&mut eval, cap);

        prop_assert!(sol.moves.len() <= cap);
        let mut seen = std::collections::HashSet::new();
        for &(v, h) in &sol.moves {
            prop_assert!(v < cols.len());
            prop_assert!(h < cluster.num_hosts());
            prop_assert!(seen.insert(v), "column moved twice");
            // Final placement of a moved VM must be feasible *in the final
            // hypothesis* (strict occupation, requirements).
            prop_assert!(!eval.score(h, v).is_infinite(),
                "move landed on an infeasible cell");
        }
        // Untouched columns keep their original placement.
        for v in 0..cols.len() {
            if !seen.contains(&v) {
                prop_assert_eq!(eval.placement_of(v), eval.original_of(v));
            }
        }
    }

    /// The scheduler's actions are always applicable to the cluster it
    /// was shown (the driver re-validates, but stale actions should be
    /// the exception, not the rule).
    #[test]
    fn scheduler_actions_are_applicable(
        n_hosts in 2u32..8,
        class_seed in any::<u8>(),
        placed in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..5),
        queued in proptest::collection::vec(any::<u8>(), 0..5),
    ) {
        let (cluster, _) = build(n_hosts, class_seed, &placed, &queued);
        let mut sched = ScoreScheduler::new(ScoreConfig::sb());
        let ctx = ScheduleContext {
            now: SimTime::from_secs(120),
            reason: ScheduleReason::Periodic,
        };
        let actions = sched.schedule(&cluster, &ctx);
        for a in &actions {
            match *a {
                Action::Create { vm, host } => {
                    prop_assert!(cluster.queue().contains(&vm));
                    // A creation may rely on capacity a same-round
                    // migration is about to vacate (the driver applies the
                    // plan concurrently and tolerates the transient CPU
                    // overcommit); memory feasibility is unconditional.
                    prop_assert!(cluster.can_place_overcommitted(host, vm),
                        "create action infeasible: {vm} on {host}");
                }
                Action::Migrate { vm, to } => {
                    prop_assert!(cluster.vm(vm).host != Some(to));
                    prop_assert!(cluster.can_place(to, vm) ||
                        cluster.can_place_overcommitted(to, vm),
                        "migrate target infeasible");
                }
            }
        }
        // No VM appears in two actions.
        let mut vms = std::collections::HashSet::new();
        for a in &actions {
            let vm = match *a {
                Action::Create { vm, .. } | Action::Migrate { vm, .. } => vm,
            };
            prop_assert!(vms.insert(vm), "{vm} scheduled twice in one round");
        }
    }

    /// Score evaluation never yields NaN, whatever the configuration.
    #[test]
    fn scores_are_never_nan(
        n_hosts in 2u32..6,
        class_seed in any::<u8>(),
        placed in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
        queued in proptest::collection::vec(any::<u8>(), 0..4),
        now_secs in 0u64..10_000,
    ) {
        let (cluster, cols) = build(n_hosts, class_seed, &placed, &queued);
        for cfg in [ScoreConfig::sb0(), ScoreConfig::sb2(), ScoreConfig::full()] {
            let eval = Eval::new(&cluster, &cfg, SimTime::from_secs(now_secs), cols.clone());
            for v in 0..cols.len() {
                for h in 0..cluster.num_hosts() {
                    let s = eval.score(h, v);
                    prop_assert!(!s.value().is_nan(), "NaN score for cfg {}", cfg.name);
                }
            }
        }
    }
}
