//! Solver quality versus exhaustive search.
//!
//! §III-B argues hill climbing "finds a suboptimal solution much faster
//! and cheaper than evaluating all possible configurations". For
//! datacenter-scale matrices exhaustive search is intractable, but for
//! tiny instances we *can* enumerate every assignment and quantify the
//! claim: the solver must (a) reach a local optimum whenever it converges,
//! (b) never end worse than where it started, and (c) land on or near the
//! global optimum for the bulk of small instances.

use eards_core::{solve, Eval, ScoreConfig};
use eards_model::{Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState, VmId};
use eards_sim::{SimDuration, SimRng, SimTime};

/// Cost a queued (unplaced) VM contributes when comparing assignments.
/// Stands in for the virtual host's ∞ while keeping totals finite; large
/// enough that placing a VM always beats leaving it queued.
const UNPLACED_COST: f64 = 10_000.0;

/// Total cost of the assignment currently held by `eval`.
fn total_cost(eval: &Eval<'_>) -> f64 {
    (0..eval.num_vms())
        .map(|v| match eval.placement_of(v) {
            Some(h) => {
                let s = eval.score(h, v);
                if s.is_infinite() {
                    UNPLACED_COST * 2.0 // illegal standing placement
                } else {
                    s.value()
                }
            }
            None => UNPLACED_COST,
        })
        .sum()
}

/// Builds a random tiny instance: `hosts` nodes, `n` queued VMs.
fn tiny_instance(rng: &mut SimRng, hosts: u32, n: u64) -> (Cluster, Vec<VmId>) {
    let classes = [HostClass::Fast, HostClass::Medium, HostClass::Slow];
    let specs = (0..hosts)
        .map(|i| HostSpec::standard(HostId(i), classes[rng.index(3)]))
        .collect();
    let mut cluster = Cluster::new(specs, PowerState::On);
    let vms = (0..n)
        .map(|j| {
            cluster.submit_job(Job::new(
                JobId(j),
                SimTime::ZERO,
                Cpu(100 * (1 + rng.index(3) as u32)),
                Mem::gib(1),
                SimDuration::from_secs(1800 + 600 * rng.index(5) as u64),
                1.5,
            ))
        })
        .collect();
    (cluster, vms)
}

/// Exhaustive search over all `(hosts+1)^n` assignments: every VM on each
/// host or unplaced. Returns the optimal cost.
fn brute_force_optimum(cluster: &Cluster, cfg: &ScoreConfig, vms: &[VmId]) -> f64 {
    let m = cluster.num_hosts();
    let n = vms.len();
    let mut best = f64::INFINITY;
    let total = (m + 1).pow(n as u32);
    for code in 0..total {
        let mut eval = Eval::new(cluster, cfg, SimTime::ZERO, vms.to_vec());
        let mut c = code;
        let mut legal = true;
        for v in 0..n {
            let choice = c % (m + 1);
            c /= m + 1;
            if choice < m {
                eval.apply_move(v, choice);
            }
        }
        // Reject assignments with infeasible standing placements.
        for v in 0..n {
            if let Some(h) = eval.placement_of(v) {
                if eval.score(h, v).is_infinite() {
                    legal = false;
                    break;
                }
            }
        }
        if legal {
            best = best.min(total_cost(&eval));
        }
    }
    best
}

#[test]
fn solver_reaches_a_local_optimum_and_never_regresses() {
    let mut rng = SimRng::seed_from_u64(2024);
    // Exact-improvement config: no migration hysteresis to blur deltas.
    let mut cfg = ScoreConfig::sb();
    cfg.min_migration_gain = 0.0;

    for case in 0..60 {
        let hosts = 2 + (case % 2) as u32; // 2 or 3 hosts
        let n = 2 + (case % 3) as u64; // 2–4 VMs
        let (cluster, vms) = tiny_instance(&mut rng, hosts, n);

        let mut eval = Eval::new(&cluster, &cfg, SimTime::ZERO, vms.clone());
        let initial = total_cost(&eval);
        let sol = solve(&mut eval, 64);
        let achieved = total_cost(&eval);

        assert!(
            achieved <= initial + 1e-9,
            "case {case}: solver regressed {initial} -> {achieved}"
        );

        if !sol.hit_move_limit {
            // Local optimality: no single additional move may improve.
            // (Columns are frozen after moving within one round, so verify
            // against a *fresh* evaluation of the final assignment.)
            for v in 0..eval.num_vms() {
                let from = eval.current_cost(v);
                for h in 0..eval.num_hosts() {
                    if eval.placement_of(v) == Some(h) {
                        continue;
                    }
                    if let Some(d) = eards_core::Score::delta(eval.score(h, v), from) {
                        // Moved columns were frozen; the guarantee §III-B
                        // gives is for the move set as planned, so only
                        // check unmoved columns strictly.
                        let was_moved = sol.moves.iter().any(|&(mv, _)| mv == v);
                        if !was_moved {
                            assert!(
                                d >= -1e-9,
                                "case {case}: unmoved column {v} still improvable by {d}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn solver_tracks_the_global_optimum_on_tiny_instances() {
    let mut rng = SimRng::seed_from_u64(7);
    let mut cfg = ScoreConfig::sb();
    cfg.min_migration_gain = 0.0;

    let mut optimal_hits = 0usize;
    let mut total_gap = 0.0;
    const CASES: usize = 40;
    for _ in 0..CASES {
        let (cluster, vms) = tiny_instance(&mut rng, 3, 3);
        let optimum = brute_force_optimum(&cluster, &cfg, &vms);

        let mut eval = Eval::new(&cluster, &cfg, SimTime::ZERO, vms.clone());
        solve(&mut eval, 64);
        let achieved = total_cost(&eval);

        assert!(
            achieved >= optimum - 1e-6,
            "solver cannot beat the optimum: {achieved} < {optimum}"
        );
        let gap = achieved - optimum;
        total_gap += gap;
        if gap < 1e-6 {
            optimal_hits += 1;
        }
    }
    // Greedy hill climbing should solve the bulk of 3-host/3-VM instances
    // exactly; the rest land close (the paper's "suboptimal solution").
    assert!(
        optimal_hits * 10 >= CASES * 7,
        "only {optimal_hits}/{CASES} instances solved optimally"
    );
    let mean_gap = total_gap / CASES as f64;
    assert!(
        mean_gap < 15.0,
        "mean optimality gap too large: {mean_gap:.2} score points"
    );
}
