//! The sharded hierarchical solver.
//!
//! The dense [`ScoreMatrix`](crate::matrix::ScoreMatrix) engine pays
//! `O(M·N)` for the initial fill and `O(N)` per dirty row, which is fine
//! at hundreds of hosts and prohibitive at ten thousand. This module
//! trades a bounded amount of solution quality for locality: the cluster
//! is partitioned into rack-aligned shards ([`ShardMap`]), each shard
//! hill-climbs its own small matrix, and a cheap global balancer re-homes
//! VMs that their shard could not place before a second local pass.
//!
//! ## Pass structure
//!
//! 1. **Column assignment.** Running VMs belong to the shard owning their
//!    current host (migrations stay rack-local). Queued VMs are dealt
//!    round-robin across shards from a caller-supplied cursor, so
//!    placement pressure spreads deterministically across rounds.
//! 2. **Local pass.** Shards climb in ascending shard order, each on its
//!    own engine, each up to the caller's move cap. One [`WorkMeter`] is
//!    threaded through every shard, so budget exhaustion is deterministic:
//!    shards exhaust in ascending order, and an exhausted meter skips all
//!    remaining work.
//! 3. **Balance.** Queue columns still unplaced are probed against other
//!    shards (cheapest first filter: per-shard max free host capacity,
//!    then actual cell scores, bounded probes per VM) and re-homed.
//! 4. **Second local pass** over just the re-homed columns on their new
//!    shards.
//!
//! ## Per-shard engine
//!
//! Cells live in struct-of-arrays form: the three round-static halves
//! ([`Eval::static_cell`]) and the current full score are parallel flat
//! arrays, so a dirty-row rescore touches contiguous memory instead of
//! hopping across an array of structs. Per column the engine maintains a
//! sorted **top-k candidate list** `(to, row)` plus a *bound*: every
//! feasible cell of the column **not** in the list compares strictly
//! greater than the bound under the `(to, row)` order. The argmin of the
//! list is therefore the argmin of the whole column; a full column rescan
//! is needed only when the list drains while the bound is finite.
//!
//! ## Tie-breaking across shards
//!
//! Within a shard, candidates are ordered by the documented global
//! contract `(Δ, to, column, row)` — with *global* column and row
//! indices, not shard-local ones. A single-shard map therefore reproduces
//! the exact move sequence of [`solve_matrix`](crate::solver::solve_matrix)
//! (the differential oracle in `tests/shard_oracle.rs` pins this
//! bit-identically); multiple shards restrict each argmin to the shard's
//! rows but never reorder equal candidates.

use eards_model::ShardMap;

use crate::budget::{DegradeLevel, WorkMeter};
use crate::eval::{CellStatic, Eval};
use crate::score::Score;
use crate::solver::Solution;

/// Per-column candidate lists keep this many entries. Small enough that
/// insertion is a few shifts, large enough that a burst of moves rarely
/// drains a list into a full-column rescan.
const TOP_K: usize = 8;

/// How many foreign shards the balancer scores cells in (per VM) before
/// giving up on re-homing it.
const BALANCER_PROBES: usize = 4;

/// Outcome of a sharded solve, wrapping the composed [`Solution`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Moves in application order across all passes, plus sweep/limit
    /// bookkeeping summed over shards.
    pub solution: Solution,
    /// Work units charged across every shard, balancer probe included.
    pub work_spent: u64,
    /// Host rows scored or re-scored across all shard engines (the
    /// counterpart of `ScoreMatrix::rows_rescored`).
    pub rows_rescored: u64,
    /// Queue columns dealt by the round-robin assignment this round; the
    /// caller advances its persistent cursor by this much.
    pub creations_assigned: u64,
    /// Queue columns the balancer re-homed to a foreign shard.
    pub balanced: u64,
}

/// One shard's candidate state for one column: sorted top-k plus the
/// exclusion bound (see the module docs).
#[derive(Debug, Clone, Default)]
struct ColCandidates {
    /// Ascending by `(to, global row)`; at most [`TOP_K`] entries.
    top: Vec<(f64, u32)>,
    /// Every feasible cell of the column outside `top` is `> bound`.
    /// `(∞, u32::MAX)` means the list is complete.
    bound: (f64, u32),
}

const BOUND_COMPLETE: (f64, u32) = (f64::INFINITY, u32::MAX);

/// A dense engine over one shard's host rows × its assigned columns.
///
/// All storage is shard-local and value-typed (no borrows into the
/// evaluator), struct-of-arrays over the cell fields.
struct ShardEngine {
    /// First global host row of the shard.
    row0: usize,
    /// Shard height (rows).
    m: usize,
    /// Global column ids handled by this shard, ascending.
    cols: Vec<u32>,
    // --- struct-of-arrays cell storage, row-major `(local row, col) = r*n + c`.
    feasible: Vec<bool>,
    movein: Vec<Score>,
    fault: Vec<Score>,
    /// Current full score; `f64::INFINITY` marks an infeasible cell.
    value: Vec<f64>,
    /// Per-column candidate state.
    cand: Vec<ColCandidates>,
}

impl ShardEngine {
    /// Builds the engine: scores every cell (charging the meter per row,
    /// like the dense engine's lazy fill) and builds each column's
    /// candidate list (charging per column scan).
    fn build(
        eval: &Eval<'_>,
        rows: std::ops::Range<usize>,
        cols: Vec<u32>,
        meter: &mut WorkMeter,
        rows_rescored: &mut u64,
    ) -> ShardEngine {
        let row0 = rows.start;
        let m = rows.len();
        let n = cols.len();
        let mut eng = ShardEngine {
            row0,
            m,
            cols,
            feasible: vec![false; m * n],
            movein: vec![Score::ZERO; m * n],
            fault: vec![Score::ZERO; m * n],
            value: vec![f64::INFINITY; m * n],
            cand: vec![ColCandidates::default(); n],
        };
        for r in 0..m {
            eng.fill_row(eval, r, meter);
            *rows_rescored += 1;
        }
        for c in 0..n {
            meter.charge(m as u64);
            eng.rebuild_col(eval, c);
        }
        eng
    }

    fn n(&self) -> usize {
        self.cols.len()
    }

    /// Scores local row `r` from scratch (statics + dynamic half).
    fn fill_row(&mut self, eval: &Eval<'_>, r: usize, meter: &mut WorkMeter) {
        let n = self.n();
        let h = self.row0 + r;
        for c in 0..n {
            let v = self.cols[c] as usize;
            let cell = eval.static_cell(h, v);
            let idx = r * n + c;
            self.feasible[idx] = cell.feasible;
            self.movein[idx] = cell.movein;
            self.fault[idx] = cell.fault;
            self.value[idx] = eval.score_with_static(h, v, &cell).value();
        }
        meter.charge(n as u64);
    }

    /// Re-scores local row `r` reusing the cached static halves — the
    /// same two-half composition the dense engine uses, so values stay
    /// bit-identical to a fresh `eval.score`. Frozen columns are skipped:
    /// a moved column never moves again this round, and its cells are
    /// never read (not by `best_move`, which skips it, nor by
    /// `rebuild_col`, which is only reached through it), so rescoring
    /// them is dead work — the dominant cost of a move at scale.
    fn rescore_row(&mut self, eval: &Eval<'_>, r: usize, frozen: &[bool], meter: &mut WorkMeter) {
        let n = self.n();
        let h = self.row0 + r;
        let mut live = 0u64;
        for c in 0..n {
            let v = self.cols[c] as usize;
            if frozen[v] {
                continue;
            }
            live += 1;
            let idx = r * n + c;
            let cell = CellStatic {
                feasible: self.feasible[idx],
                movein: self.movein[idx],
                fault: self.fault[idx],
            };
            self.value[idx] = eval.score_with_static(h, v, &cell).value();
        }
        meter.charge(live);
    }

    /// Full column rescan: rebuilds column `c`'s top-k and bound from the
    /// cell values. Requires all rows clean.
    fn rebuild_col(&mut self, eval: &Eval<'_>, c: usize) {
        let n = self.n();
        let v = self.cols[c] as usize;
        let placement = eval.placement_of(v);
        let mut overflow = false;
        let mut top: Vec<(f64, u32)> = std::mem::take(&mut self.cand[c].top);
        top.clear();
        for r in 0..self.m {
            let h = self.row0 + r;
            if placement == Some(h) {
                continue;
            }
            let s = self.value[r * n + c];
            if s.is_infinite() {
                continue;
            }
            let entry = (s, h as u32);
            let pos = top.partition_point(|&e| e < entry);
            if pos < TOP_K {
                top.insert(pos, entry);
                if top.len() > TOP_K {
                    top.pop();
                    overflow = true;
                }
            } else {
                overflow = true;
            }
        }
        let bound = if overflow {
            // Dropped cells all compare > the last kept entry.
            *top.last().unwrap_or(&BOUND_COMPLETE)
        } else {
            BOUND_COMPLETE
        };
        self.cand[c] = ColCandidates { top, bound };
    }

    /// Applies a move's row invalidation: re-scores the dirty rows and
    /// maintains every column's candidate list (remove entries on dirty
    /// rows, then challenge the dirty cells against the bound).
    fn invalidate_rows(
        &mut self,
        eval: &Eval<'_>,
        dirty: &[usize],
        frozen: &[bool],
        meter: &mut WorkMeter,
        rows_rescored: &mut u64,
    ) {
        let n = self.n();
        for &r in dirty {
            self.rescore_row(eval, r, frozen, meter);
            *rows_rescored += 1;
        }
        for c in 0..n {
            let v = self.cols[c] as usize;
            if frozen[v] {
                // Dead column (see `rescore_row`): its candidate list is
                // never consulted again.
                continue;
            }
            meter.charge(dirty.len() as u64);
            let placement = eval.placement_of(v);
            let cand = &mut self.cand[c];
            for &r in dirty {
                let h = (self.row0 + r) as u32;
                if let Some(pos) = cand.top.iter().position(|&(_, row)| row == h) {
                    cand.top.remove(pos);
                }
            }
            for &r in dirty {
                let h = self.row0 + r;
                if placement == Some(h) {
                    continue;
                }
                let s = self.value[r * n + c];
                if s.is_infinite() {
                    continue;
                }
                let entry = (s, h as u32);
                if entry >= cand.bound {
                    // Outside the bound: the invariant already covers it.
                    continue;
                }
                let pos = cand.top.partition_point(|&e| e < entry);
                if pos < TOP_K {
                    cand.top.insert(pos, entry);
                    if cand.top.len() > TOP_K {
                        let dropped = cand.top.pop().unwrap_or(BOUND_COMPLETE);
                        if dropped < cand.bound {
                            cand.bound = dropped;
                        }
                    }
                } else {
                    // Worse than every kept candidate: it stays outside,
                    // so the bound must drop to keep covering it.
                    cand.bound = entry;
                }
            }
        }
    }

    /// The head of column `c`'s candidate list, rescanning the column if
    /// the list drained while cells might remain outside the bound.
    fn col_best(&mut self, eval: &Eval<'_>, c: usize, meter: &mut WorkMeter) -> Option<(f64, u32)> {
        if self.cand[c].top.is_empty() && self.cand[c].bound < BOUND_COMPLETE {
            meter.charge(self.m as u64);
            self.rebuild_col(eval, c);
        }
        self.cand[c].top.first().copied()
    }

    /// The most beneficial move within this shard by the global
    /// `(Δ, to, column, row)` contract, subject to the migration bar.
    fn best_move(
        &mut self,
        eval: &Eval<'_>,
        frozen: &[bool],
        meter: &mut WorkMeter,
    ) -> Option<(usize, usize)> {
        meter.charge(self.n() as u64);
        let mut best: Option<(f64, f64, usize, usize)> = None;
        for c in 0..self.n() {
            let v = self.cols[c] as usize;
            if frozen[v] {
                continue;
            }
            let Some((to_val, h)) = self.col_best(eval, c, meter) else {
                continue;
            };
            let from = match eval.placement_of(v) {
                Some(p) => {
                    debug_assert!(
                        (self.row0..self.row0 + self.m).contains(&p),
                        "column {v} placed outside its shard"
                    );
                    Score::finite(self.value[(p - self.row0) * self.n() + c])
                }
                None => Score::INFINITE,
            };
            let Some(d) = Score::delta(Score::finite(to_val), from) else {
                continue;
            };
            let bar = if eval.original_of(v).is_some() {
                -eval.min_migration_gain()
            } else {
                0.0
            };
            if d >= bar {
                continue;
            }
            let cand = (d, to_val, v, h as usize);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best.map(|(_, _, v, h)| (v, h))
    }
}

/// Hill-climbs one shard to convergence, its move cap, or meter
/// exhaustion. Returns `(hit_move_limit, exhausted)`.
#[allow(clippy::too_many_arguments)]
fn climb_shard(
    eval: &mut Eval<'_>,
    rows: std::ops::Range<usize>,
    cols: Vec<u32>,
    frozen: &mut [bool],
    max_moves: usize,
    meter: &mut WorkMeter,
    moves: &mut Vec<(usize, usize)>,
    sweeps: &mut usize,
    rows_rescored: &mut u64,
) -> (bool, bool) {
    if cols.is_empty() {
        return (false, false);
    }
    let row0 = rows.start;
    let mut eng = ShardEngine::build(eval, rows, cols, meter, rows_rescored);
    let mut local_moves = 0usize;
    while local_moves < max_moves {
        if meter.exhausted() {
            return (false, true);
        }
        *sweeps += 1;
        match eng.best_move(eval, frozen, meter) {
            Some((v, h)) => {
                let old = eval.placement_of(v);
                eval.apply_move(v, h);
                frozen[v] = true;
                moves.push((v, h));
                local_moves += 1;
                let mut dirty = [0usize; 2];
                let mut k = 0;
                if let Some(o) = old {
                    dirty[k] = o - row0;
                    k += 1;
                }
                dirty[k] = h - row0;
                k += 1;
                eng.invalidate_rows(eval, &dirty[..k], frozen, meter, rows_rescored);
            }
            None => return (false, false),
        }
    }
    (true, false)
}

/// Runs the full sharded hierarchical solve (see the module docs for the
/// pass structure). `cursor` seeds the queue-column round-robin;
/// `budget == u64::MAX` leaves the work meter unarmed.
///
/// With a single-shard map this is move-for-move identical to
/// [`solve_matrix`](crate::solver::solve_matrix) on the same evaluator.
pub fn solve_sharded(
    eval: &mut Eval<'_>,
    map: &ShardMap,
    cursor: u64,
    max_moves: usize,
    budget: u64,
    degrade: DegradeLevel,
) -> ShardedOutcome {
    debug_assert_eq!(map.num_hosts(), eval.num_hosts(), "shard map mismatch");
    let n = eval.num_vms();
    let num_shards = map.num_shards();
    let mut meter = if budget == u64::MAX {
        WorkMeter::unlimited()
    } else {
        WorkMeter::with_budget(budget)
    };

    // Pass 0: deal columns to shards. Running VMs live where their host
    // is; queue columns round-robin from the cursor.
    let mut cols: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    let mut creations = 0u64;
    for v in 0..n {
        let s = match eval.original_of(v) {
            Some(h) => map.shard_of(h),
            None => {
                let s = ((cursor.wrapping_add(creations)) % num_shards as u64) as usize;
                creations += 1;
                s
            }
        };
        cols[s].push(v as u32);
    }

    let mut frozen = vec![false; n];
    let mut moves = Vec::new();
    let mut sweeps = 0usize;
    let mut rows_rescored = 0u64;
    let mut hit_move_limit = false;
    let mut exhausted = false;

    // Pass 1: local climbs, ascending shard order, one shared meter.
    for (s, shard_cols) in cols.iter_mut().enumerate() {
        if meter.exhausted() {
            exhausted = true;
            break;
        }
        let (hit, ex) = climb_shard(
            eval,
            map.hosts(s),
            std::mem::take(shard_cols),
            &mut frozen,
            max_moves,
            &mut meter,
            &mut moves,
            &mut sweeps,
            &mut rows_rescored,
        );
        hit_move_limit |= hit;
        if ex {
            exhausted = true;
            break;
        }
    }

    // Balance: re-home queue columns their shard could not place.
    let mut balanced: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    let mut balanced_total = 0u64;
    if num_shards > 1 && !exhausted {
        // Per-shard best-host free capacity, one scan over all hosts.
        let mut max_free = vec![(0u32, 0u32); num_shards];
        meter.charge(map.num_hosts() as u64);
        for (s, slot) in max_free.iter_mut().enumerate() {
            let mut best = (0u32, 0u32);
            for h in map.hosts(s) {
                let free = eval.free_capacity(h);
                best.0 = best.0.max(free.cpu.points());
                best.1 = best.1.max(free.mem.mib());
            }
            *slot = best;
        }
        // Global roomiest host over all shards: when a request does not
        // even fit this, no shard passes the per-shard filter and the ring
        // scan below would walk every shard for nothing — the common case
        // once a big cluster saturates. Skipping it changes no state (a
        // filtered-out shard is side-effect free).
        let gmax = max_free
            .iter()
            .fold((0u32, 0u32), |g, &(c, m)| (g.0.max(c), g.1.max(m)));
        let mut creations_seen = 0u64;
        for (v, &is_frozen) in frozen.iter().enumerate() {
            if eval.original_of(v).is_some() {
                continue;
            }
            let home = ((cursor.wrapping_add(creations_seen)) % num_shards as u64) as usize;
            creations_seen += 1;
            if eval.placement_of(v).is_some() || is_frozen {
                continue;
            }
            if meter.exhausted() {
                exhausted = true;
                break;
            }
            let req = eval.requested_of(v);
            if req.cpu.points() > gmax.0 || req.mem.mib() > gmax.1 {
                continue;
            }
            let mut probes = 0usize;
            'probe: for off in 1..num_shards {
                if probes >= BALANCER_PROBES {
                    break;
                }
                let s = (home + off) % num_shards;
                // Cheap filter: the shard's roomiest host must at least
                // nominally fit the request before any cell is scored.
                if req.cpu.points() > max_free[s].0 || req.mem.mib() > max_free[s].1 {
                    continue;
                }
                probes += 1;
                for h in map.hosts(s) {
                    meter.charge(1);
                    if meter.exhausted() {
                        exhausted = true;
                        break 'probe;
                    }
                    if !eval.score(h, v).is_infinite() {
                        balanced[s].push(v as u32);
                        balanced_total += 1;
                        break 'probe;
                    }
                }
            }
            if exhausted {
                break;
            }
        }
    }

    // Pass 2: local climbs over the re-homed columns only.
    for (s, shard_cols) in balanced.iter_mut().enumerate() {
        if shard_cols.is_empty() {
            continue;
        }
        if meter.exhausted() {
            exhausted = true;
            break;
        }
        let (hit, ex) = climb_shard(
            eval,
            map.hosts(s),
            std::mem::take(shard_cols),
            &mut frozen,
            max_moves,
            &mut meter,
            &mut moves,
            &mut sweeps,
            &mut rows_rescored,
        );
        hit_move_limit |= hit;
        if ex {
            exhausted = true;
            break;
        }
    }

    ShardedOutcome {
        solution: Solution {
            moves,
            sweeps,
            hit_move_limit,
            degrade,
            budget_exhausted: exhausted,
        },
        work_spent: meter.spent(),
        rows_rescored,
        creations_assigned: creations,
        balanced: balanced_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoreConfig;
    use crate::solver::{solve, solve_reference};
    use eards_model::{Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState};
    use eards_sim::{SimDuration, SimTime};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn cluster(n: u32) -> Cluster {
        Cluster::new(
            (0..n)
                .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
                .collect(),
            PowerState::On,
        )
    }

    fn job(id: u64, cpu: u32) -> Job {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(6000),
            1.5,
        )
    }

    #[test]
    fn single_shard_matches_dense_solver_bit_identically() {
        for (hosts, vms, cpu) in [(4u32, 6u64, 150u32), (6, 10, 120), (3, 2, 100)] {
            let mut c = cluster(hosts);
            let ids: Vec<_> = (0..vms).map(|i| c.submit_job(job(i, cpu))).collect();
            let cfg = ScoreConfig::sb();
            let expected = {
                let mut eval = Eval::new(&c, &cfg, t(0), ids.clone());
                solve(&mut eval, 32)
            };
            let mut eval = Eval::new(&c, &cfg, t(0), ids);
            let map = ShardMap::single(hosts as usize);
            let out = solve_sharded(&mut eval, &map, 0, 32, u64::MAX, DegradeLevel::L0Full);
            assert_eq!(
                out.solution.moves, expected.moves,
                "{hosts}h/{vms}v: sharded(1) diverged from the dense climb"
            );
            assert!(!out.solution.budget_exhausted);
        }
    }

    #[test]
    fn single_shard_matches_reference_oracle() {
        let mut c = cluster(5);
        let ids: Vec<_> = (0..8).map(|i| c.submit_job(job(i, 120))).collect();
        let cfg = ScoreConfig::sb();
        let expected = {
            let mut eval = Eval::new(&c, &cfg, t(0), ids.clone());
            solve_reference(&mut eval, 100)
        };
        let mut eval = Eval::new(&c, &cfg, t(0), ids);
        let map = ShardMap::single(5);
        let out = solve_sharded(&mut eval, &map, 0, 100, u64::MAX, DegradeLevel::L0Full);
        assert_eq!(out.solution.moves, expected.moves);
    }

    #[test]
    fn multi_shard_places_queued_vms_via_balancer() {
        // 4 hosts in 2 shards (rack size 2); shard 1's hosts are off, so
        // any queue column dealt there cannot place locally — the
        // balancer must re-home it to shard 0 for the second pass.
        let mut c = cluster(4);
        c.begin_power_off(HostId(2), t(0));
        c.begin_power_off(HostId(3), t(0));
        let ids: Vec<_> = (0..2).map(|i| c.submit_job(job(i, 100))).collect();
        let cfg = ScoreConfig::sb();
        let mut eval = Eval::new(&c, &cfg, t(0), ids);
        let map = ShardMap::build(4, 2, 2);
        let out = solve_sharded(&mut eval, &map, 0, 32, u64::MAX, DegradeLevel::L0Full);
        assert_eq!(out.creations_assigned, 2);
        assert_eq!(out.balanced, 1, "the shard-1 column must be re-homed");
        assert_eq!(out.solution.moves.len(), 2, "both VMs must be placed");
        for v in 0..2 {
            let h = eval.placement_of(v).expect("column placed");
            assert_eq!(map.shard_of(h), 0, "only shard 0 has live hosts");
        }
    }

    #[test]
    fn migrations_stay_within_their_shard() {
        let mut c = cluster(4);
        let mut ids = Vec::new();
        for (i, h) in [(0u64, 0u32), (1, 1), (2, 2), (3, 3)] {
            let vm = c.submit_job(job(i, 100));
            c.start_creation(vm, HostId(h), t(0), t(40));
            c.finish_creation(vm, t(40));
            ids.push(vm);
        }
        let cfg = ScoreConfig::sb();
        let mut eval = Eval::new(&c, &cfg, t(100), ids);
        let map = ShardMap::build(4, 2, 2);
        let out = solve_sharded(&mut eval, &map, 0, 32, u64::MAX, DegradeLevel::L0Full);
        for &(v, h) in &out.solution.moves {
            let home = map.shard_of(eval.original_of(v).unwrap());
            assert_eq!(map.shard_of(h), home, "migration {v}→{h} crossed shards");
        }
    }

    #[test]
    fn budget_exhaustion_is_deterministic_and_prefix_stable() {
        let mut c = cluster(6);
        let ids: Vec<_> = (0..10).map(|i| c.submit_job(job(i, 150))).collect();
        let cfg = ScoreConfig::sb();
        let map = ShardMap::build(6, 2, 3);
        let full = {
            let mut eval = Eval::new(&c, &cfg, t(0), ids.clone());
            solve_sharded(&mut eval, &map, 0, 100, u64::MAX, DegradeLevel::L0Full)
        };
        assert!(!full.solution.budget_exhausted);
        let mut last_len = 0usize;
        for budget in [1u64, 20, 100, 400, 2000, full.work_spent] {
            let mut eval = Eval::new(&c, &cfg, t(0), ids.clone());
            let out = solve_sharded(&mut eval, &map, 0, 100, budget, DegradeLevel::L0Full);
            assert_eq!(
                out.solution.moves,
                full.solution.moves[..out.solution.moves.len()],
                "budget {budget}: not a prefix of the unbudgeted climb"
            );
            assert!(out.solution.moves.len() >= last_len, "budget not monotone");
            last_len = out.solution.moves.len();
            if !out.solution.budget_exhausted {
                assert_eq!(out.solution.moves, full.solution.moves);
            }
        }
    }

    #[test]
    fn cursor_spreads_queue_columns_across_shards() {
        let mut c = cluster(4);
        let ids: Vec<_> = (0..2).map(|i| c.submit_job(job(i, 100))).collect();
        let cfg = ScoreConfig::sb();
        let map = ShardMap::build(4, 2, 2);
        // Cursor 0 deals column 0 → shard 0; cursor 1 deals it → shard 1.
        let mut eval = Eval::new(&c, &cfg, t(0), ids.clone());
        let a = solve_sharded(&mut eval, &map, 0, 32, u64::MAX, DegradeLevel::L0Full);
        let mut eval = Eval::new(&c, &cfg, t(0), ids);
        let b = solve_sharded(&mut eval, &map, 1, 32, u64::MAX, DegradeLevel::L0Full);
        assert_eq!(a.creations_assigned, 2);
        // Shard 0 always climbs first; which *column* it got reveals the
        // deal: cursor 0 gives it column 0, cursor 1 gives it column 1.
        assert_eq!(a.solution.moves.first().map(|&(v, _)| v), Some(0));
        assert_eq!(b.solution.moves.first().map(|&(v, _)| v), Some(1));
    }
}
