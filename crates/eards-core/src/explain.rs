//! Rendering the score matrix the way §III-B prints it.
//!
//! The paper walks through a worked example: first the raw cost matrix
//! (hosts × VMs, `∞` for impossible allocations, plus the virtual host
//! row), then the delta-normalized matrix after subtracting each VM's
//! current-host cost. [`render_matrix`] and [`render_delta_matrix`]
//! reproduce those two views for any [`Eval`], which makes scheduler
//! decisions inspectable (see the `scheduler_explain` example).
//!
//! [`render_matrix_cached`] and [`render_delta_matrix_cached`] are the
//! same views over a live [`ScoreMatrix`]: they read the engine's cached
//! cells (rescoring only stale rows), so printing a mid-hill-climb state
//! costs the dirtied rows rather than a full `M×N` recompute — and doubles
//! as a visual check that the cache agrees with the overlay.

use eards_metrics::Table;
use eards_model::HostId;

use crate::eval::Eval;
use crate::matrix::ScoreMatrix;
use crate::score::Score;

fn vm_headers(eval: &Eval<'_>) -> Vec<String> {
    let mut header = vec!["".to_string()];
    header.extend(eval.vms().iter().map(|vm| vm.to_string()));
    header
}

/// The raw matrix over any cell source (shared by the [`Eval`] and
/// [`ScoreMatrix`] fronts — one rendering path, two cell backends).
fn raw_table(
    header: Vec<String>,
    m: usize,
    n: usize,
    mut cell: impl FnMut(usize, usize) -> Score,
) -> Table {
    let mut table = Table::new(header);
    for h in 0..m {
        let mut row = vec![HostId(h as u32).to_string()];
        for v in 0..n {
            row.push(cell(h, v).to_string());
        }
        table.row(row);
    }
    // The virtual host holds unallocated VMs at infinite cost.
    let mut hv = vec!["HV".to_string()];
    for _ in 0..n {
        hv.push("∞".into());
    }
    table.row(hv);
    table
}

/// The delta-normalized matrix over any cell source: each cell minus the
/// VM's current-host cost, `0.0` on the current placement itself.
fn delta_table(
    header: Vec<String>,
    m: usize,
    placements: &[Option<usize>],
    from: &[Score],
    mut cell: impl FnMut(usize, usize) -> Score,
) -> Table {
    let mut table = Table::new(header);
    for h in 0..m {
        let mut row = vec![HostId(h as u32).to_string()];
        for (v, &placement) in placements.iter().enumerate() {
            let text = if placement == Some(h) {
                "0.0".to_string()
            } else {
                match Score::delta(cell(h, v), from[v]) {
                    None => "∞".into(),
                    Some(d) if d == f64::NEG_INFINITY => "-∞".into(),
                    Some(d) => format!("{d:.1}"),
                }
            };
            row.push(text);
        }
        table.row(row);
    }
    table
}

/// The raw score matrix: one row per host plus the virtual-host row `HV`,
/// one column per matrix VM — the first matrix of §III-B.
pub fn render_matrix(eval: &Eval<'_>) -> Table {
    raw_table(
        vm_headers(eval),
        eval.num_hosts(),
        eval.num_vms(),
        |h, v| eval.score(h, v),
    )
}

/// [`render_matrix`] over the incremental engine's cached cells.
pub fn render_matrix_cached(matrix: &mut ScoreMatrix<'_, '_>) -> Table {
    let header = vm_headers(matrix.eval());
    let (m, n) = (matrix.num_hosts(), matrix.num_vms());
    raw_table(header, m, n, |h, v| matrix.score(h, v))
}

/// The delta-normalized matrix: each cell minus the VM's current-host
/// cost — "positive scores mean degradation and negative scores mean
/// improvement" — the second matrix of §III-B. Cells that are not
/// candidates (target infeasible) render as `∞`; a queued VM's feasible
/// cells render as `−∞` (maximum benefit).
pub fn render_delta_matrix(eval: &Eval<'_>) -> Table {
    let n = eval.num_vms();
    let placements: Vec<Option<usize>> = (0..n).map(|v| eval.placement_of(v)).collect();
    let from: Vec<Score> = (0..n).map(|v| eval.current_cost(v)).collect();
    delta_table(
        vm_headers(eval),
        eval.num_hosts(),
        &placements,
        &from,
        |h, v| eval.score(h, v),
    )
}

/// [`render_delta_matrix`] over the incremental engine's cached cells.
pub fn render_delta_matrix_cached(matrix: &mut ScoreMatrix<'_, '_>) -> Table {
    let header = vm_headers(matrix.eval());
    let (m, n) = (matrix.num_hosts(), matrix.num_vms());
    let placements: Vec<Option<usize>> = (0..n).map(|v| matrix.eval().placement_of(v)).collect();
    let from: Vec<Score> = (0..n).map(|v| matrix.current_cost(v)).collect();
    delta_table(header, m, &placements, &from, |h, v| matrix.score(h, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoreConfig;
    use eards_model::{Cluster, Cpu, HostClass, HostSpec, Job, JobId, Mem, PowerState};
    use eards_sim::{SimDuration, SimTime};

    fn setup() -> (Cluster, Vec<eards_model::VmId>) {
        let mut c = Cluster::new(
            vec![
                HostSpec::standard(HostId(0), HostClass::Medium),
                HostSpec::standard(HostId(1), HostClass::Medium),
            ],
            PowerState::On,
        );
        // One running VM on host 0, one queued.
        let a = c.submit_job(Job::new(
            JobId(0),
            SimTime::ZERO,
            Cpu(300),
            Mem::gib(2),
            SimDuration::from_secs(6000),
            1.5,
        ));
        c.start_creation(a, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        c.finish_creation(a, SimTime::from_secs(40));
        let b = c.submit_job(Job::new(
            JobId(1),
            SimTime::ZERO,
            Cpu(200),
            Mem::gib(1),
            SimDuration::from_secs(600),
            1.5,
        ));
        (c, vec![a, b])
    }

    #[test]
    fn matrix_has_virtual_host_row_of_infinities() {
        let (c, vms) = setup();
        let cfg = ScoreConfig::sb();
        let eval = Eval::new(&c, &cfg, SimTime::from_secs(60), vms);
        let md = render_matrix(&eval).to_markdown();
        let hv = md.lines().last().unwrap();
        assert!(hv.contains("HV"));
        assert_eq!(hv.matches('∞').count(), 2, "{hv}");
        // Infeasible cell: vm1 (200) cannot join host 0 beside the 300.
        assert!(md.contains('∞'));
    }

    #[test]
    fn delta_matrix_marks_current_placement_zero_and_queued_neg_inf() {
        let (c, vms) = setup();
        let cfg = ScoreConfig::sb();
        let eval = Eval::new(&c, &cfg, SimTime::from_secs(60), vms);
        let md = render_delta_matrix(&eval).to_markdown();
        let rows: Vec<&str> = md.lines().collect();
        // Row h0: vm0 is there (0.0); vm1 infeasible there (∞).
        assert!(
            rows[2].contains("0.0") && rows[2].contains('∞'),
            "{}",
            rows[2]
        );
        // Row h1: vm1 queued and feasible ⇒ −∞ (maximum allocation benefit).
        assert!(rows[3].contains("-∞"), "{}", rows[3]);
    }

    #[test]
    fn cached_renders_match_eval_renders_mid_climb() {
        let (c, vms) = setup();
        let cfg = ScoreConfig::sb();
        let mut eval = Eval::new(&c, &cfg, SimTime::from_secs(60), vms.clone());
        let mut matrix = ScoreMatrix::new(&mut eval);
        // Place the queued VM mid-"climb", then compare both fronts.
        matrix.apply_move(1, 1);
        let raw_cached = render_matrix_cached(&mut matrix).to_markdown();
        let delta_cached = render_delta_matrix_cached(&mut matrix).to_markdown();
        let mut shadow = Eval::new(&c, &cfg, SimTime::from_secs(60), vms);
        shadow.apply_move(1, 1);
        assert_eq!(raw_cached, render_matrix(&shadow).to_markdown());
        assert_eq!(delta_cached, render_delta_matrix(&shadow).to_markdown());
    }
}
