//! The matrix optimization algorithm (Algorithm 1, §III-B).
//!
//! Hill climbing over the score matrix: after normalizing each column by
//! the VM's current-host cost, repeatedly apply the most-negative move
//! (re-scoring the affected cells) until no improvement remains or the
//! iteration limit is hit. "The Hill Climbing algorithm is greedy, but in
//! this situation it finds a suboptimal solution much faster and cheaper
//! than evaluating all possible configurations."
//!
//! One guard beyond the paper's pseudocode: a VM moved once in a round is
//! frozen for the rest of that round. The real system starts the chosen
//! operation immediately (after which the VM is pinned with an infinite
//! `P_virt` anyway), and the freeze makes termination proofs trivial:
//! at most `min(max_moves, N)` moves per round.
//!
//! ## Candidate ordering (tie-breaking contract)
//!
//! Each sweep picks the candidate minimizing the tuple
//!
//! `(Δ, to, column, row)`
//!
//! under strict lexicographic `<`, where `Δ = to − from` is the
//! delta-normalized benefit and `to` is the **raw** (signed) score of the
//! target cell — *not* its absolute value: between two moves of equal
//! benefit, the one landing in the more negative (more consolidated)
//! cell wins. Remaining ties fall to the lower column index, then the
//! lower host row. This exact tuple is a compatibility contract: the
//! incremental engine ([`crate::matrix::ScoreMatrix`]) relies on `from`
//! being constant per column to reduce the within-column order to
//! `(to, row)`, and `tie_breaks_follow_documented_order` pins it.
//!
//! [`solve`] runs the hill climb through the incremental engine;
//! [`solve_reference`] is the original full-rescan implementation, kept
//! as the differential-testing oracle (`tests/matrix_oracle.rs` asserts
//! move-for-move equality) and as the baseline the solver benchmarks
//! compare against.

use crate::budget::DegradeLevel;
use crate::eval::Eval;
use crate::matrix::ScoreMatrix;
use crate::score::Score;

/// One applied move: `(matrix column, host row)`.
pub type Move = (usize, usize);

/// Outcome of a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Moves in application order (each column appears at most once).
    pub moves: Vec<Move>,
    /// Number of full matrix sweeps performed.
    pub sweeps: usize,
    /// Whether the run stopped on the iteration limit rather than on
    /// convergence.
    pub hit_move_limit: bool,
    /// The degradation-ladder rung this solve executed at (caller-
    /// supplied context; plain [`solve`]/[`solve_matrix`] runs are L0).
    pub degrade: DegradeLevel,
    /// Whether the matrix's armed work budget ran out mid-climb: the
    /// moves are the best found so far, not a local optimum.
    pub budget_exhausted: bool,
}

/// Runs hill climbing until convergence or `max_moves`, using the
/// incremental [`ScoreMatrix`] engine (identical output to
/// [`solve_reference`], asymptotically cheaper per sweep).
pub fn solve(eval: &mut Eval<'_>, max_moves: usize) -> Solution {
    let mut matrix = ScoreMatrix::new(eval);
    solve_matrix(&mut matrix, max_moves)
}

/// Hill climbs an already-built [`ScoreMatrix`] (lets callers reuse the
/// engine's allocations across rounds; see
/// [`EngineBuffers`](crate::matrix::EngineBuffers)).
pub fn solve_matrix(matrix: &mut ScoreMatrix<'_, '_>, max_moves: usize) -> Solution {
    solve_matrix_at(matrix, max_moves, DegradeLevel::L0Full)
}

/// [`solve_matrix`] with an explicit degradation rung tagged into the
/// returned [`Solution`], honoring the matrix's armed work budget: the
/// budget is checked at the top of every sweep, so on exhaustion the
/// climb stops and returns the best-so-far moves with
/// `budget_exhausted` set. Overshoot past the budget is bounded by one
/// sweep's work — at worst the initial lazy fill plus the first
/// column-best scan (`2·m·n`), one argmin and one challenge (`2n`), and
/// one column recompute (`m`).
pub fn solve_matrix_at(
    matrix: &mut ScoreMatrix<'_, '_>,
    max_moves: usize,
    degrade: DegradeLevel,
) -> Solution {
    let n = matrix.num_vms();
    let mut frozen = vec![false; n];
    let mut moves = Vec::new();
    let mut sweeps = 0;

    while moves.len() < max_moves {
        if matrix.work_exhausted() {
            return Solution {
                moves,
                sweeps,
                hit_move_limit: false,
                degrade,
                budget_exhausted: true,
            };
        }
        sweeps += 1;
        match matrix.best_move(&frozen) {
            Some((v, h)) => {
                matrix.apply_move(v, h);
                frozen[v] = true;
                moves.push((v, h));
            }
            None => {
                return Solution {
                    moves,
                    sweeps,
                    hit_move_limit: false,
                    degrade,
                    budget_exhausted: false,
                };
            }
        }
    }
    Solution {
        moves,
        sweeps,
        hit_move_limit: true,
        degrade,
        budget_exhausted: false,
    }
}

/// The original full-rescan hill climb: every sweep re-scores the entire
/// matrix from scratch. Retained as the differential-testing oracle for
/// [`solve`] and as the benchmark baseline — not used by the scheduler.
pub fn solve_reference(eval: &mut Eval<'_>, max_moves: usize) -> Solution {
    let n = eval.num_vms();
    let m = eval.num_hosts();
    let mut frozen = vec![false; n];
    let mut moves = Vec::new();
    let mut sweeps = 0;

    while moves.len() < max_moves {
        sweeps += 1;
        // Find the most beneficial move over the whole (delta-normalized)
        // matrix. Ties break on the smaller raw target score, then on
        // column and row order — deterministic across runs (see the
        // module docs for the full ordering contract).
        let mut best: Option<(f64, f64, usize, usize)> = None;
        for (v, &is_frozen) in frozen.iter().enumerate().take(n) {
            if is_frozen {
                continue;
            }
            let from = eval.current_cost(v);
            for h in 0..m {
                if eval.placement_of(v) == Some(h) {
                    continue;
                }
                let to = eval.score(h, v);
                let Some(d) = Score::delta(to, from) else {
                    continue;
                };
                // Creations (from the virtual host) only need any feasible
                // cell; migrations must clear the configured gain bar.
                let bar = if eval.original_of(v).is_some() {
                    -eval.min_migration_gain()
                } else {
                    0.0
                };
                if d >= bar {
                    continue;
                }
                let cand = (d, to.value(), v, h);
                let better = match best {
                    None => true,
                    Some(b) => cand < b,
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        match best {
            Some((_, _, v, h)) => {
                eval.apply_move(v, h);
                frozen[v] = true;
                moves.push((v, h));
            }
            None => {
                return Solution {
                    moves,
                    sweeps,
                    hit_move_limit: false,
                    degrade: DegradeLevel::L0Full,
                    budget_exhausted: false,
                };
            }
        }
    }
    Solution {
        moves,
        sweeps,
        hit_move_limit: true,
        degrade: DegradeLevel::L0Full,
        budget_exhausted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoreConfig;
    use eards_model::{
        Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState, VmId,
    };
    use eards_sim::{SimDuration, SimTime};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn cluster(n: u32) -> Cluster {
        Cluster::new(
            (0..n)
                .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
                .collect(),
            PowerState::On,
        )
    }

    fn job(id: u64, cpu: u32) -> Job {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(6000),
            1.5,
        )
    }

    #[test]
    fn places_queued_vms() {
        let mut c = cluster(3);
        let a = c.submit_job(job(1, 200));
        let b = c.submit_job(job(2, 100));
        let cfg = ScoreConfig::sb0();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vec![a, b]);
        let sol = solve(&mut eval, 32);
        assert_eq!(sol.moves.len(), 2);
        assert!(!sol.hit_move_limit);
        // Both end on the same host (consolidation).
        assert_eq!(eval.placement_of(0), eval.placement_of(1));
    }

    #[test]
    fn consolidates_via_migration() {
        let mut c = cluster(2);
        let a = c.submit_job(job(1, 200));
        c.start_creation(a, HostId(0), t(0), t(40));
        c.finish_creation(a, t(40));
        let b = c.submit_job(job(2, 100));
        c.start_creation(b, HostId(1), t(0), t(40));
        c.finish_creation(b, t(40));
        let cfg = ScoreConfig::sb();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(100), vec![a, b]);
        let sol = solve(&mut eval, 32);
        // One VM should move so a host can be emptied; the cheaper move is
        // the smaller VM (b: lower migration penalty is equal, but moving
        // either empties a host — tie broken deterministically).
        assert_eq!(sol.moves.len(), 1, "{sol:?}");
        assert_eq!(
            eval.placement_of(0),
            eval.placement_of(1),
            "must end consolidated"
        );
    }

    #[test]
    fn respects_move_limit() {
        let mut c = cluster(10);
        let vms: Vec<VmId> = (0..8).map(|i| c.submit_job(job(i, 100))).collect();
        let cfg = ScoreConfig::sb0();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms);
        let sol = solve(&mut eval, 3);
        assert_eq!(sol.moves.len(), 3);
        assert!(sol.hit_move_limit);
    }

    #[test]
    fn no_moves_when_everything_is_optimal() {
        let mut c = cluster(2);
        let a = c.submit_job(job(1, 300));
        c.start_creation(a, HostId(0), t(0), t(40));
        c.finish_creation(a, t(40));
        let cfg = ScoreConfig::sb();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(100), vec![a]);
        let sol = solve(&mut eval, 32);
        assert!(sol.moves.is_empty(), "a lone VM has nowhere better to go");
    }

    #[test]
    fn never_moves_to_infeasible_host() {
        let mut c = cluster(2);
        c.begin_power_off(HostId(1), t(0));
        let vms: Vec<VmId> = (0..3).map(|i| c.submit_job(job(i, 200))).collect();
        let cfg = ScoreConfig::sb0();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms);
        let sol = solve(&mut eval, 32);
        // Host 0 fits two 200% VMs; the third has no feasible host.
        assert_eq!(sol.moves.len(), 2);
        for &(_, h) in &sol.moves {
            assert_eq!(h, 0);
        }
        assert_eq!(eval.placement_of(2), None, "third VM stays queued");
    }

    #[test]
    fn tie_breaks_follow_documented_order() {
        // Two identical queued VMs on three identical empty hosts: every
        // feasible cell ties on Δ (= −∞ from the virtual host) AND on the
        // raw target score, so the winner must be the lowest (column, row)
        // pair — VM 0 onto host 0.
        let mut c = cluster(3);
        let vms: Vec<VmId> = (0..2).map(|i| c.submit_job(job(i, 100))).collect();
        let cfg = ScoreConfig::sb0();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms.clone());
        let mut matrix = crate::matrix::ScoreMatrix::new(&mut eval);
        assert_eq!(
            matrix.best_move(&[false, false]),
            Some((0, 0)),
            "full tie must fall to lowest column, then lowest row"
        );

        // Same Δ (−∞), different raw target scores: a bigger VM fills a
        // host further, so its cell is more negative (P_pwr = C_e − O·C_f)
        // and must win even from a *higher* column index — the raw-value
        // tie-break outranks column order.
        let mut c = cluster(3);
        let small = c.submit_job(job(10, 100)); // to = 20 − 0.25·40 = 10
        let big = c.submit_job(job(11, 200)); // to = 20 − 0.50·40 = 0
        let cfg = ScoreConfig::sb0();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vec![small, big]);
        let mut matrix = crate::matrix::ScoreMatrix::new(&mut eval);
        assert_eq!(
            matrix.best_move(&[false, false]),
            Some((1, 0)),
            "more negative raw score beats lower column index"
        );

        // The reference solver must agree move-for-move on both setups.
        for (mk, expect) in [
            (vec![(0u64, 100u32), (1, 100)], (0usize, 0usize)),
            (vec![(10, 100), (11, 200)], (1, 0)),
        ] {
            let mut c = cluster(3);
            let vms: Vec<VmId> = mk
                .iter()
                .map(|&(id, cpu)| c.submit_job(job(id, cpu)))
                .collect();
            let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms);
            let sol = solve_reference(&mut eval, 1);
            assert_eq!(sol.moves, vec![expect]);
        }
    }

    #[test]
    fn budgeted_solve_is_a_prefix_of_the_unbudgeted_climb() {
        // The anytime property: stopping on budget exhaustion must yield
        // exactly the first k moves of the full climb, for every budget.
        let mut c = cluster(6);
        let vms: Vec<VmId> = (0..10).map(|i| c.submit_job(job(i, 150))).collect();
        let cfg = ScoreConfig::sb();
        let full = {
            let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms.clone());
            solve(&mut eval, 100)
        };
        assert!(full.moves.len() >= 2, "need a multi-move case: {full:?}");
        for budget in [1u64, 50, 200, 1000, 5000] {
            let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms.clone());
            let mut matrix = crate::matrix::ScoreMatrix::new(&mut eval);
            matrix.set_work_budget(budget);
            let sol = crate::solver::solve_matrix_at(
                &mut matrix,
                100,
                crate::budget::DegradeLevel::L0Full,
            );
            assert_eq!(
                sol.moves,
                full.moves[..sol.moves.len()],
                "budget {budget}: not a prefix"
            );
            if !sol.budget_exhausted {
                assert_eq!(sol.moves, full.moves, "unexhausted run must be complete");
            }
        }
    }

    #[test]
    fn unarmed_budget_is_bit_identical_to_legacy() {
        let mut c = cluster(5);
        let vms: Vec<VmId> = (0..8).map(|i| c.submit_job(job(i, 120))).collect();
        let cfg = ScoreConfig::sb();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms.clone());
        let legacy = solve_reference(&mut eval, 100);
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms);
        let sol = solve(&mut eval, 100);
        assert_eq!(sol.moves, legacy.moves);
        assert!(!sol.budget_exhausted);
        assert_eq!(sol.degrade, crate::budget::DegradeLevel::L0Full);
    }

    #[test]
    fn exhausted_solve_reports_best_so_far() {
        let mut c = cluster(6);
        let vms: Vec<VmId> = (0..10).map(|i| c.submit_job(job(i, 150))).collect();
        let cfg = ScoreConfig::sb();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms);
        let mut matrix = crate::matrix::ScoreMatrix::new(&mut eval);
        matrix.set_work_budget(1);
        let sol =
            crate::solver::solve_matrix_at(&mut matrix, 100, crate::budget::DegradeLevel::L0Full);
        // Budget 1 allows the first sweep (check happens before work is
        // spent), then stops: at most one move, flagged exhausted.
        assert!(sol.budget_exhausted);
        assert!(sol.moves.len() <= 1, "{sol:?}");
        assert!(matrix.work_spent() >= 1);
    }

    #[test]
    fn each_vm_moves_at_most_once_per_round() {
        let mut c = cluster(4);
        let vms: Vec<VmId> = (0..6).map(|i| c.submit_job(job(i, 150))).collect();
        let cfg = ScoreConfig::sb();
        let mut eval = crate::eval::Eval::new(&c, &cfg, t(0), vms);
        let sol = solve(&mut eval, 100);
        let mut seen = std::collections::HashSet::new();
        for &(v, _) in &sol.moves {
            assert!(seen.insert(v), "column {v} moved twice");
        }
    }
}
