//! Deterministic work budgeting for the anytime solver.
//!
//! A production scheduler must bound its per-round decision cost or it
//! falls behind its own round cadence. The budget here is counted in
//! *work units* — cell rescores and argmin scans, the two operations that
//! dominate a hill-climbing round — never wall-clock time, so a budgeted
//! run is bit-reproducible across machines and snapshot/restore (lint
//! rule D002 stays intact).
//!
//! One work unit ≙ one cell touched: rescoring a row charges `N` (its
//! cell count), a full column rescan charges `M`, challenging a column
//! best with `k` dirty rows charges `k`, and the per-sweep argmin over
//! column bests charges `N`. The meter saturates rather than wraps, and
//! [`WorkMeter::unlimited`] (budget `u64::MAX`) never exhausts — the
//! unlimited path is the bit-identical legacy behavior.
//!
//! [`DegradeLevel`] names the rungs of the scheduler's degradation
//! ladder (see `ScoreScheduler` and DESIGN.md §14); it lives here so the
//! solver can tag a [`Solution`](crate::Solution) with the rung it ran at.

use eards_sim::{Persist, PersistError, Reader, Writer};

/// Saturating counter of deterministic solver work units against a budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkMeter {
    budget: u64,
    spent: u64,
}

impl WorkMeter {
    /// A meter that never exhausts (budget `u64::MAX`). This is the
    /// default for every matrix: the legacy, full-quality path.
    pub fn unlimited() -> Self {
        WorkMeter {
            budget: u64::MAX,
            spent: 0,
        }
    }

    /// A meter with a finite budget of `budget` work units.
    pub fn with_budget(budget: u64) -> Self {
        WorkMeter { budget, spent: 0 }
    }

    /// Records `units` work units (saturating).
    #[inline]
    pub fn charge(&mut self, units: u64) {
        self.spent = self.spent.saturating_add(units);
    }

    /// Work units spent so far.
    #[inline]
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The configured budget (`u64::MAX` when unlimited).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether this meter can ever exhaust.
    pub fn is_unlimited(&self) -> bool {
        self.budget == u64::MAX
    }

    /// Whether the budget has been reached or passed. An unlimited meter
    /// never exhausts, even if `spent` saturates at `u64::MAX`.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.spent >= self.budget && self.budget != u64::MAX
    }
}

impl Default for WorkMeter {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Rung of the scheduler's degradation ladder, from full quality (L0) to
/// a deferred round (L3). Ordered: a higher rung does strictly less work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Full incremental hill-climb over queue + migration candidates.
    L0Full,
    /// Queue-only columns: migration candidates are skipped entirely.
    L1QueueOnly,
    /// Greedy first-feasible placement of queued VMs (no hill climb).
    L2Greedy,
    /// The round is deferred: queue intact, periodic timers re-arm.
    L3Defer,
}

impl DegradeLevel {
    /// All rungs, mildest first.
    pub const ALL: [DegradeLevel; 4] = [
        DegradeLevel::L0Full,
        DegradeLevel::L1QueueOnly,
        DegradeLevel::L2Greedy,
        DegradeLevel::L3Defer,
    ];

    /// Stable snake_case label (obs events, bench JSON, audit log).
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::L0Full => "l0_full",
            DegradeLevel::L1QueueOnly => "l1_queue_only",
            DegradeLevel::L2Greedy => "l2_greedy",
            DegradeLevel::L3Defer => "l3_defer",
        }
    }

    /// Rung index 0..=3 (L0 = 0).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The next-harsher rung (saturates at L3).
    pub fn escalate(self) -> DegradeLevel {
        match self {
            DegradeLevel::L0Full => DegradeLevel::L1QueueOnly,
            DegradeLevel::L1QueueOnly => DegradeLevel::L2Greedy,
            DegradeLevel::L2Greedy | DegradeLevel::L3Defer => DegradeLevel::L3Defer,
        }
    }

    /// The next-milder rung (saturates at L0).
    pub fn relax(self) -> DegradeLevel {
        match self {
            DegradeLevel::L0Full | DegradeLevel::L1QueueOnly => DegradeLevel::L0Full,
            DegradeLevel::L2Greedy => DegradeLevel::L1QueueOnly,
            DegradeLevel::L3Defer => DegradeLevel::L2Greedy,
        }
    }
}

impl Persist for DegradeLevel {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            DegradeLevel::L0Full => 0,
            DegradeLevel::L1QueueOnly => 1,
            DegradeLevel::L2Greedy => 2,
            DegradeLevel::L3Defer => 3,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(DegradeLevel::L0Full),
            1 => Ok(DegradeLevel::L1QueueOnly),
            2 => Ok(DegradeLevel::L2Greedy),
            3 => Ok(DegradeLevel::L3Defer),
            t => Err(PersistError::Corrupt(format!("bad DegradeLevel tag {t}"))),
        }
    }
}

/// Overload-control knobs for `ScoreScheduler`.
///
/// `budget` bounds each round's solver work; with `ladder` set the
/// scheduler also walks the [`DegradeLevel`] ladder, escalating when
/// rounds exhaust their budget and relaxing when the work EWMA recovers.
/// `force` pins the rung (bench/diagnostic use — the quality-loss curve
/// in `BENCH_degrade.json` is measured this way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadControl {
    /// Per-round solver work budget in work units (`u64::MAX` = none).
    pub budget: u64,
    /// Walk the degradation ladder instead of always running L0.
    pub ladder: bool,
    /// EWMA smoothing factor for the per-round work spend estimate.
    pub alpha: f64,
    /// Pin the ladder to one rung (overrides the EWMA driver).
    pub force: Option<DegradeLevel>,
}

impl OverloadControl {
    /// Budgeted anytime solving plus the degradation ladder.
    pub fn with_budget(budget: u64) -> Self {
        OverloadControl {
            budget,
            ladder: true,
            alpha: 0.25,
            force: None,
        }
    }

    /// Budget only — the ladder stays pinned at L0 (anytime hill-climb).
    pub fn budget_only(budget: u64) -> Self {
        OverloadControl {
            ladder: false,
            ..Self::with_budget(budget)
        }
    }

    /// Pins the ladder to `rung` (diagnostics and the quality-loss bench).
    pub fn forced(budget: u64, rung: DegradeLevel) -> Self {
        OverloadControl {
            force: Some(rung),
            ..Self::with_budget(budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_exhausts() {
        let mut m = WorkMeter::unlimited();
        assert!(m.is_unlimited());
        m.charge(u64::MAX);
        m.charge(u64::MAX);
        assert_eq!(m.spent(), u64::MAX, "charges saturate");
        assert!(
            !m.exhausted(),
            "an unlimited meter never exhausts, even saturated"
        );
    }

    #[test]
    fn finite_meter_exhausts_at_budget() {
        let mut m = WorkMeter::with_budget(10);
        m.charge(9);
        assert!(!m.exhausted());
        m.charge(1);
        assert!(m.exhausted());
        assert_eq!(m.spent(), 10);
    }

    #[test]
    fn ladder_moves_saturate() {
        assert_eq!(DegradeLevel::L0Full.relax(), DegradeLevel::L0Full);
        assert_eq!(DegradeLevel::L3Defer.escalate(), DegradeLevel::L3Defer);
        let mut r = DegradeLevel::L0Full;
        for expect in [
            DegradeLevel::L1QueueOnly,
            DegradeLevel::L2Greedy,
            DegradeLevel::L3Defer,
        ] {
            r = r.escalate();
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn degrade_level_round_trips_through_persist() {
        for rung in DegradeLevel::ALL {
            let mut w = Writer::new();
            rung.persist(&mut w);
            let bytes = w.into_bytes().unwrap();
            let mut r = Reader::new(&bytes);
            assert_eq!(DegradeLevel::restore(&mut r).unwrap(), rung);
            r.finish().unwrap();
        }
        let mut r = Reader::new(&[9u8]);
        assert!(DegradeLevel::restore(&mut r).is_err());
    }
}
