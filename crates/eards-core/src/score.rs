//! The score value type.
//!
//! A score is the *cost* of one ⟨host, VM⟩ allocation (§III-A): the sum of
//! all penalties, where infinity marks an impossible allocation ("penalties
//! which can take infinity value may make all the other penalties
//! insignificant"). Wrapping `f64` keeps the absorbing-∞ arithmetic and
//! the move-delta rules in one audited place.

use std::fmt;
use std::ops::{Add, AddAssign};

/// The cost of holding a VM on a host. Higher is worse; infinite is
/// impossible.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Score(f64);

impl Score {
    /// A zero-cost score.
    pub const ZERO: Score = Score(0.0);
    /// The impossible allocation.
    pub const INFINITE: Score = Score(f64::INFINITY);

    /// A finite score.
    ///
    /// # Panics
    /// Panics on NaN — a NaN score would silently break the solver's
    /// minimum search.
    pub fn finite(v: f64) -> Score {
        assert!(!v.is_nan(), "score cannot be NaN");
        Score(v)
    }

    /// Raw value (may be `f64::INFINITY`).
    pub fn value(self) -> f64 {
        self.0
    }

    /// True for the impossible allocation.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// The benefit (negative = improvement) of moving a VM whose current
    /// cost is `from` to a cell costing `to`:
    ///
    /// * moving *to* an infinite cell is never a candidate (`None`);
    /// * moving *from* infinity (a queued VM on the virtual host) to any
    ///   finite cell is infinitely beneficial (`-∞`) — allocating new VMs
    ///   dominates everything else, as §III-A prescribes;
    /// * otherwise the plain difference.
    pub fn delta(to: Score, from: Score) -> Option<f64> {
        if to.is_infinite() {
            return None;
        }
        if from.is_infinite() {
            return Some(f64::NEG_INFINITY);
        }
        Some(to.0 - from.0)
    }
}

impl Add for Score {
    type Output = Score;
    fn add(self, rhs: Score) -> Score {
        Score(self.0 + rhs.0)
    }
}

impl AddAssign for Score {
    fn add_assign(&mut self, rhs: Score) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.1}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_absorbs_addition() {
        assert!((Score::INFINITE + Score::finite(5.0)).is_infinite());
        assert!((Score::finite(-3.0) + Score::INFINITE).is_infinite());
        assert_eq!(Score::finite(2.0) + Score::finite(3.0), Score::finite(5.0));
    }

    #[test]
    fn ordering() {
        assert!(Score::finite(1.0) < Score::finite(2.0));
        assert!(Score::finite(1e9) < Score::INFINITE);
        assert!(Score::finite(-5.0) < Score::ZERO);
    }

    #[test]
    fn delta_rules() {
        // To-infinite: never a candidate.
        assert_eq!(Score::delta(Score::INFINITE, Score::finite(1.0)), None);
        assert_eq!(Score::delta(Score::INFINITE, Score::INFINITE), None);
        // From-infinite to finite: infinitely beneficial.
        assert_eq!(
            Score::delta(Score::finite(10.0), Score::INFINITE),
            Some(f64::NEG_INFINITY)
        );
        // Finite case: plain difference.
        assert_eq!(
            Score::delta(Score::finite(3.0), Score::finite(10.0)),
            Some(-7.0)
        );
        assert_eq!(
            Score::delta(Score::finite(10.0), Score::finite(3.0)),
            Some(7.0)
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Score::finite(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(Score::finite(15.25).to_string(), "15.2");
        assert_eq!(Score::INFINITE.to_string(), "∞");
    }
}
