//! Score evaluation over a *hypothetical* placement.
//!
//! The matrix solver (§III-B) explores moves before committing any of them,
//! so scores must be computable against a what-if state: the real cluster
//! plus a tentative placement of the VMs under consideration. [`Eval`]
//! keeps that overlay (per-host committed resources and VM counts) and
//! computes the full score
//!
//! `Score(h, vm) = P_req + P_res + P_virt + P_conc + P_pwr + P_SLA + P_fault`
//!
//! with each term exactly as §III-A defines it.
//!
//! To support the incremental engine in [`crate::matrix`], each cell is
//! split into a *round-static* part ([`CellStatic`]: `P_req` feasibility,
//! the move-in `P_virt`/`P_conc`, `P_fault` — all functions of the
//! immutable `&Cluster` snapshot only) and a *dynamic* part
//! ([`Eval::score_with_static`]: `P_res`, `P_pwr`, `P_SLA` and the
//! is-it-already-there check, which depend on the hypothetical
//! `committed`/`vm_count`/`placement` overlay). [`Eval::score`] composes
//! the two, so cached and from-scratch evaluation share one code path and
//! one floating-point addition order — scores are bit-identical either way.

use eards_model::{Cluster, HostId, PowerState, Resources, Vm, VmId};
use eards_sim::SimTime;

use crate::config::ScoreConfig;
use crate::score::Score;

/// The round-static part of one score-matrix cell `(h, v)`.
///
/// Everything here depends only on the cluster snapshot, the config and
/// the round timestamp — not on the hypothetical placement — so it is
/// computed once per round and reused across every rescore of the cell.
#[derive(Debug, Clone, Copy)]
pub struct CellStatic {
    /// `P_req` plus the power-state precondition: `false` means the cell
    /// is `∞` regardless of the overlay state.
    pub(crate) feasible: bool,
    /// `P_virt + P_conc` as charged when `v` is *not* already on `h`
    /// (creation/migration cost plus in-flight-operation concurrency).
    pub(crate) movein: Score,
    /// `P_fault` ([`Score::ZERO`] when the term is disabled).
    pub(crate) fault: Score,
}

impl Default for CellStatic {
    fn default() -> Self {
        CellStatic {
            feasible: false,
            movein: Score::ZERO,
            fault: Score::ZERO,
        }
    }
}

/// Per-penalty attribution of one score cell, as charged for a move-in
/// (the solver's decision-time view of placing the VM on that host).
///
/// Produced by [`Eval::score_breakdown`] for the observability layer:
/// the trace records *why* a chosen move scored what it did. Terms that
/// are disabled by the configuration are reported as `0.0`; an
/// infeasible cell reports every term (and the total) as `∞`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBreakdown {
    /// `P_virt + P_conc` — the static move-in penalties.
    pub movein: f64,
    /// `P_pwr` — the consolidation force.
    pub pwr: f64,
    /// `P_SLA` — the projected-fulfilment penalty.
    pub sla: f64,
    /// `P_fault` — the reliability penalty.
    pub fault: f64,
    /// Sum of the terms (`∞` for an infeasible cell).
    pub total: f64,
}

/// Score evaluator over the cluster plus a tentative placement of the
/// matrix VMs.
pub struct Eval<'a> {
    cluster: &'a Cluster,
    cfg: &'a ScoreConfig,
    now: SimTime,
    /// Matrix columns.
    vms: Vec<VmId>,
    /// The columns' VM records, resolved once at construction. The
    /// cluster stores VMs in a hash map, and scoring reads each column's
    /// record several times per cell — at datacenter scale those repeated
    /// hash lookups dominate the matrix fill, so they are paid exactly
    /// once per column here.
    vm_refs: Vec<&'a Vm>,
    /// Original placement of each matrix VM (`None` = virtual host).
    original: Vec<Option<usize>>,
    /// Current hypothetical placement.
    placement: Vec<Option<usize>>,
    /// Committed resources per host under the hypothesis.
    committed: Vec<Resources>,
    /// VM count per host under the hypothesis (resident + incoming).
    vm_count: Vec<usize>,
}

impl<'a> Eval<'a> {
    /// Builds an evaluator for the given matrix VMs, starting from their
    /// real placements.
    pub fn new(cluster: &'a Cluster, cfg: &'a ScoreConfig, now: SimTime, vms: Vec<VmId>) -> Self {
        Self::new_in(
            cluster,
            cfg,
            now,
            vms,
            &mut crate::matrix::EngineBuffers::default(),
        )
    }

    /// Like [`Eval::new`], but recycling the vectors held in `buf` instead
    /// of allocating. Pair with [`Eval::recycle`] at the end of the round
    /// to hand them back.
    pub fn new_in(
        cluster: &'a Cluster,
        cfg: &'a ScoreConfig,
        now: SimTime,
        vms: Vec<VmId>,
        buf: &mut crate::matrix::EngineBuffers,
    ) -> Self {
        let m = cluster.num_hosts();
        let mut committed = std::mem::take(&mut buf.committed);
        committed.clear();
        committed.extend((0..m).map(|i| cluster.committed(HostId(i as u32))));
        let mut vm_count = std::mem::take(&mut buf.vm_count);
        vm_count.clear();
        vm_count.extend(
            cluster
                .hosts()
                .iter()
                .map(|h| h.resident.len() + h.incoming.len()),
        );
        // Borrowed references can't live in the recycled buffers, but a
        // vector of pointers is cheap to rebuild each round.
        let vm_refs: Vec<&'a Vm> = vms.iter().map(|&v| cluster.vm(v)).collect();
        let mut original = std::mem::take(&mut buf.original);
        original.clear();
        original.extend(vm_refs.iter().map(|vm| vm.host.map(|h| h.raw() as usize)));
        let mut placement = std::mem::take(&mut buf.placement);
        placement.clear();
        placement.extend_from_slice(&original);
        Eval {
            cluster,
            cfg,
            now,
            placement,
            original,
            vms,
            vm_refs,
            committed,
            vm_count,
        }
    }

    /// Hands the evaluator's allocations (including the VM column vector)
    /// back for reuse in a later round.
    pub fn recycle(self, buf: &mut crate::matrix::EngineBuffers) {
        buf.vms = self.vms;
        buf.original = self.original;
        buf.placement = self.placement;
        buf.committed = self.committed;
        buf.vm_count = self.vm_count;
    }

    /// The configured migration hysteresis (see
    /// [`ScoreConfig::min_migration_gain`]).
    pub fn min_migration_gain(&self) -> f64 {
        self.cfg.min_migration_gain
    }

    /// Number of hosts (matrix rows minus the virtual host).
    pub fn num_hosts(&self) -> usize {
        self.committed.len()
    }

    /// Number of matrix VMs (columns).
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// The matrix VMs.
    pub fn vms(&self) -> &[VmId] {
        &self.vms
    }

    /// Original placement of column `v`.
    pub fn original_of(&self, v: usize) -> Option<usize> {
        self.original[v]
    }

    /// Hypothetical placement of column `v`.
    pub fn placement_of(&self, v: usize) -> Option<usize> {
        self.placement[v]
    }

    /// Cost of VM `v` where it currently (hypothetically) sits; infinite on
    /// the virtual host, which makes allocating it maximally beneficial.
    pub fn current_cost(&self, v: usize) -> Score {
        match self.placement[v] {
            Some(h) => self.score(h, v),
            None => Score::INFINITE,
        }
    }

    /// Moves VM `v` to host `h` in the hypothesis.
    pub fn apply_move(&mut self, v: usize, h: usize) {
        let req = self.vm_refs[v].requested;
        if let Some(old) = self.placement[v] {
            // The overlay is built from the cluster's own committed totals,
            // so removing a VM from its hypothetical host can never underflow
            // them; the `saturating_sub` below is belt-and-braces only. A
            // debug-build trip here means the overlay diverged from the
            // bookkeeping invariant (e.g. a double-remove).
            debug_assert!(
                self.vm_count[old] > 0,
                "apply_move(v={v}, h={h}): host {old} has no VMs to remove"
            );
            debug_assert!(
                req.cpu <= self.committed[old].cpu,
                "apply_move(v={v}, h={h}): cpu underflow on host {old} \
                 (removing {:?} from {:?})",
                req.cpu,
                self.committed[old].cpu,
            );
            debug_assert!(
                req.mem <= self.committed[old].mem,
                "apply_move(v={v}, h={h}): mem underflow on host {old} \
                 (removing {:?} from {:?})",
                req.mem,
                self.committed[old].mem,
            );
            self.committed[old] = Resources::new(
                self.committed[old].cpu.saturating_sub(req.cpu),
                eards_model::Mem(self.committed[old].mem.mib().saturating_sub(req.mem.mib())),
            );
            self.vm_count[old] -= 1;
        }
        self.committed[h] = self.committed[h].plus(req);
        self.vm_count[h] += 1;
        self.placement[v] = Some(h);
    }

    /// Resources requested by column `v`'s VM.
    pub fn requested_of(&self, v: usize) -> Resources {
        self.vm_refs[v].requested
    }

    /// Free (uncommitted) capacity of host `h` under the current
    /// hypothesis. The sharded solver's balancer uses this to pre-filter
    /// which shards could possibly take an unplaced VM without scoring
    /// every cell.
    pub fn free_capacity(&self, h: usize) -> Resources {
        let cap = self.cluster.host(HostId(h as u32)).spec.capacity();
        Resources::new(
            cap.cpu.saturating_sub(self.committed[h].cpu),
            eards_model::Mem(cap.mem.mib().saturating_sub(self.committed[h].mem.mib())),
        )
    }

    /// Occupation host `h` would have with VM `v` placed there (the
    /// paper's `O(h, vm)`), under the current hypothesis.
    fn occupation_with(&self, h: usize, v: usize) -> f64 {
        let cap = self.cluster.host(HostId(h as u32)).spec.capacity();
        let mut used = self.committed[h];
        if self.placement[v] != Some(h) {
            used = used.plus(self.vm_refs[v].requested);
        }
        used.occupation_in(cap)
    }

    /// VM count host `h` would have with `v` placed there.
    fn count_with(&self, h: usize, v: usize) -> usize {
        self.vm_count[h] + usize::from(self.placement[v] != Some(h))
    }

    /// The full score of hosting matrix VM `v` on host `h` under the
    /// current hypothesis.
    ///
    /// Equivalent to [`Eval::static_cell`] followed by
    /// [`Eval::score_with_static`]; the incremental engine caches the
    /// static half and re-runs only the dynamic half.
    pub fn score(&self, h: usize, v: usize) -> Score {
        self.score_with_static(h, v, &self.static_cell(h, v))
    }

    /// Computes the round-static part of cell `(h, v)`: `P_req`
    /// feasibility, the move-in `P_virt + P_conc`, and `P_fault`. None of
    /// these depend on the hypothetical placement, so the result stays
    /// valid across every [`Eval::apply_move`] of the round.
    pub fn static_cell(&self, h: usize, v: usize) -> CellStatic {
        let host = self.cluster.host(HostId(h as u32));
        let vm = self.vm_refs[v];

        // P_req (§III-A.1) — plus the basic physical precondition that the
        // host is actually up (an off host "cannot fulfil" anything).
        let feasible = host.power == PowerState::On && host.spec.satisfies(&vm.job.requirements);

        let mut movein = Score::ZERO;
        // P_virt (§III-A.3).
        if self.cfg.virt_penalty {
            movein += self.p_virt_movein(h, v);
        }
        // P_conc (§III-A.3, concurrency).
        if self.cfg.conc_penalty {
            movein += self.p_conc_movein(h);
        }

        // P_fault (§III-A.6, extension). Reads the *effective* reliability
        // so a flapping-host blacklist penalty steers placements away;
        // without a penalty this is bit-identical to the raw spec value.
        let fault = if self.cfg.fault_penalty {
            let rel = self.cluster.effective_reliability(HostId(h as u32));
            Score::finite(((1.0 - rel) - vm.job.fault_tolerance) * self.cfg.c_fail)
        } else {
            Score::ZERO
        };

        CellStatic {
            feasible,
            movein,
            fault,
        }
    }

    /// Computes the dynamic part of cell `(h, v)` on top of a cached
    /// [`CellStatic`], preserving the exact floating-point addition order
    /// of the monolithic formula (so cached and fresh scores are
    /// bit-identical).
    pub fn score_with_static(&self, h: usize, v: usize, cell: &CellStatic) -> Score {
        if !cell.feasible {
            return Score::INFINITE;
        }

        // P_res (§III-A.2).
        let occupation = self.occupation_with(h, v);
        if occupation > 1.0 {
            return Score::INFINITE;
        }

        // P_virt and P_conc are both ZERO for the host the VM already
        // (hypothetically) sits on, so the placed branch starts from ZERO.
        let mut total = if self.placement[v] == Some(h) {
            Score::ZERO
        } else {
            cell.movein
        };

        // P_pwr (§III-A.4) — always on: it is what makes the policy
        // consolidate at all (present in every SB variant).
        total += self.p_pwr(h, v, occupation);

        // P_SLA (§III-A.5, extension).
        if self.cfg.sla_penalty {
            let p = self.p_sla(h, v);
            if p.is_infinite() {
                return Score::INFINITE;
            }
            total += p;
        }

        // P_fault (§III-A.6, extension).
        if self.cfg.fault_penalty {
            total += cell.fault;
        }

        total
    }

    /// Per-penalty attribution of cell `(h, v)` under the current
    /// hypothesis, charged as a move-in.
    ///
    /// Intended for tracing the moves a round actually chose: called
    /// after the solver applied them, each term reflects the end-of-round
    /// overlay (`occupation`/`count` *with* the VM on `h`), which for the
    /// placed VM is exactly the state its decision score evaluated.
    pub fn score_breakdown(&self, h: usize, v: usize) -> ScoreBreakdown {
        let cell = self.static_cell(h, v);
        let occupation = self.occupation_with(h, v);
        if !cell.feasible || occupation > 1.0 {
            return ScoreBreakdown {
                movein: f64::INFINITY,
                pwr: f64::INFINITY,
                sla: f64::INFINITY,
                fault: f64::INFINITY,
                total: f64::INFINITY,
            };
        }
        let movein = cell.movein.value();
        let pwr = self.p_pwr(h, v, occupation).value();
        let sla = if self.cfg.sla_penalty {
            self.p_sla(h, v).value()
        } else {
            0.0
        };
        let fault = if self.cfg.fault_penalty {
            cell.fault.value()
        } else {
            0.0
        };
        ScoreBreakdown {
            movein,
            pwr,
            sla,
            fault,
            total: movein + pwr + sla + fault,
        }
    }

    /// Creation / migration overhead penalty as charged when `v` is not
    /// already on `h` (the resident-host case is handled by the caller;
    /// see [`Eval::score_with_static`]). VMs with an operation already in
    /// flight never appear as matrix columns, so the `∞` branch of the
    /// paper's `P_virt` is realized by exclusion rather than by a score.
    fn p_virt_movein(&self, h: usize, v: usize) -> Score {
        let host = self.cluster.host(HostId(h as u32));
        let vm = self.vm_refs[v];
        if self.original[v].is_none() {
            // New VM: creation cost on this host.
            return Score::finite(host.spec.class.creation_cost().as_secs_f64());
        }
        // Migration cost with the remaining-time discount: migrating a VM
        // that (per the user estimate) finishes soon is heavily penalized.
        let cm = host.spec.class.migration_cost().as_secs_f64();
        let tr = vm.user_remaining_secs(self.now);
        if tr < cm {
            Score::finite(2.0 * cm)
        } else {
            Score::finite(cm * cm / (2.0 * tr))
        }
    }

    /// Concurrency penalty: the summed cost of operations already running
    /// on the host, charged to VMs that are not yet there (§III-A.3).
    fn p_conc_movein(&self, h: usize) -> Score {
        let host = self.cluster.host(HostId(h as u32));
        let total: f64 = host.ops.iter().map(|op| op.cost().as_secs_f64()).sum();
        Score::finite(total)
    }

    /// Power/consolidation penalty (§III-A.4):
    /// `T_empty(h)·C_e − O(h, vm)·C_f`.
    fn p_pwr(&self, h: usize, v: usize, occupation: f64) -> Score {
        let count = self.count_with(h, v);
        let t_empty = if count <= self.cfg.th_empty { 1.0 } else { 0.0 };
        Score::finite(t_empty * self.cfg.c_empty - occupation * self.cfg.c_fill)
    }

    /// Dynamic SLA enforcement penalty (§III-A.5). Fulfilment is projected
    /// for the *candidate* host from the CPU it could offer the VM.
    fn p_sla(&self, h: usize, v: usize) -> Score {
        let vm = self.vm_refs[v];
        let deadline = vm.job.deadline().as_secs_f64();
        if deadline <= 0.0 {
            return Score::finite(self.cfg.c_sla);
        }
        let cap = self.cluster.host(HostId(h as u32)).spec.cpu.as_f64();
        let mut committed_cpu = self.committed[h].cpu.as_f64();
        if self.placement[v] == Some(h) {
            committed_cpu -= vm.requested.cpu.as_f64();
        }
        let free = (cap - committed_cpu).max(0.0);
        let rate = vm.job.cpu.as_f64().min(free);
        let elapsed = self.now.saturating_since(vm.job.submit).as_secs_f64();
        let projected = if rate > 0.0 {
            elapsed + vm.remaining_work() / rate
        } else {
            2.0 * deadline.max(elapsed)
        };
        let fulfillment = (deadline / projected).min(1.0);
        if fulfillment >= 1.0 {
            Score::ZERO
        } else if fulfillment > self.cfg.th_sla || self.original[v].is_none() {
            // Queued VMs are never scored ∞ here: an already-doomed job must
            // still be placeable somewhere (the paper's virtual host would
            // otherwise hold it forever).
            Score::finite(self.cfg.c_sla)
        } else {
            Score::INFINITE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cpu, HostClass, HostSpec, Job, JobId, Mem, Requirements};
    use eards_sim::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn cluster(classes: &[HostClass]) -> Cluster {
        Cluster::new(
            classes
                .iter()
                .enumerate()
                .map(|(i, &c)| HostSpec::standard(HostId(i as u32), c))
                .collect(),
            PowerState::On,
        )
    }

    fn job(id: u64, cpu: u32, secs: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(secs),
            1.5,
        )
    }

    #[test]
    fn infeasible_hosts_score_infinite() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        c.begin_power_off(HostId(1), t(0));
        let vm = c.submit_job(job(1, 100, 600));
        let cfg = ScoreConfig::sb0();
        let eval = Eval::new(&c, &cfg, t(0), vec![vm]);
        assert!(!eval.score(0, 0).is_infinite());
        assert!(eval.score(1, 0).is_infinite(), "off host is infeasible");
        assert_eq!(
            eval.current_cost(0),
            Score::INFINITE,
            "queued = virtual host"
        );
    }

    #[test]
    fn p_req_rejects_unsatisfied_requirements() {
        let mut c = cluster(&[HostClass::Medium]);
        let mut j = job(1, 100, 600);
        j.requirements = Requirements {
            min_host_cpus: 8,
            ..Requirements::ANY
        };
        let vm = c.submit_job(j);
        let cfg = ScoreConfig::sb0();
        let eval = Eval::new(&c, &cfg, t(0), vec![vm]);
        assert!(eval.score(0, 0).is_infinite());
    }

    #[test]
    fn p_res_rejects_overcommit() {
        let mut c = cluster(&[HostClass::Medium]);
        let a = c.submit_job(job(1, 300, 600));
        c.start_creation(a, HostId(0), t(0), t(40));
        c.finish_creation(a, t(40));
        let b = c.submit_job(job(2, 200, 600));
        let cfg = ScoreConfig::sb0();
        let eval = Eval::new(&c, &cfg, t(40), vec![b]);
        assert!(eval.score(0, 0).is_infinite(), "300+200 > 400");
    }

    #[test]
    fn p_virt_charges_creation_cost_by_class() {
        let mut c = cluster(&[HostClass::Fast, HostClass::Slow]);
        let vm = c.submit_job(job(1, 100, 600));
        let cfg = ScoreConfig::sb1();
        let eval = Eval::new(&c, &cfg, t(0), vec![vm]);
        let fast = eval.score(0, 0).value();
        let slow = eval.score(1, 0).value();
        // Same P_pwr on both (equal occupation/counts); creation cost
        // differs by 60 − 30 = 30 s.
        assert!((slow - fast - 30.0).abs() < 1e-9, "fast {fast} slow {slow}");
    }

    #[test]
    fn p_virt_migration_discount_matches_formula() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        let vm = c.submit_job(job(1, 100, 1000)); // Tu = 1000 s
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.finish_creation(vm, t(40));
        let cfg = ScoreConfig::sb(); // migration on, virt on
                                     // At t = 200: Tr = 1000 − 200 = 800 ≥ Cm = 60 ⇒ Pm = 60²/(2·800) = 2.25.
        let eval = Eval::new(&c, &cfg, t(200), vec![vm]);
        let stay = eval.score(0, 0).value();
        let mv = eval.score(1, 0).value();
        // Both hosts end with 1 VM / same occupation ⇒ same P_pwr; the
        // difference is exactly Pm.
        assert!((mv - stay - 2.25).abs() < 1e-9, "stay {stay} move {mv}");

        // At t = 950: Tr = 50 < Cm ⇒ Pm = 2·Cm = 120.
        let eval = Eval::new(&c, &cfg, t(950), vec![vm]);
        let stay = eval.score(0, 0).value();
        let mv = eval.score(1, 0).value();
        assert!((mv - stay - 120.0).abs() < 1e-9);
    }

    #[test]
    fn p_conc_charges_inflight_ops_to_foreign_vms() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        let a = c.submit_job(job(1, 100, 600));
        c.start_creation(a, HostId(0), t(0), t(40)); // 40 s op in flight
        let b = c.submit_job(job(2, 100, 600));
        let cfg = ScoreConfig::sb2();
        let eval = Eval::new(&c, &cfg, t(10), vec![b]);
        let busy = eval.score(0, 0).value();
        let idle = eval.score(1, 0).value();
        // Host 0 carries the 40 s concurrency penalty but also one more VM
        // (count 2 > TH_empty ⇒ no C_e) and double occupation (bigger C_f
        // reward): busy − idle = 40 − C_e − 0.25·C_f = 40 − 20 − 10 = 10.
        assert!((busy - idle - 10.0).abs() < 1e-9, "busy {busy} idle {idle}");
    }

    #[test]
    fn p_pwr_prefers_fuller_hosts() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        let a = c.submit_job(job(1, 200, 6000));
        c.start_creation(a, HostId(0), t(0), t(40));
        c.finish_creation(a, t(40));
        let b = c.submit_job(job(2, 100, 600));
        let cfg = ScoreConfig::sb0();
        let eval = Eval::new(&c, &cfg, t(40), vec![b]);
        let full = eval.score(0, 0); // host with the 200% VM
        let empty = eval.score(1, 0); // empty host
        assert!(full < empty, "consolidation must win: {full} vs {empty}");
        // Quantitatively: full = −0.75·40 = −30 (2 VMs ⇒ no C_e);
        // empty = 20 − 0.25·40 = 10 (1 VM ⇒ emptiable).
        assert!((full.value() + 30.0).abs() < 1e-9);
        assert!((empty.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn p_sla_bands() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        // Load host 0 to 400 so a newcomer would get no CPU there.
        let a = c.submit_job(job(1, 400, 6000));
        c.start_creation(a, HostId(0), t(0), t(40));
        c.finish_creation(a, t(40));
        let b = c.submit_job(job(2, 100, 1000));
        let cfg = ScoreConfig::full();
        let eval = Eval::new(&c, &cfg, t(40), vec![b]);
        // Host 0 is occupation-infeasible anyway; host 1 offers full rate
        // ⇒ fulfilment 1 ⇒ no SLA penalty, only P_pwr (+P_fault = 0) + Cc.
        let s1 = eval.score(1, 0).value();
        assert!((s1 - (20.0 - 0.25 * 40.0 + 40.0)).abs() < 1e-9, "{s1}");
    }

    #[test]
    fn p_fault_scales_with_reliability_gap() {
        let mut specs = vec![
            HostSpec::standard(HostId(0), HostClass::Medium),
            HostSpec::standard(HostId(1), HostClass::Medium),
        ];
        specs[1].reliability = 0.9;
        let mut c = Cluster::new(specs, PowerState::On);
        let vm = c.submit_job(job(1, 100, 600));
        let cfg = ScoreConfig::full();
        let eval = Eval::new(&c, &cfg, t(0), vec![vm]);
        let reliable = eval.score(0, 0).value();
        let flaky = eval.score(1, 0).value();
        // Identical except P_fault = (0.1 − 0)·500 = 50.
        assert!((flaky - reliable - 50.0).abs() < 1e-9);
    }

    #[test]
    fn blacklist_penalty_raises_p_fault() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        let vm = c.submit_job(job(1, 100, 600));
        let cfg = ScoreConfig::full();
        let eval = Eval::new(&c, &cfg, t(0), vec![vm]);
        let clean = eval.score(0, 0).value();
        assert_eq!(clean, eval.score(1, 0).value(), "identical hosts");
        drop(eval);
        // Blacklist host 0 as flapping: P_fault rises by 0.05·500 = 25.
        c.blacklist(HostId(0), 0.05);
        let eval = Eval::new(&c, &cfg, t(0), vec![vm]);
        let listed = eval.score(0, 0).value();
        assert!((listed - clean - 25.0).abs() < 1e-9, "{listed} vs {clean}");
    }

    #[test]
    fn apply_move_updates_hypothesis() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        let a = c.submit_job(job(1, 200, 600));
        let b = c.submit_job(job(2, 300, 600));
        let cfg = ScoreConfig::sb0();
        let mut eval = Eval::new(&c, &cfg, t(0), vec![a, b]);
        eval.apply_move(0, 0); // a → host 0
        assert_eq!(eval.placement_of(0), Some(0));
        assert_eq!(eval.current_cost(0), eval.score(0, 0));
        // b (300) no longer fits host 0 beside a (200).
        assert!(eval.score(0, 1).is_infinite());
        assert!(!eval.score(1, 1).is_infinite());
        // Moving a away frees host 0 again.
        eval.apply_move(0, 1);
        assert!(!eval.score(0, 1).is_infinite());
    }
}
