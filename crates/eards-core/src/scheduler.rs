//! The Score-Based Scheduler — the paper's contribution, as a
//! [`Policy`].
//!
//! Each scheduling round (§III-A): collect the candidate VMs (the
//! virtual-host queue, plus every running VM when migration is enabled;
//! VMs with in-flight operations are pinned and excluded), build the
//! incremental score matrix ([`Eval`] overlay + [`ScoreMatrix`] cell
//! cache, recycling one [`EngineBuffers`] allocation across rounds),
//! hill-climb it with [`solve_matrix`], and emit the resulting
//! create/migrate actions. Power on/off candidate ranking (§III-C) is
//! driven by lazily aggregated matrix rows.

use eards_model::{
    Action, Cluster, DegradeStats, HostId, Policy, ScheduleContext, ScheduleReason, ShardMap,
    ShardSpec, VmId, VmState,
};
use eards_obs::{Obs, ObsEvent};
use eards_sim::{Persist, PersistError, Reader, Writer};

use crate::budget::{DegradeLevel, OverloadControl, WorkMeter};
use crate::config::ScoreConfig;
use crate::eval::Eval;
use crate::matrix::{EngineBuffers, ScoreMatrix};
use crate::shard::solve_sharded;
use crate::solver::{solve_matrix_at, Solution};

/// Stable tag for a [`ScheduleReason`], used in trace events.
fn reason_str(reason: ScheduleReason) -> &'static str {
    match reason {
        ScheduleReason::VmArrived => "vm_arrived",
        ScheduleReason::VmFinished => "vm_finished",
        ScheduleReason::SlaViolation => "sla_violation",
        ScheduleReason::HostStateChanged => "host_state_changed",
        ScheduleReason::Periodic => "periodic",
    }
}

/// The score-based scheduling policy (SB0/SB1/SB2/SB depending on its
/// [`ScoreConfig`]).
///
/// ```
/// use eards_core::{ScoreConfig, ScoreScheduler};
/// use eards_model::*;
/// use eards_sim::{SimDuration, SimTime};
///
/// let mut cluster = Cluster::new(
///     vec![
///         HostSpec::standard(HostId(0), HostClass::Fast),
///         HostSpec::standard(HostId(1), HostClass::Slow),
///     ],
///     PowerState::On,
/// );
/// let vm = cluster.submit_job(Job::new(
///     JobId(0), SimTime::ZERO, Cpu(100), Mem::gib(1),
///     SimDuration::from_secs(600), 1.5,
/// ));
///
/// // SB1 weighs creation cost: the fast node (C_c = 30 s) wins.
/// let mut sched = ScoreScheduler::new(ScoreConfig::sb1());
/// let ctx = ScheduleContext { now: SimTime::ZERO, reason: ScheduleReason::VmArrived };
/// assert_eq!(
///     sched.schedule(&cluster, &ctx),
///     vec![Action::Create { vm, host: HostId(0) }],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ScoreScheduler {
    /// Penalty switches and cost parameters.
    pub cfg: ScoreConfig,
    /// Engine allocations recycled across rounds: the scheduler outlives
    /// each round's `&Cluster` borrow, so the `O(M·N)` matrix storage is
    /// set up once and reused instead of reallocated every round.
    buffers: EngineBuffers,
    /// Observability handle; disabled by default (every call is a no-op).
    obs: Obs,
    /// Overload control (work budget + degradation ladder). `None` keeps
    /// the legacy always-full-quality path.
    ctl: Option<OverloadControl>,
    /// Ladder driver state, persisted so a restored run replays the same
    /// rung sequence bit-for-bit.
    state: DegradeState,
    /// Sharding request for the hierarchical solver (`None` = the dense
    /// single-matrix path). The realized [`ShardMap`] is re-derived from
    /// the live cluster size every round, so it tracks cluster growth.
    shards: Option<ShardSpec>,
    /// Round-robin cursor for dealing queue columns to shards. Persisted:
    /// a restored run must deal the same columns to the same shards.
    shard_cursor: u64,
    /// Cumulative overload diagnostics (transient; rebuilt from zero on
    /// restore — the bench harness reads it through
    /// [`Policy::degrade_stats`]).
    stats: DegradeStats,
}

/// The ladder driver's persisted state.
///
/// `work_ewma` smooths recent rounds' deterministic work spend. Because
/// the anytime solver stops *at* the budget, the EWMA alone can never
/// exceed it by much — escalation is driven by the exhaustion flag (the
/// round wanted more work than it got); the EWMA drives recovery (relax
/// only once typical spend is comfortably under budget).
#[derive(Debug, Clone, Copy, PartialEq)]
struct DegradeState {
    rung: DegradeLevel,
    work_ewma: f64,
    last_exhausted: bool,
}

impl Default for DegradeState {
    fn default() -> Self {
        DegradeState {
            rung: DegradeLevel::L0Full,
            work_ewma: 0.0,
            last_exhausted: false,
        }
    }
}

impl Persist for DegradeState {
    fn persist(&self, w: &mut Writer) {
        self.rung.persist(w);
        w.put_f64(self.work_ewma);
        w.put_bool(self.last_exhausted);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(DegradeState {
            rung: DegradeLevel::restore(r)?,
            work_ewma: r.get_f64()?,
            last_exhausted: r.get_bool()?,
        })
    }
}

impl ScoreScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: ScoreConfig) -> Self {
        Self::with_obs(cfg, Obs::disabled())
    }

    /// Creates a scheduler that records solver spans, sweep-latency and
    /// dirty-row-invalidation metrics, and per-penalty score attributions
    /// into `obs`.
    pub fn with_obs(cfg: ScoreConfig, obs: Obs) -> Self {
        ScoreScheduler {
            cfg,
            buffers: EngineBuffers::new(),
            obs,
            ctl: None,
            state: DegradeState::default(),
            shards: None,
            shard_cursor: 0,
            stats: DegradeStats::default(),
        }
    }

    /// Arms overload control: a per-round solver work budget and (when
    /// `ctl.ladder`) the L0→L3 degradation ladder. Without this the
    /// scheduler always runs the full-quality legacy path.
    pub fn with_overload(mut self, ctl: OverloadControl) -> Self {
        self.ctl = Some(ctl);
        self
    }

    /// The armed overload control, if any.
    pub fn overload(&self) -> Option<OverloadControl> {
        self.ctl
    }

    /// Arms the sharded hierarchical solver: full-quality rounds
    /// partition the cluster into rack-aligned shards that hill-climb
    /// locally, with a cross-shard balancer re-homing stranded queue
    /// columns between passes (see [`crate::shard`]). A spec that
    /// realizes a single shard (small cluster, or `count <= 1`) keeps the
    /// dense path, which the sharded solver matches bit-for-bit anyway.
    pub fn with_shards(mut self, spec: ShardSpec) -> Self {
        self.shards = Some(spec);
        self
    }

    /// The armed sharding request, if any.
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        self.shards
    }

    /// The shard map the scheduler would use this round, if sharding is
    /// armed and realizes more than one shard for `num_hosts`.
    fn shard_map_for(&self, num_hosts: usize) -> Option<ShardMap> {
        let spec = self.shards.filter(|s| s.count >= 2)?;
        if num_hosts == 0 {
            return None;
        }
        let map = ShardMap::build(num_hosts, spec.rack_size, spec.count);
        (map.num_shards() >= 2).then_some(map)
    }

    /// Picks this round's ladder rung from the persisted driver state.
    /// See [`DegradeState`] for the escalate/relax rationale.
    fn select_rung(&mut self) -> DegradeLevel {
        let Some(ctl) = self.ctl else {
            return DegradeLevel::L0Full;
        };
        if let Some(forced) = ctl.force {
            self.state.rung = forced;
            return forced;
        }
        if !ctl.ladder || ctl.budget == u64::MAX {
            return DegradeLevel::L0Full;
        }
        let budget = ctl.budget as f64;
        let mut rung = self.state.rung;
        if self.state.last_exhausted || self.state.work_ewma > budget {
            rung = rung.escalate();
        } else if self.state.work_ewma <= budget / 2.0 {
            rung = rung.relax();
        }
        self.state.rung = rung;
        rung
    }

    /// Books one executed round into the ladder state, the cumulative
    /// stats, and the observability layer.
    fn finish_round(
        &mut self,
        ctx: &ScheduleContext,
        rung: DegradeLevel,
        spent: u64,
        exhausted: bool,
    ) {
        let Some(ctl) = self.ctl else { return };
        self.state.work_ewma = ctl.alpha * spent as f64 + (1.0 - ctl.alpha) * self.state.work_ewma;
        self.state.last_exhausted = exhausted;
        self.stats.rounds += 1;
        self.stats.rounds_at[rung.index()] += 1;
        self.stats.total_work += spent;
        self.stats.max_round_work = self.stats.max_round_work.max(spent);
        if rung != DegradeLevel::L0Full {
            self.stats.degraded_rounds += 1;
        }
        if exhausted {
            self.stats.exhausted_rounds += 1;
        }
        if self.obs.is_enabled() {
            if rung != DegradeLevel::L0Full || exhausted {
                self.obs.inc(self.obs.counter("degraded_rounds"), 1);
                self.obs.record(
                    ctx.now,
                    ObsEvent::RoundDegraded {
                        level: rung.label(),
                        work_spent: spent,
                        budget: ctl.budget,
                        exhausted,
                    },
                );
            }
            if ctl.budget != u64::MAX && ctl.budget > 0 {
                let hist = self.obs.histogram(
                    "budget_utilization_pct",
                    &[10.0, 25.0, 50.0, 75.0, 90.0, 100.0],
                );
                self.obs
                    .observe(hist, spent as f64 * 100.0 / ctl.budget as f64);
            }
        }
    }

    /// L2: greedy first-feasible placement of the queue columns — no
    /// matrix, no hill climb, one `O(M)` probe scan per queued VM,
    /// charged one work unit per probed cell so even this floor rung
    /// respects the budget.
    fn greedy_first_feasible(
        eval: &mut Eval<'_>,
        budget: u64,
        rung: DegradeLevel,
    ) -> (Solution, u64) {
        let n = eval.num_vms();
        let m = eval.num_hosts();
        let mut meter = WorkMeter::with_budget(budget);
        let mut moves = Vec::new();
        let mut exhausted = false;
        'cols: for v in 0..n {
            for h in 0..m {
                if meter.exhausted() {
                    exhausted = true;
                    break 'cols;
                }
                meter.charge(1);
                if !eval.score(h, v).is_infinite() {
                    eval.apply_move(v, h);
                    moves.push((v, h));
                    break;
                }
            }
        }
        (
            Solution {
                moves,
                sweeps: 1,
                hit_move_limit: false,
                degrade: rung,
                budget_exhausted: exhausted,
            },
            meter.spent(),
        )
    }

    /// The matrix columns for the current round: the queue, plus — when
    /// migration is enabled — running VMs hosted on nodes the
    /// consolidation force actively wants drained. §III-A.4 punishes VMs
    /// on under-used hosts "since we want these VMs to move away"; a host
    /// qualifies when it is *emptiable* (≤ `TH_empty` VMs) or when its
    /// occupation is below `C_e / C_f` — the point where the emptiable
    /// penalty would outweigh the fill reward, so candidacy scales with
    /// the configured aggressiveness (Table V: higher `C_e`/`C_f` pairs
    /// migrate more). VMs on well-filled hosts have no consolidation
    /// motive; restricting the columns keeps migration counts in a sane
    /// regime instead of re-evaluating the whole datacenter every round.
    fn candidate_vms_into(&self, cluster: &Cluster, migrate_now: bool, cols: &mut Vec<VmId>) {
        cols.clear();
        cols.extend_from_slice(cluster.queue());
        if self.cfg.migration && migrate_now {
            let occ_bar = if self.cfg.c_fill > 0.0 {
                self.cfg.c_empty / self.cfg.c_fill
            } else {
                0.0
            };
            let queue_len = cols.len();
            cols.extend(
                cluster
                    .hosts()
                    .iter()
                    .filter(|h| {
                        h.resident.len() + h.incoming.len() <= self.cfg.th_empty
                            || cluster.occupation(h.spec.id) < occ_bar
                    })
                    .flat_map(|h| h.resident.iter().copied())
                    .filter(|&v| cluster.vm(v).state == VmState::Running),
            );
            cols[queue_len..].sort_unstable(); // deterministic column order
        }
    }
}

impl Policy for ScoreScheduler {
    fn name(&self) -> String {
        self.cfg.name.clone()
    }

    fn uses_migration(&self) -> bool {
        self.cfg.migration
    }

    fn schedule(&mut self, cluster: &Cluster, ctx: &ScheduleContext) -> Vec<Action> {
        // §I: the policy "periodically calculates whether to move jobs" —
        // migration columns enter the matrix only on periodic consolidation
        // rounds (and SLA-violation rounds, where a move is the remedy);
        // event-triggered rounds only place the queue.
        let migrate_now = matches!(
            ctx.reason,
            ScheduleReason::Periodic | ScheduleReason::SlaViolation
        );
        // Overload control: pick this round's ladder rung up front — L1
        // and above drop migration candidates, L3 defers the round
        // entirely (queue intact; the driver's periodic timers re-arm).
        let rung = self.select_rung();
        if rung == DegradeLevel::L3Defer {
            self.finish_round(ctx, rung, 0, false);
            return Vec::new();
        }
        let effective_migrate = migrate_now && rung == DegradeLevel::L0Full;
        let mut cols = std::mem::take(&mut self.buffers.vms);
        self.candidate_vms_into(cluster, effective_migrate, &mut cols);
        if cols.is_empty() {
            self.buffers.vms = cols;
            return Vec::new();
        }
        let queued = cluster.queue().len() as u32;
        let budget = self.ctl.map_or(u64::MAX, |c| c.budget);
        let mut eval = Eval::new_in(cluster, &self.cfg, ctx.now, cols, &mut self.buffers);
        let (sol, rows_rescored, work_spent) = {
            // Sweep latency in µs: sub-ms buckets resolve the common case,
            // the tail buckets catch pathological rounds.
            let hist = self.obs.histogram(
                "solve_us",
                &[50.0, 200.0, 1000.0, 5000.0, 25000.0, 100000.0],
            );
            let _span = self.obs.span("solve", ctx.now).with_hist(hist);
            if rung == DegradeLevel::L2Greedy {
                let (sol, spent) = Self::greedy_first_feasible(&mut eval, budget, rung);
                (sol, 0, spent)
            } else if let Some(map) = self.shard_map_for(cluster.num_hosts()) {
                let out = solve_sharded(
                    &mut eval,
                    &map,
                    self.shard_cursor,
                    self.cfg.max_moves,
                    budget,
                    rung,
                );
                // Advance the deal cursor so consecutive rounds rotate the
                // queue across shards instead of always loading shard 0.
                self.shard_cursor = self.shard_cursor.wrapping_add(out.creations_assigned);
                (out.solution, out.rows_rescored, out.work_spent)
            } else {
                let mut matrix = ScoreMatrix::new_in(&mut eval, &mut self.buffers);
                if budget != u64::MAX {
                    matrix.set_work_budget(budget);
                }
                let sol = solve_matrix_at(&mut matrix, self.cfg.max_moves, rung);
                let rows = matrix.rows_rescored();
                let spent = matrix.work_spent();
                matrix.recycle(&mut self.buffers);
                (sol, rows, spent)
            }
        };
        if self.obs.is_enabled() {
            self.obs.inc(self.obs.counter("solver_rounds"), 1);
            self.obs
                .inc(self.obs.counter("matrix_rows_rescored"), rows_rescored);
            let rows_hist = self.obs.histogram(
                "rows_rescored_per_round",
                &[2.0, 8.0, 32.0, 128.0, 512.0, 2048.0],
            );
            self.obs.observe(rows_hist, rows_rescored as f64);
            self.obs.record(
                ctx.now,
                ObsEvent::ScheduleRound {
                    reason: reason_str(ctx.reason),
                    actions: sol.moves.len() as u32,
                    queued,
                },
            );
            // Attribute each chosen move's score term by term. The solver
            // already applied the moves to the overlay, so each breakdown
            // reflects exactly the end-of-round state its decision saw.
            for &(v, h) in &sol.moves {
                let bd = eval.score_breakdown(h, v);
                self.obs.record(
                    ctx.now,
                    ObsEvent::ScoreAttribution {
                        vm: eval.vms()[v].raw(),
                        host: h as u32,
                        migration: eval.original_of(v).is_some(),
                        movein: bd.movein,
                        pwr: bd.pwr,
                        sla: bd.sla,
                        fault: bd.fault,
                        total: bd.total,
                    },
                );
            }
        }

        // Each column moves at most once, so the move list maps directly
        // to actions; emission order follows solver order (most beneficial
        // first), which the driver preserves.
        let actions = sol
            .moves
            .iter()
            .map(|&(v, h)| {
                let vm = eval.vms()[v];
                let host = HostId(h as u32);
                match eval.original_of(v) {
                    None => Action::Create { vm, host },
                    Some(_) => Action::Migrate { vm, to: host },
                }
            })
            .collect();
        eval.recycle(&mut self.buffers);
        self.finish_round(ctx, rung, work_spent, sol.budget_exhausted);
        actions
    }

    /// The ladder driver state and the shard deal cursor cross rounds, so
    /// they must survive snapshot/restore or a resumed run would replay
    /// different rungs / deal queue columns to different shards. Written
    /// unconditionally (fixed layout whether or not overload control or
    /// sharding is armed — snapshot v3); `stats` is transient diagnostics
    /// and is deliberately not persisted.
    fn persist_state(&self, w: &mut Writer) {
        self.state.persist(w);
        w.put_u64(self.shard_cursor);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.state = DegradeState::restore(r)?;
        self.shard_cursor = r.get_u64()?;
        Ok(())
    }

    fn degrade_stats(&self) -> Option<DegradeStats> {
        self.ctl.map(|_| self.stats)
    }

    /// §III-C: victims for power-off are picked by the aggregated matrix
    /// row "taking into account the number of infinity scores. Those nodes
    /// with a higher score are selected to be turned off."
    fn rank_power_off(
        &self,
        cluster: &Cluster,
        now: eards_sim::SimTime,
        candidates: &[HostId],
    ) -> Vec<HostId> {
        let mut cols = Vec::new();
        self.candidate_vms_into(cluster, false, &mut cols);
        let mut eval = Eval::new(cluster, &self.cfg, now, cols);
        // Rows are scored lazily, so aggregating only the candidate rows
        // of the matrix stays O(|candidates|·N) — the rest of the matrix
        // is never materialized.
        let mut matrix = ScoreMatrix::new(&mut eval);
        let mut scored: Vec<(usize, f64, HostId)> = candidates
            .iter()
            .map(|&h| {
                let (infs, sum) = matrix.row_aggregate(h.raw() as usize);
                (infs, sum, h)
            })
            .collect();
        // More infeasible cells first, then higher aggregate cost, then
        // higher id (turn off the "back" of the datacenter first).
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.total_cmp(&a.1)).then(b.2.cmp(&a.2)));
        scored.into_iter().map(|(_, _, h)| h).collect()
    }

    /// §III-C: nodes to turn on are "selected according to a number of
    /// parameters, including reliability, boot time, etc." Reliability
    /// participates only when the `P_fault` extension is enabled — a
    /// reliability-blind configuration must not secretly be
    /// reliability-aware here.
    fn rank_power_on(&self, cluster: &Cluster, candidates: &[HostId]) -> Vec<HostId> {
        let mut ranked = candidates.to_vec();
        let fault_aware = self.cfg.fault_penalty;
        ranked.sort_by(|&a, &b| {
            let sa = &cluster.host(a).spec;
            let sb = &cluster.host(b).spec;
            let rel = if fault_aware {
                // Effective reliability, so blacklisted hosts boot last.
                cluster
                    .effective_reliability(b)
                    .total_cmp(&cluster.effective_reliability(a))
            } else {
                std::cmp::Ordering::Equal
            };
            rel.then(sa.class.boot_time().cmp(&sb.class.boot_time()))
                .then(sa.class.creation_cost().cmp(&sb.class.creation_cost()))
                .then(a.cmp(&b))
        });
        ranked
    }
}

/// Convenience: the aggregate score a host row would contribute, exposed
/// for diagnostics and tests.
pub fn row_score(eval: &Eval<'_>, host: usize) -> (usize, f64) {
    let mut infs = 0;
    let mut sum = 0.0;
    for v in 0..eval.num_vms() {
        let s = eval.score(host, v);
        if s.is_infinite() {
            infs += 1;
        } else {
            sum += s.value();
        }
    }
    (infs, sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cpu, HostClass, HostSpec, Job, JobId, Mem, PowerState, ScheduleReason};
    use eards_sim::{SimDuration, SimTime};

    fn ctx(now: u64) -> ScheduleContext {
        ScheduleContext {
            now: SimTime::from_secs(now),
            reason: ScheduleReason::Periodic,
        }
    }

    fn cluster(classes: &[HostClass]) -> Cluster {
        Cluster::new(
            classes
                .iter()
                .enumerate()
                .map(|(i, &c)| HostSpec::standard(HostId(i as u32), c))
                .collect(),
            PowerState::On,
        )
    }

    fn job(id: u64, cpu: u32, secs: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(secs),
            1.5,
        )
    }

    #[test]
    fn sb0_consolidates_new_vms() {
        let mut c = cluster(&[HostClass::Medium; 4]);
        let a = c.submit_job(job(1, 200, 600));
        let b = c.submit_job(job(2, 100, 600));
        let mut sched = ScoreScheduler::new(ScoreConfig::sb0());
        let actions = sched.schedule(&c, &ctx(0));
        assert_eq!(actions.len(), 2);
        let hosts: Vec<HostId> = actions
            .iter()
            .map(|a| match a {
                Action::Create { host, .. } => *host,
                _ => panic!("SB0 must not migrate"),
            })
            .collect();
        assert_eq!(hosts[0], hosts[1], "both land on the same host");
        let vms: Vec<VmId> = actions
            .iter()
            .map(|a| match a {
                Action::Create { vm, .. } => *vm,
                _ => unreachable!(),
            })
            .collect();
        assert!(vms.contains(&a) && vms.contains(&b));
    }

    #[test]
    fn sb1_prefers_fast_creation_nodes() {
        // Equal power situation, different creation costs: SB1 should pick
        // the fast node; SB0 (no P_virt) is indifferent and picks the
        // first-by-tiebreak.
        let mut c = cluster(&[HostClass::Slow, HostClass::Fast]);
        let vm = c.submit_job(job(1, 100, 600));
        let mut sb1 = ScoreScheduler::new(ScoreConfig::sb1());
        let actions = sb1.schedule(&c, &ctx(0));
        assert_eq!(
            actions,
            vec![Action::Create {
                vm,
                host: HostId(1)
            }],
            "fast node (Cc=30) beats slow (Cc=60)"
        );
    }

    #[test]
    fn sb2_avoids_hosts_with_inflight_ops() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        // Host 0 is creating a VM; host 1 is free but would be "emptiable".
        let a = c.submit_job(job(1, 100, 600));
        c.start_creation(a, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        let b = c.submit_job(job(2, 100, 600));
        let mut sb2 = ScoreScheduler::new(ScoreConfig::sb2());
        let actions = sb2.schedule(&c, &ctx(10));
        // Concurrency penalty (40) outweighs the consolidation edge
        // (C_e + ΔO·C_f = 20 + 10): SB2 picks the idle host.
        assert_eq!(
            actions,
            vec![Action::Create {
                vm: b,
                host: HostId(1)
            }]
        );

        // SB1 (no P_conc) makes the opposite call — it stacks.
        let mut sb1 = ScoreScheduler::new(ScoreConfig::sb1());
        let actions = sb1.schedule(&c, &ctx(10));
        assert_eq!(
            actions,
            vec![Action::Create {
                vm: b,
                host: HostId(0)
            }]
        );
    }

    #[test]
    fn sb_emits_consolidation_migrations() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        for (i, h) in [(0u64, HostId(0)), (1, HostId(1))] {
            let vm = c.submit_job(job(i, 150, 100_000));
            c.start_creation(vm, h, SimTime::ZERO, SimTime::from_secs(40));
            c.finish_creation(vm, SimTime::from_secs(40));
        }
        let mut sb = ScoreScheduler::new(ScoreConfig::sb());
        let actions = sb.schedule(&c, &ctx(100));
        assert_eq!(actions.len(), 1);
        assert!(
            matches!(actions[0], Action::Migrate { .. }),
            "two half-empty hosts must merge: {actions:?}"
        );
    }

    #[test]
    fn migration_suppressed_near_completion() {
        // Same situation, but the jobs are about to finish (T_r small):
        // P_m = 2·C_m dwarfs the consolidation gain, so SB leaves them.
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        for (i, h) in [(0u64, HostId(0)), (1, HostId(1))] {
            let vm = c.submit_job(job(i, 150, 130));
            c.start_creation(vm, h, SimTime::ZERO, SimTime::from_secs(40));
            c.finish_creation(vm, SimTime::from_secs(40));
        }
        let mut sb = ScoreScheduler::new(ScoreConfig::sb());
        let actions = sb.schedule(&c, &ctx(100)); // T_r = 30 s < C_m = 60 s
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn queued_vm_with_no_feasible_host_stays_queued() {
        let mut c = cluster(&[HostClass::Medium]);
        let a = c.submit_job(job(1, 400, 6000));
        c.start_creation(a, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        c.finish_creation(a, SimTime::from_secs(40));
        let _b = c.submit_job(job(2, 100, 600));
        let mut sb = ScoreScheduler::new(ScoreConfig::sb());
        let actions = sb.schedule(&c, &ctx(50));
        assert!(actions.is_empty(), "full datacenter: nothing placeable");
    }

    #[test]
    fn rank_power_on_prefers_reliable_fast_booting() {
        let mut specs = vec![
            HostSpec::standard(HostId(0), HostClass::Slow),
            HostSpec::standard(HostId(1), HostClass::Fast),
            HostSpec::standard(HostId(2), HostClass::Fast),
        ];
        specs[2].reliability = 0.8;
        let c = Cluster::new(specs, PowerState::Off);
        // Reliability only ranks when the P_fault extension is enabled.
        let sched = ScoreScheduler::new(ScoreConfig::full());
        let ranked = sched.rank_power_on(&c, &[HostId(0), HostId(1), HostId(2)]);
        assert_eq!(ranked, vec![HostId(1), HostId(0), HostId(2)]);

        // A fault-blind configuration ignores reliability: both Fast nodes
        // rank ahead of the Slow one, in id order.
        let blind = ScoreScheduler::new(ScoreConfig::sb());
        let ranked = blind.rank_power_on(&c, &[HostId(0), HostId(1), HostId(2)]);
        assert_eq!(ranked, vec![HostId(1), HostId(2), HostId(0)]);
    }

    #[test]
    fn rank_power_off_prefers_costly_hosts() {
        // Host 1 is slow (higher creation cost in the rows once P_virt is
        // on) — it should be offered for power-off before the fast host.
        let mut c = cluster(&[HostClass::Fast, HostClass::Slow]);
        let _q = c.submit_job(job(1, 100, 600));
        let sched = ScoreScheduler::new(ScoreConfig::sb1());
        let ranked = sched.rank_power_off(&c, SimTime::ZERO, &[HostId(0), HostId(1)]);
        assert_eq!(ranked, vec![HostId(1), HostId(0)]);
    }

    #[test]
    fn rank_power_off_tiebreak_matches_partial_cmp_reference() {
        // `total_cmp` replaced `partial_cmp(..).expect(..)` in the
        // power-off ranking (lint D004). For the finite sums the solver
        // produces the two comparators must order identically — Tables
        // II–IV depend on the exact host sequence — so pin the ranking
        // against a reference sort using the old comparator, across
        // cluster shapes that include equal-sum ties (identical classes).
        for (shape, queued) in [
            (vec![HostClass::Medium; 4], vec![(1u64, 100u32, 600u64)]),
            (
                vec![
                    HostClass::Fast,
                    HostClass::Medium,
                    HostClass::Medium,
                    HostClass::Slow,
                ],
                vec![(1, 150, 900), (2, 300, 1200)],
            ),
            (vec![HostClass::Fast, HostClass::Slow], vec![]),
        ] {
            let mut c = cluster(&shape);
            for &(id, cpu, dur) in &queued {
                let _ = c.submit_job(job(id, cpu, dur));
            }
            let candidates: Vec<HostId> = (0..shape.len() as u32).map(HostId).collect();
            let sched = ScoreScheduler::new(ScoreConfig::sb1());
            let ranked = sched.rank_power_off(&c, SimTime::ZERO, &candidates);

            let mut cols = Vec::new();
            sched.candidate_vms_into(&c, false, &mut cols);
            let mut eval = Eval::new(&c, &sched.cfg, SimTime::ZERO, cols);
            let mut matrix = ScoreMatrix::new(&mut eval);
            let mut scored: Vec<(usize, f64, HostId)> = candidates
                .iter()
                .map(|&h| {
                    let (infs, sum) = matrix.row_aggregate(h.raw() as usize);
                    (infs, sum, h)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.0.cmp(&a.0)
                    // lint:allow(D004): the old comparator IS the oracle here
                    .then(b.1.partial_cmp(&a.1).expect("finite sums"))
                    .then(b.2.cmp(&a.2))
            });
            let reference: Vec<HostId> = scored.into_iter().map(|(_, _, h)| h).collect();
            assert_eq!(ranked, reference, "shape {shape:?}");
        }
    }

    #[test]
    fn empty_queue_no_migration_is_a_noop() {
        let c = cluster(&[HostClass::Medium]);
        let mut sched = ScoreScheduler::new(ScoreConfig::sb2());
        assert!(sched.schedule(&c, &ctx(0)).is_empty());
    }

    #[test]
    fn unlimited_overload_control_is_bit_identical_to_unarmed() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Fast, HostClass::Slow]);
        for i in 0..4 {
            let _ = c.submit_job(job(i, 120, 900));
        }
        let mut plain = ScoreScheduler::new(ScoreConfig::full());
        let mut armed = ScoreScheduler::new(ScoreConfig::full())
            .with_overload(OverloadControl::with_budget(u64::MAX));
        assert_eq!(plain.schedule(&c, &ctx(0)), armed.schedule(&c, &ctx(0)));
    }

    #[test]
    fn ladder_escalates_on_exhaustion_and_relaxes_when_quiet() {
        let mut s = ScoreScheduler::new(ScoreConfig::sb())
            .with_overload(OverloadControl::with_budget(1000));
        assert_eq!(s.select_rung(), DegradeLevel::L0Full);
        // Three budget-blown rounds climb one rung each (the exhaustion
        // flag drives escalation — the anytime solver stops *at* the
        // budget, so spend alone can never exceed it by much).
        for expect in [
            DegradeLevel::L1QueueOnly,
            DegradeLevel::L2Greedy,
            DegradeLevel::L3Defer,
        ] {
            let rung = s.state.rung;
            s.finish_round(&ctx(0), rung, 1000, true);
            assert_eq!(s.select_rung(), expect);
        }
        // L3 saturates.
        s.finish_round(&ctx(0), DegradeLevel::L3Defer, 0, true);
        assert_eq!(s.select_rung(), DegradeLevel::L3Defer);
        // Quiet rounds decay the EWMA; once it drops under half the
        // budget the ladder steps back one rung per round, to L0.
        let mut seen = Vec::new();
        for _ in 0..40 {
            let rung = s.state.rung;
            s.finish_round(&ctx(0), rung, 0, false);
            seen.push(s.select_rung());
            if *seen.last().unwrap() == DegradeLevel::L0Full {
                break;
            }
        }
        assert_eq!(seen.last(), Some(&DegradeLevel::L0Full), "{seen:?}");
        // Monotone descent: the recovery path never re-escalates.
        assert!(seen.windows(2).all(|w| w[1] <= w[0]), "{seen:?}");
        let stats = s.degrade_stats().expect("armed scheduler reports stats");
        assert!(stats.degraded_rounds > 0);
        assert_eq!(stats.exhausted_rounds, 4);
    }

    #[test]
    fn forced_greedy_rung_places_first_feasible() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        let a = c.submit_job(job(1, 100, 600));
        let b = c.submit_job(job(2, 100, 600));
        let mut s = ScoreScheduler::new(ScoreConfig::sb())
            .with_overload(OverloadControl::forced(100_000, DegradeLevel::L2Greedy));
        let actions = s.schedule(&c, &ctx(0));
        // Greedy first-feasible: both land on the first host that fits.
        assert_eq!(
            actions,
            vec![
                Action::Create {
                    vm: a,
                    host: HostId(0)
                },
                Action::Create {
                    vm: b,
                    host: HostId(0)
                },
            ]
        );
        let stats = s.degrade_stats().unwrap();
        assert_eq!(stats.rounds_at[DegradeLevel::L2Greedy.index()], 1);
        assert!(stats.max_round_work <= 100_000);
    }

    #[test]
    fn forced_defer_rung_emits_nothing() {
        let mut c = cluster(&[HostClass::Medium]);
        let _ = c.submit_job(job(1, 100, 600));
        let mut s = ScoreScheduler::new(ScoreConfig::sb())
            .with_overload(OverloadControl::forced(100, DegradeLevel::L3Defer));
        assert!(s.schedule(&c, &ctx(0)).is_empty());
        let stats = s.degrade_stats().unwrap();
        assert_eq!(stats.rounds_at[DegradeLevel::L3Defer.index()], 1);
        assert_eq!(stats.total_work, 0);
    }

    #[test]
    fn greedy_rung_respects_infeasibility() {
        // One saturated host: greedy must not force an infeasible move.
        let mut c = cluster(&[HostClass::Medium]);
        let a = c.submit_job(job(1, 400, 6000));
        c.start_creation(a, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        c.finish_creation(a, SimTime::from_secs(40));
        let _b = c.submit_job(job(2, 100, 600));
        let mut s = ScoreScheduler::new(ScoreConfig::sb())
            .with_overload(OverloadControl::forced(1000, DegradeLevel::L2Greedy));
        assert!(s.schedule(&c, &ctx(50)).is_empty());
    }

    #[test]
    fn ladder_state_round_trips_through_persist() {
        let mut s =
            ScoreScheduler::new(ScoreConfig::sb()).with_overload(OverloadControl::with_budget(500));
        s.finish_round(&ctx(0), DegradeLevel::L0Full, 500, true);
        s.finish_round(&ctx(1), DegradeLevel::L1QueueOnly, 400, false);
        let mut w = Writer::new();
        s.persist_state(&mut w);
        let bytes = w.into_bytes().unwrap();

        let mut restored =
            ScoreScheduler::new(ScoreConfig::sb()).with_overload(OverloadControl::with_budget(500));
        let mut r = Reader::new(&bytes);
        restored.restore_state(&mut r).expect("valid payload");
        r.finish().expect("payload fully consumed");
        assert_eq!(restored.state, s.state);
        // The restored driver picks the same next rung.
        assert_eq!(restored.select_rung(), s.select_rung());
    }

    #[test]
    fn sustained_under_budget_rounds_walk_l2_l1_l0() {
        // Regression: recovery must step DOWN one rung per relax, never
        // jump (a jump skips the L1 queue-only round that drains the
        // backlog cheaply before full matrix rounds resume).
        let mut s = ScoreScheduler::new(ScoreConfig::sb())
            .with_overload(OverloadControl::with_budget(1000));
        // Two blown rounds park the ladder at L2.
        for _ in 0..2 {
            let rung = s.state.rung;
            s.finish_round(&ctx(0), rung, 1000, true);
            s.select_rung();
        }
        assert_eq!(s.state.rung, DegradeLevel::L2Greedy);
        // Sustained cheap rounds: EWMA decays toward the spend, crosses
        // budget/2, and the ladder walks L2 → L1 → L0 one rung at a time.
        let mut seen = vec![s.state.rung];
        for _ in 0..40 {
            let rung = s.state.rung;
            s.finish_round(&ctx(0), rung, 100, false);
            seen.push(s.select_rung());
            if *seen.last().unwrap() == DegradeLevel::L0Full {
                break;
            }
        }
        assert_eq!(seen.last(), Some(&DegradeLevel::L0Full), "{seen:?}");
        assert!(
            seen.contains(&DegradeLevel::L1QueueOnly),
            "descent must pass through L1: {seen:?}"
        );
        // Monotone, single-step descent.
        assert!(
            seen.windows(2)
                .all(|w| w[1] <= w[0] && w[0].index() - w[1].index() <= 1),
            "{seen:?}"
        );
    }

    #[test]
    fn restored_ladder_replays_the_same_relax_sequence() {
        // Regression for the EWMA being part of the snapshot: a driver
        // restored mid-descent must relax on exactly the same rounds as
        // the original. (If the EWMA were rebuilt at zero, the restored
        // side would relax immediately and the sequences would diverge.)
        let ctl = OverloadControl::with_budget(1000);
        let mut s = ScoreScheduler::new(ScoreConfig::sb()).with_overload(ctl);
        for _ in 0..3 {
            let rung = s.state.rung;
            s.finish_round(&ctx(0), rung, 1000, true);
            s.select_rung();
        }
        // Two quiet rounds leave the EWMA mid-decay, above budget/2.
        for _ in 0..2 {
            let rung = s.state.rung;
            s.finish_round(&ctx(0), rung, 100, false);
            s.select_rung();
        }
        let mut w = Writer::new();
        s.persist_state(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut restored = ScoreScheduler::new(ScoreConfig::sb()).with_overload(ctl);
        let mut r = Reader::new(&bytes);
        restored.restore_state(&mut r).expect("valid payload");

        let replay = |d: &mut ScoreScheduler| -> Vec<DegradeLevel> {
            (0..30)
                .map(|_| {
                    let rung = d.state.rung;
                    d.finish_round(&ctx(0), rung, 100, false);
                    d.select_rung()
                })
                .collect()
        };
        let original = replay(&mut s);
        let replayed = replay(&mut restored);
        assert_eq!(original, replayed);
        assert_eq!(original.last(), Some(&DegradeLevel::L0Full), "{original:?}");
    }

    #[test]
    fn sharded_scheduler_places_queue_and_advances_cursor() {
        let mut c = cluster(&[HostClass::Medium; 4]);
        for i in 0..3 {
            let _ = c.submit_job(job(i, 150, 900));
        }
        let mut s = ScoreScheduler::new(ScoreConfig::sb()).with_shards(ShardSpec {
            count: 2,
            rack_size: 2,
        });
        let actions = s.schedule(&c, &ctx(0));
        assert_eq!(actions.len(), 3, "{actions:?}");
        assert!(actions.iter().all(|a| matches!(a, Action::Create { .. })));
        // Three queue columns dealt round-robin → the cursor advances by 3,
        // so the next round starts dealing at the other shard.
        assert_eq!(s.shard_cursor, 3);
    }

    #[test]
    fn sharding_on_a_single_rack_cluster_keeps_the_dense_path() {
        // Three hosts under the default rack size of 8 realize one shard:
        // the spec is armed but the round must be bit-identical to an
        // unsharded scheduler (dense path, cursor untouched).
        let mut c = cluster(&[HostClass::Medium, HostClass::Fast, HostClass::Slow]);
        for i in 0..4 {
            let _ = c.submit_job(job(i, 120, 900));
        }
        let mut plain = ScoreScheduler::new(ScoreConfig::full());
        let mut sharded =
            ScoreScheduler::new(ScoreConfig::full()).with_shards(ShardSpec::with_count(4));
        assert_eq!(plain.schedule(&c, &ctx(0)), sharded.schedule(&c, &ctx(0)));
        assert_eq!(sharded.shard_cursor, 0);
    }

    #[test]
    fn shard_cursor_round_trips_through_persist() {
        let mut s = ScoreScheduler::new(ScoreConfig::sb()).with_shards(ShardSpec {
            count: 2,
            rack_size: 2,
        });
        s.shard_cursor = 41;
        let mut w = Writer::new();
        s.persist_state(&mut w);
        let bytes = w.into_bytes().unwrap();

        let mut restored = ScoreScheduler::new(ScoreConfig::sb()).with_shards(ShardSpec {
            count: 2,
            rack_size: 2,
        });
        let mut r = Reader::new(&bytes);
        restored.restore_state(&mut r).expect("valid payload");
        r.finish().expect("payload fully consumed");
        assert_eq!(restored.shard_cursor, 41);
    }
}
