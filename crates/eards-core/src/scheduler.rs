//! The Score-Based Scheduler — the paper's contribution, as a
//! [`Policy`].
//!
//! Each scheduling round (§III-A): collect the candidate VMs (the
//! virtual-host queue, plus every running VM when migration is enabled;
//! VMs with in-flight operations are pinned and excluded), build the
//! incremental score matrix ([`Eval`] overlay + [`ScoreMatrix`] cell
//! cache, recycling one [`EngineBuffers`] allocation across rounds),
//! hill-climb it with [`solve_matrix`], and emit the resulting
//! create/migrate actions. Power on/off candidate ranking (§III-C) is
//! driven by lazily aggregated matrix rows.

use eards_model::{
    Action, Cluster, HostId, Policy, ScheduleContext, ScheduleReason, VmId, VmState,
};
use eards_obs::{Obs, ObsEvent};

use crate::config::ScoreConfig;
use crate::eval::Eval;
use crate::matrix::{EngineBuffers, ScoreMatrix};
use crate::solver::solve_matrix;

/// Stable tag for a [`ScheduleReason`], used in trace events.
fn reason_str(reason: ScheduleReason) -> &'static str {
    match reason {
        ScheduleReason::VmArrived => "vm_arrived",
        ScheduleReason::VmFinished => "vm_finished",
        ScheduleReason::SlaViolation => "sla_violation",
        ScheduleReason::HostStateChanged => "host_state_changed",
        ScheduleReason::Periodic => "periodic",
    }
}

/// The score-based scheduling policy (SB0/SB1/SB2/SB depending on its
/// [`ScoreConfig`]).
///
/// ```
/// use eards_core::{ScoreConfig, ScoreScheduler};
/// use eards_model::*;
/// use eards_sim::{SimDuration, SimTime};
///
/// let mut cluster = Cluster::new(
///     vec![
///         HostSpec::standard(HostId(0), HostClass::Fast),
///         HostSpec::standard(HostId(1), HostClass::Slow),
///     ],
///     PowerState::On,
/// );
/// let vm = cluster.submit_job(Job::new(
///     JobId(0), SimTime::ZERO, Cpu(100), Mem::gib(1),
///     SimDuration::from_secs(600), 1.5,
/// ));
///
/// // SB1 weighs creation cost: the fast node (C_c = 30 s) wins.
/// let mut sched = ScoreScheduler::new(ScoreConfig::sb1());
/// let ctx = ScheduleContext { now: SimTime::ZERO, reason: ScheduleReason::VmArrived };
/// assert_eq!(
///     sched.schedule(&cluster, &ctx),
///     vec![Action::Create { vm, host: HostId(0) }],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ScoreScheduler {
    /// Penalty switches and cost parameters.
    pub cfg: ScoreConfig,
    /// Engine allocations recycled across rounds: the scheduler outlives
    /// each round's `&Cluster` borrow, so the `O(M·N)` matrix storage is
    /// set up once and reused instead of reallocated every round.
    buffers: EngineBuffers,
    /// Observability handle; disabled by default (every call is a no-op).
    obs: Obs,
}

impl ScoreScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: ScoreConfig) -> Self {
        Self::with_obs(cfg, Obs::disabled())
    }

    /// Creates a scheduler that records solver spans, sweep-latency and
    /// dirty-row-invalidation metrics, and per-penalty score attributions
    /// into `obs`.
    pub fn with_obs(cfg: ScoreConfig, obs: Obs) -> Self {
        ScoreScheduler {
            cfg,
            buffers: EngineBuffers::new(),
            obs,
        }
    }

    /// The matrix columns for the current round: the queue, plus — when
    /// migration is enabled — running VMs hosted on nodes the
    /// consolidation force actively wants drained. §III-A.4 punishes VMs
    /// on under-used hosts "since we want these VMs to move away"; a host
    /// qualifies when it is *emptiable* (≤ `TH_empty` VMs) or when its
    /// occupation is below `C_e / C_f` — the point where the emptiable
    /// penalty would outweigh the fill reward, so candidacy scales with
    /// the configured aggressiveness (Table V: higher `C_e`/`C_f` pairs
    /// migrate more). VMs on well-filled hosts have no consolidation
    /// motive; restricting the columns keeps migration counts in a sane
    /// regime instead of re-evaluating the whole datacenter every round.
    fn candidate_vms_into(&self, cluster: &Cluster, migrate_now: bool, cols: &mut Vec<VmId>) {
        cols.clear();
        cols.extend_from_slice(cluster.queue());
        if self.cfg.migration && migrate_now {
            let occ_bar = if self.cfg.c_fill > 0.0 {
                self.cfg.c_empty / self.cfg.c_fill
            } else {
                0.0
            };
            let queue_len = cols.len();
            cols.extend(
                cluster
                    .hosts()
                    .iter()
                    .filter(|h| {
                        h.resident.len() + h.incoming.len() <= self.cfg.th_empty
                            || cluster.occupation(h.spec.id) < occ_bar
                    })
                    .flat_map(|h| h.resident.iter().copied())
                    .filter(|&v| cluster.vm(v).state == VmState::Running),
            );
            cols[queue_len..].sort_unstable(); // deterministic column order
        }
    }
}

impl Policy for ScoreScheduler {
    fn name(&self) -> String {
        self.cfg.name.clone()
    }

    fn uses_migration(&self) -> bool {
        self.cfg.migration
    }

    fn schedule(&mut self, cluster: &Cluster, ctx: &ScheduleContext) -> Vec<Action> {
        // §I: the policy "periodically calculates whether to move jobs" —
        // migration columns enter the matrix only on periodic consolidation
        // rounds (and SLA-violation rounds, where a move is the remedy);
        // event-triggered rounds only place the queue.
        let migrate_now = matches!(
            ctx.reason,
            ScheduleReason::Periodic | ScheduleReason::SlaViolation
        );
        let mut cols = std::mem::take(&mut self.buffers.vms);
        self.candidate_vms_into(cluster, migrate_now, &mut cols);
        if cols.is_empty() {
            self.buffers.vms = cols;
            return Vec::new();
        }
        let queued = cluster.queue().len() as u32;
        let mut eval = Eval::new_in(cluster, &self.cfg, ctx.now, cols, &mut self.buffers);
        let (sol, rows_rescored) = {
            // Sweep latency in µs: sub-ms buckets resolve the common case,
            // the tail buckets catch pathological rounds.
            let hist = self.obs.histogram(
                "solve_us",
                &[50.0, 200.0, 1000.0, 5000.0, 25000.0, 100000.0],
            );
            let _span = self.obs.span("solve", ctx.now).with_hist(hist);
            let mut matrix = ScoreMatrix::new_in(&mut eval, &mut self.buffers);
            let sol = solve_matrix(&mut matrix, self.cfg.max_moves);
            let rows = matrix.rows_rescored();
            matrix.recycle(&mut self.buffers);
            (sol, rows)
        };
        if self.obs.is_enabled() {
            self.obs.inc(self.obs.counter("solver_rounds"), 1);
            self.obs
                .inc(self.obs.counter("matrix_rows_rescored"), rows_rescored);
            let rows_hist = self.obs.histogram(
                "rows_rescored_per_round",
                &[2.0, 8.0, 32.0, 128.0, 512.0, 2048.0],
            );
            self.obs.observe(rows_hist, rows_rescored as f64);
            self.obs.record(
                ctx.now,
                ObsEvent::ScheduleRound {
                    reason: reason_str(ctx.reason),
                    actions: sol.moves.len() as u32,
                    queued,
                },
            );
            // Attribute each chosen move's score term by term. The solver
            // already applied the moves to the overlay, so each breakdown
            // reflects exactly the end-of-round state its decision saw.
            for &(v, h) in &sol.moves {
                let bd = eval.score_breakdown(h, v);
                self.obs.record(
                    ctx.now,
                    ObsEvent::ScoreAttribution {
                        vm: eval.vms()[v].raw(),
                        host: h as u32,
                        migration: eval.original_of(v).is_some(),
                        movein: bd.movein,
                        pwr: bd.pwr,
                        sla: bd.sla,
                        fault: bd.fault,
                        total: bd.total,
                    },
                );
            }
        }

        // Each column moves at most once, so the move list maps directly
        // to actions; emission order follows solver order (most beneficial
        // first), which the driver preserves.
        let actions = sol
            .moves
            .iter()
            .map(|&(v, h)| {
                let vm = eval.vms()[v];
                let host = HostId(h as u32);
                match eval.original_of(v) {
                    None => Action::Create { vm, host },
                    Some(_) => Action::Migrate { vm, to: host },
                }
            })
            .collect();
        eval.recycle(&mut self.buffers);
        actions
    }

    /// §III-C: victims for power-off are picked by the aggregated matrix
    /// row "taking into account the number of infinity scores. Those nodes
    /// with a higher score are selected to be turned off."
    fn rank_power_off(
        &self,
        cluster: &Cluster,
        now: eards_sim::SimTime,
        candidates: &[HostId],
    ) -> Vec<HostId> {
        let mut cols = Vec::new();
        self.candidate_vms_into(cluster, false, &mut cols);
        let mut eval = Eval::new(cluster, &self.cfg, now, cols);
        // Rows are scored lazily, so aggregating only the candidate rows
        // of the matrix stays O(|candidates|·N) — the rest of the matrix
        // is never materialized.
        let mut matrix = ScoreMatrix::new(&mut eval);
        let mut scored: Vec<(usize, f64, HostId)> = candidates
            .iter()
            .map(|&h| {
                let (infs, sum) = matrix.row_aggregate(h.raw() as usize);
                (infs, sum, h)
            })
            .collect();
        // More infeasible cells first, then higher aggregate cost, then
        // higher id (turn off the "back" of the datacenter first).
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.total_cmp(&a.1)).then(b.2.cmp(&a.2)));
        scored.into_iter().map(|(_, _, h)| h).collect()
    }

    /// §III-C: nodes to turn on are "selected according to a number of
    /// parameters, including reliability, boot time, etc." Reliability
    /// participates only when the `P_fault` extension is enabled — a
    /// reliability-blind configuration must not secretly be
    /// reliability-aware here.
    fn rank_power_on(&self, cluster: &Cluster, candidates: &[HostId]) -> Vec<HostId> {
        let mut ranked = candidates.to_vec();
        let fault_aware = self.cfg.fault_penalty;
        ranked.sort_by(|&a, &b| {
            let sa = &cluster.host(a).spec;
            let sb = &cluster.host(b).spec;
            let rel = if fault_aware {
                // Effective reliability, so blacklisted hosts boot last.
                cluster
                    .effective_reliability(b)
                    .total_cmp(&cluster.effective_reliability(a))
            } else {
                std::cmp::Ordering::Equal
            };
            rel.then(sa.class.boot_time().cmp(&sb.class.boot_time()))
                .then(sa.class.creation_cost().cmp(&sb.class.creation_cost()))
                .then(a.cmp(&b))
        });
        ranked
    }
}

/// Convenience: the aggregate score a host row would contribute, exposed
/// for diagnostics and tests.
pub fn row_score(eval: &Eval<'_>, host: usize) -> (usize, f64) {
    let mut infs = 0;
    let mut sum = 0.0;
    for v in 0..eval.num_vms() {
        let s = eval.score(host, v);
        if s.is_infinite() {
            infs += 1;
        } else {
            sum += s.value();
        }
    }
    (infs, sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cpu, HostClass, HostSpec, Job, JobId, Mem, PowerState, ScheduleReason};
    use eards_sim::{SimDuration, SimTime};

    fn ctx(now: u64) -> ScheduleContext {
        ScheduleContext {
            now: SimTime::from_secs(now),
            reason: ScheduleReason::Periodic,
        }
    }

    fn cluster(classes: &[HostClass]) -> Cluster {
        Cluster::new(
            classes
                .iter()
                .enumerate()
                .map(|(i, &c)| HostSpec::standard(HostId(i as u32), c))
                .collect(),
            PowerState::On,
        )
    }

    fn job(id: u64, cpu: u32, secs: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(secs),
            1.5,
        )
    }

    #[test]
    fn sb0_consolidates_new_vms() {
        let mut c = cluster(&[HostClass::Medium; 4]);
        let a = c.submit_job(job(1, 200, 600));
        let b = c.submit_job(job(2, 100, 600));
        let mut sched = ScoreScheduler::new(ScoreConfig::sb0());
        let actions = sched.schedule(&c, &ctx(0));
        assert_eq!(actions.len(), 2);
        let hosts: Vec<HostId> = actions
            .iter()
            .map(|a| match a {
                Action::Create { host, .. } => *host,
                _ => panic!("SB0 must not migrate"),
            })
            .collect();
        assert_eq!(hosts[0], hosts[1], "both land on the same host");
        let vms: Vec<VmId> = actions
            .iter()
            .map(|a| match a {
                Action::Create { vm, .. } => *vm,
                _ => unreachable!(),
            })
            .collect();
        assert!(vms.contains(&a) && vms.contains(&b));
    }

    #[test]
    fn sb1_prefers_fast_creation_nodes() {
        // Equal power situation, different creation costs: SB1 should pick
        // the fast node; SB0 (no P_virt) is indifferent and picks the
        // first-by-tiebreak.
        let mut c = cluster(&[HostClass::Slow, HostClass::Fast]);
        let vm = c.submit_job(job(1, 100, 600));
        let mut sb1 = ScoreScheduler::new(ScoreConfig::sb1());
        let actions = sb1.schedule(&c, &ctx(0));
        assert_eq!(
            actions,
            vec![Action::Create {
                vm,
                host: HostId(1)
            }],
            "fast node (Cc=30) beats slow (Cc=60)"
        );
    }

    #[test]
    fn sb2_avoids_hosts_with_inflight_ops() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        // Host 0 is creating a VM; host 1 is free but would be "emptiable".
        let a = c.submit_job(job(1, 100, 600));
        c.start_creation(a, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        let b = c.submit_job(job(2, 100, 600));
        let mut sb2 = ScoreScheduler::new(ScoreConfig::sb2());
        let actions = sb2.schedule(&c, &ctx(10));
        // Concurrency penalty (40) outweighs the consolidation edge
        // (C_e + ΔO·C_f = 20 + 10): SB2 picks the idle host.
        assert_eq!(
            actions,
            vec![Action::Create {
                vm: b,
                host: HostId(1)
            }]
        );

        // SB1 (no P_conc) makes the opposite call — it stacks.
        let mut sb1 = ScoreScheduler::new(ScoreConfig::sb1());
        let actions = sb1.schedule(&c, &ctx(10));
        assert_eq!(
            actions,
            vec![Action::Create {
                vm: b,
                host: HostId(0)
            }]
        );
    }

    #[test]
    fn sb_emits_consolidation_migrations() {
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        for (i, h) in [(0u64, HostId(0)), (1, HostId(1))] {
            let vm = c.submit_job(job(i, 150, 100_000));
            c.start_creation(vm, h, SimTime::ZERO, SimTime::from_secs(40));
            c.finish_creation(vm, SimTime::from_secs(40));
        }
        let mut sb = ScoreScheduler::new(ScoreConfig::sb());
        let actions = sb.schedule(&c, &ctx(100));
        assert_eq!(actions.len(), 1);
        assert!(
            matches!(actions[0], Action::Migrate { .. }),
            "two half-empty hosts must merge: {actions:?}"
        );
    }

    #[test]
    fn migration_suppressed_near_completion() {
        // Same situation, but the jobs are about to finish (T_r small):
        // P_m = 2·C_m dwarfs the consolidation gain, so SB leaves them.
        let mut c = cluster(&[HostClass::Medium, HostClass::Medium]);
        for (i, h) in [(0u64, HostId(0)), (1, HostId(1))] {
            let vm = c.submit_job(job(i, 150, 130));
            c.start_creation(vm, h, SimTime::ZERO, SimTime::from_secs(40));
            c.finish_creation(vm, SimTime::from_secs(40));
        }
        let mut sb = ScoreScheduler::new(ScoreConfig::sb());
        let actions = sb.schedule(&c, &ctx(100)); // T_r = 30 s < C_m = 60 s
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn queued_vm_with_no_feasible_host_stays_queued() {
        let mut c = cluster(&[HostClass::Medium]);
        let a = c.submit_job(job(1, 400, 6000));
        c.start_creation(a, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
        c.finish_creation(a, SimTime::from_secs(40));
        let _b = c.submit_job(job(2, 100, 600));
        let mut sb = ScoreScheduler::new(ScoreConfig::sb());
        let actions = sb.schedule(&c, &ctx(50));
        assert!(actions.is_empty(), "full datacenter: nothing placeable");
    }

    #[test]
    fn rank_power_on_prefers_reliable_fast_booting() {
        let mut specs = vec![
            HostSpec::standard(HostId(0), HostClass::Slow),
            HostSpec::standard(HostId(1), HostClass::Fast),
            HostSpec::standard(HostId(2), HostClass::Fast),
        ];
        specs[2].reliability = 0.8;
        let c = Cluster::new(specs, PowerState::Off);
        // Reliability only ranks when the P_fault extension is enabled.
        let sched = ScoreScheduler::new(ScoreConfig::full());
        let ranked = sched.rank_power_on(&c, &[HostId(0), HostId(1), HostId(2)]);
        assert_eq!(ranked, vec![HostId(1), HostId(0), HostId(2)]);

        // A fault-blind configuration ignores reliability: both Fast nodes
        // rank ahead of the Slow one, in id order.
        let blind = ScoreScheduler::new(ScoreConfig::sb());
        let ranked = blind.rank_power_on(&c, &[HostId(0), HostId(1), HostId(2)]);
        assert_eq!(ranked, vec![HostId(1), HostId(2), HostId(0)]);
    }

    #[test]
    fn rank_power_off_prefers_costly_hosts() {
        // Host 1 is slow (higher creation cost in the rows once P_virt is
        // on) — it should be offered for power-off before the fast host.
        let mut c = cluster(&[HostClass::Fast, HostClass::Slow]);
        let _q = c.submit_job(job(1, 100, 600));
        let sched = ScoreScheduler::new(ScoreConfig::sb1());
        let ranked = sched.rank_power_off(&c, SimTime::ZERO, &[HostId(0), HostId(1)]);
        assert_eq!(ranked, vec![HostId(1), HostId(0)]);
    }

    #[test]
    fn rank_power_off_tiebreak_matches_partial_cmp_reference() {
        // `total_cmp` replaced `partial_cmp(..).expect(..)` in the
        // power-off ranking (lint D004). For the finite sums the solver
        // produces the two comparators must order identically — Tables
        // II–IV depend on the exact host sequence — so pin the ranking
        // against a reference sort using the old comparator, across
        // cluster shapes that include equal-sum ties (identical classes).
        for (shape, queued) in [
            (vec![HostClass::Medium; 4], vec![(1u64, 100u32, 600u64)]),
            (
                vec![
                    HostClass::Fast,
                    HostClass::Medium,
                    HostClass::Medium,
                    HostClass::Slow,
                ],
                vec![(1, 150, 900), (2, 300, 1200)],
            ),
            (vec![HostClass::Fast, HostClass::Slow], vec![]),
        ] {
            let mut c = cluster(&shape);
            for &(id, cpu, dur) in &queued {
                let _ = c.submit_job(job(id, cpu, dur));
            }
            let candidates: Vec<HostId> = (0..shape.len() as u32).map(HostId).collect();
            let sched = ScoreScheduler::new(ScoreConfig::sb1());
            let ranked = sched.rank_power_off(&c, SimTime::ZERO, &candidates);

            let mut cols = Vec::new();
            sched.candidate_vms_into(&c, false, &mut cols);
            let mut eval = Eval::new(&c, &sched.cfg, SimTime::ZERO, cols);
            let mut matrix = ScoreMatrix::new(&mut eval);
            let mut scored: Vec<(usize, f64, HostId)> = candidates
                .iter()
                .map(|&h| {
                    let (infs, sum) = matrix.row_aggregate(h.raw() as usize);
                    (infs, sum, h)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.0.cmp(&a.0)
                    // lint:allow(D004): the old comparator IS the oracle here
                    .then(b.1.partial_cmp(&a.1).expect("finite sums"))
                    .then(b.2.cmp(&a.2))
            });
            let reference: Vec<HostId> = scored.into_iter().map(|(_, _, h)| h).collect();
            assert_eq!(ranked, reference, "shape {shape:?}");
        }
    }

    #[test]
    fn empty_queue_no_migration_is_a_noop() {
        let c = cluster(&[HostClass::Medium]);
        let mut sched = ScoreScheduler::new(ScoreConfig::sb2());
        assert!(sched.schedule(&c, &ctx(0)).is_empty());
    }
}
