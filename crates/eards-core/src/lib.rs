//! # eards-core — the Score-Based Scheduler
//!
//! The primary contribution of Goiri et al. (CLUSTER 2010), §III: a
//! power-aware VM scheduling policy that assigns every ⟨host, VM⟩ pair a
//! score summing seven penalties —
//!
//! * `P_req` — hardware/software requirements (∞ if unsatisfiable),
//! * `P_res` — resource requirements (∞ if occupation would exceed 100%),
//! * `P_virt` — VM creation and migration overheads, with the
//!   remaining-time discount that pins soon-finishing VMs,
//! * `P_conc` — concurrency of in-flight operations on a host,
//! * `P_pwr` — the consolidation force: `T_empty·C_e − O·C_f`,
//! * `P_SLA` — dynamic SLA enforcement (paper extension),
//! * `P_fault` — node reliability (paper extension),
//!
//! then hill-climbs the `(M+1)×N` matrix (Algorithm 1) applying the most
//! beneficial move until convergence or an iteration cap.
//!
//! The hill climb runs on an *incremental* engine ([`ScoreMatrix`]): cells
//! are cached, a move invalidates exactly the two affected host rows, and
//! per-column argmins are maintained instead of rescanned — see
//! [`matrix`]'s module docs. [`solve_reference`] keeps the original
//! full-rescan algorithm as a differential-testing oracle.
//!
//! [`ScoreScheduler`] implements [`eards_model::Policy`] and is
//! instantiated via [`ScoreConfig`] as the paper's SB0 / SB1 / SB2 / SB
//! variants.

#![warn(missing_docs)]

pub mod budget;
mod config;
mod eval;
mod explain;
pub mod matrix;
mod scheduler;
mod score;
pub mod shard;
mod solver;

pub use budget::{DegradeLevel, OverloadControl, WorkMeter};
pub use config::ScoreConfig;
pub use eval::{CellStatic, Eval, ScoreBreakdown};
pub use explain::{
    render_delta_matrix, render_delta_matrix_cached, render_matrix, render_matrix_cached,
};
pub use matrix::{EngineBuffers, ScoreMatrix};
pub use scheduler::{row_score, ScoreScheduler};
pub use score::Score;
pub use shard::{solve_sharded, ShardedOutcome};
pub use solver::{solve, solve_matrix, solve_matrix_at, solve_reference, Move, Solution};
