//! # eards-core — the Score-Based Scheduler
//!
//! The primary contribution of Goiri et al. (CLUSTER 2010), §III: a
//! power-aware VM scheduling policy that assigns every ⟨host, VM⟩ pair a
//! score summing seven penalties —
//!
//! * `P_req` — hardware/software requirements (∞ if unsatisfiable),
//! * `P_res` — resource requirements (∞ if occupation would exceed 100%),
//! * `P_virt` — VM creation and migration overheads, with the
//!   remaining-time discount that pins soon-finishing VMs,
//! * `P_conc` — concurrency of in-flight operations on a host,
//! * `P_pwr` — the consolidation force: `T_empty·C_e − O·C_f`,
//! * `P_SLA` — dynamic SLA enforcement (paper extension),
//! * `P_fault` — node reliability (paper extension),
//!
//! then hill-climbs the `(M+1)×N` matrix (Algorithm 1) applying the most
//! beneficial move until convergence or an iteration cap.
//!
//! [`ScoreScheduler`] implements [`eards_model::Policy`] and is
//! instantiated via [`ScoreConfig`] as the paper's SB0 / SB1 / SB2 / SB
//! variants.

#![warn(missing_docs)]

mod config;
mod eval;
mod explain;
mod scheduler;
mod score;
mod solver;

pub use config::ScoreConfig;
pub use eval::Eval;
pub use explain::{render_delta_matrix, render_matrix};
pub use scheduler::{row_score, ScoreScheduler};
pub use score::Score;
pub use solver::{solve, Move, Solution};
